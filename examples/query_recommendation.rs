//! Query discovery by sample answers + node similarity — the
//! knowledge-base applications of §2.2, end to end.
//!
//! A user knows two nodes they consider "answers" but cannot write the
//! query. We discover candidate pivoted queries from the samples'
//! neighborhoods, filter them by PSI membership, rank by specificity,
//! and finally use pivoted-subgraph similarity to suggest more nodes
//! like the samples.
//!
//! Run with: `cargo run --release --example query_recommendation`

use smartpsi::apps::{discover_queries, pivoted_similarity, DiscoveryConfig, SimilarityConfig};
use smartpsi::datasets::PaperDataset;
use smartpsi::graph::GraphStats;
use smartpsi::signature::matrix_signatures;

fn main() {
    let g = PaperDataset::Cora.generate(3);
    println!("knowledge graph: {}", GraphStats::of(&g));
    let sigs = matrix_signatures(&g, 2);

    // Pick two sample "answers": nodes sharing a label with degree ≥ 2.
    let label = g.label(0);
    let mut samples: Vec<u32> = g
        .nodes_with_label(label)
        .iter()
        .copied()
        .filter(|&u| g.degree(u) >= 2)
        .take(2)
        .collect();
    if samples.len() < 2 {
        samples = g.nodes_with_label(label).iter().copied().take(2).collect();
    }
    println!("sample answer nodes: {samples:?} (label {label})");

    // Discover and rank queries that cover both samples.
    let cfg = DiscoveryConfig {
        candidates_per_sample: 20,
        top_k: 5,
        ..DiscoveryConfig::default()
    };
    let found = discover_queries(&g, &sigs, &samples, &cfg);
    println!("\nrecommended queries ({}):", found.len());
    for (i, r) in found.iter().enumerate() {
        let q = r.query.graph();
        println!(
            "  #{i}: {} nodes, {} edges, labels {:?}, matches {} graph nodes",
            q.node_count(),
            q.edge_count(),
            q.labels(),
            r.answer_size
        );
    }

    // Recommend similar nodes using pivoted-subgraph similarity.
    if let Some(&anchor) = samples.first() {
        let sim_cfg = SimilarityConfig::default();
        let mut scored: Vec<(f64, u32)> = g
            .nodes_with_label(label)
            .iter()
            .copied()
            .filter(|&u| !samples.contains(&u))
            .take(30)
            .map(|u| (pivoted_similarity(&g, &sigs, anchor, u, &sim_cfg), u))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        println!("\nnodes most similar to sample {anchor}:");
        for (s, u) in scored.iter().take(5) {
            println!("  node {u}: similarity {s:.2}");
        }
    }
}
