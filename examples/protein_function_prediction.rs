//! Protein function prediction in a PPI network (§2.2 of the paper).
//!
//! The application: proteins with unknown function are matched against
//! *significant patterns* mined from the network; every pattern whose
//! pivot binds the unknown protein votes for a function label. Each
//! pattern match is one PSI query — exactly the workload SmartPSI is
//! built for.
//!
//! This example: (1) generates a Human-like PPI graph, (2) extracts
//! significant patterns around each function label with the
//! random-walk extractor, (3) hides the labels of a few test proteins
//! and predicts them by pivoted pattern matching, (4) reports accuracy.
//!
//! Run with: `cargo run --release --example protein_function_prediction`

use smartpsi::core::{RunSpec, SmartPsi, SmartPsiConfig};
use smartpsi::datasets::{rwr::extract_query_seeded, PaperDataset};
use smartpsi::graph::{GraphStats, PivotedQuery};

fn main() {
    // A scaled Human-like PPI network.
    let g = PaperDataset::Human.generate_scaled(0.5, 2024);
    println!("PPI network: {}", GraphStats::of(&g));

    // Mine "significant patterns": for each of a few frequent function
    // labels, extract pivoted neighborhoods whose pivot carries that
    // label (a lightweight stand-in for pattern mining — the FSM
    // example does the real thing).
    let stats = GraphStats::of(&g);
    let mut frequent_labels: Vec<(usize, usize)> = stats
        .label_histogram
        .iter()
        .enumerate()
        .map(|(l, &c)| (c, l))
        .collect();
    frequent_labels.sort_unstable_by(|a, b| b.cmp(a));
    let functions: Vec<u16> = frequent_labels.iter().take(4).map(|&(_, l)| l as u16).collect();
    println!("predicting among functions (labels): {functions:?}");

    let mut patterns: Vec<(u16, PivotedQuery)> = Vec::new();
    for (fi, &f) in functions.iter().enumerate() {
        let mut found = 0;
        for seed in 0..200u64 {
            if found >= 3 {
                break;
            }
            if let Some(q) = extract_query_seeded(&g, 4, seed * 31 + fi as u64) {
                if q.pivot_label() == f {
                    patterns.push((f, q));
                    found += 1;
                }
            }
        }
    }
    println!("significant patterns extracted: {}", patterns.len());

    // Load the network into SmartPSI once; signatures are reused by
    // every pattern query.
    let engine = SmartPsi::new(g.clone(), SmartPsiConfig::default());

    // Answer every pattern query once; each answer is the set of
    // proteins exhibiting that function's interaction pattern.
    let mut votes: Vec<Vec<u16>> = vec![Vec::new(); g.node_count()];
    for (f, q) in &patterns {
        let result = engine.run(q, &RunSpec::new());
        for &u in &result.valid {
            votes[u as usize].push(*f);
        }
    }

    // "Hide" the label of every 50th protein and predict it by
    // majority vote among its matched patterns.
    let (mut correct, mut predicted) = (0usize, 0usize);
    for u in (0..g.node_count()).step_by(50) {
        let vs = &votes[u];
        if vs.is_empty() {
            continue;
        }
        let mut counts = std::collections::BTreeMap::new();
        for &f in vs {
            *counts.entry(f).or_insert(0usize) += 1;
        }
        let best = counts.iter().max_by_key(|&(_, c)| *c).map(|(&f, _)| f).unwrap();
        predicted += 1;
        if best == g.label(u as u32) {
            correct += 1;
        }
    }
    println!(
        "predicted {predicted} held-out proteins; {} correct ({:.0}%)",
        correct,
        100.0 * correct as f64 / predicted.max(1) as f64
    );
    println!("(each prediction consumed one PSI answer per pattern — no embedding enumeration)");
}
