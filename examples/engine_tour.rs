//! A tour of every PSI strategy on a realistic workload.
//!
//! Generates a Cora-like citation graph, extracts a batch of pivoted
//! queries per size (as §5.1 does), and runs the whole spectrum —
//! enumeration baselines, TurboIso⁺, optimistic-only, pessimistic-only,
//! the two-threaded baseline and SmartPSI — reporting answers, steps
//! and wall time so the trade-offs of §3–§4 are visible on one screen.
//!
//! Run with: `cargo run --release --example engine_tour`

use std::time::Instant;

use smartpsi::core::single::{psi_with_strategy_presig, RunOptions};
use smartpsi::core::{RunSpec, SmartPsi, SmartPsiConfig, Strategy};
use smartpsi::datasets::{PaperDataset, QueryWorkload};
use smartpsi::graph::GraphStats;
use smartpsi::matching::{psi_by_enumeration, turboiso::turboiso_plus_psi, Engine, SearchBudget};

fn main() {
    let g = PaperDataset::Cora.generate(11);
    println!("citation graph: {}", GraphStats::of(&g));
    let sigs = smartpsi::signature::matrix_signatures(&g, 2);
    let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
    let opts = RunOptions::default();
    // A step cap standing in for the paper's 24h timeout.
    let capped = SearchBudget::steps(20_000_000);

    for size in [4usize, 6] {
        let Some(w) = QueryWorkload::extract(&g, size, 5, size as u64) else {
            continue;
        };
        println!("\n== query size {size} ({} queries) ==", w.queries.len());
        println!(
            "{:<28} {:>10} {:>14} {:>10}",
            "engine", "answers", "steps", "wall"
        );
        let run = |name: &str, f: &mut dyn FnMut(&smartpsi::graph::PivotedQuery) -> (usize, u64)| {
            let t0 = Instant::now();
            let (mut answers, mut steps) = (0usize, 0u64);
            for q in &w.queries {
                let (a, s) = f(q);
                answers += a;
                steps += s;
            }
            println!(
                "{:<28} {:>10} {:>14} {:>9.0?}",
                name,
                answers,
                steps,
                t0.elapsed()
            );
        };

        run("TurboIso (enumerate+project)", &mut |q| {
            let a = psi_by_enumeration(&Engine::TurboIso, &g, q, &capped);
            (a.count(), a.steps)
        });
        run("CFL-Match (enumerate+project)", &mut |q| {
            let a = psi_by_enumeration(&Engine::CflMatch, &g, q, &capped);
            (a.count(), a.steps)
        });
        run("TurboIso+", &mut |q| {
            let a = turboiso_plus_psi(&g, q, &capped);
            (a.count(), a.steps)
        });
        run("Optimistic-only", &mut |q| {
            let r = psi_with_strategy_presig(&g, &sigs, q, Strategy::optimistic(), &opts);
            (r.count(), r.steps)
        });
        run("Pessimistic-only", &mut |q| {
            let r = psi_with_strategy_presig(&g, &sigs, q, Strategy::pessimistic(), &opts);
            (r.count(), r.steps)
        });
        run("SmartPSI", &mut |q| {
            let r = smart.run(q, &RunSpec::new());
            (r.count(), r.steps)
        });
    }
    println!("\n(answers agree across engines; steps diverge — that gap is the paper.)");
}
