//! Quickstart: the paper's Figure 1 example, end to end.
//!
//! Builds the running-example graph, issues the pivoted query
//! `A - B - C` (pivot `A`), and answers it with every engine in the
//! workspace — the enumeration-based baselines and the dedicated PSI
//! evaluators — printing what each one did.
//!
//! Run with: `cargo run --release --example quickstart`

use smartpsi::core::obs::Counter;
use smartpsi::core::single::{psi_with_strategy, RunOptions};
use smartpsi::core::twothread::two_threaded_psi;
use smartpsi::core::{RunSpec, SmartPsi, SmartPsiConfig, Strategy};
use smartpsi::graph::{builder::graph_from, PivotedQuery};
use smartpsi::matching::{psi_by_enumeration, turboiso::turboiso_plus_psi, Engine, SearchBudget};

fn main() {
    // Figure 1(b): six proteins, labels A(0), B(1), C(2).
    let g = graph_from(
        &[0, 1, 2, 2, 1, 0],
        &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
    )
    .expect("valid graph");
    // Figure 1(a): the path query A - B - C, pivoted on the A node.
    let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).expect("valid query");

    println!("data graph : {}", smartpsi::graph::GraphStats::of(&g));
    println!("query      : {} nodes, pivot label {}", q.size(), q.pivot_label());
    println!();

    // --- The expensive way: enumerate everything, project the pivot.
    let budget = SearchBudget::unlimited();
    for engine in Engine::ALL {
        let ans = psi_by_enumeration(&engine, &g, &q, &budget);
        println!(
            "{:<12} (enumeration): valid = {:?}, steps = {}",
            engine.name(),
            ans.valid,
            ans.steps
        );
    }

    // --- TurboIso⁺: pivot-seeded, stop at first match per candidate.
    let plus = turboiso_plus_psi(&g, &q, &budget);
    println!("TurboIso+                : valid = {:?}, steps = {}", plus.valid, plus.steps);

    // --- The paper's dedicated evaluators.
    let opts = RunOptions::default();
    let opt = psi_with_strategy(&g, &q, Strategy::optimistic(), &opts);
    let pes = psi_with_strategy(&g, &q, Strategy::pessimistic(), &opts);
    let two = two_threaded_psi(&g, &q, &opts);
    println!("Optimistic               : valid = {:?}, steps = {}", opt.valid, opt.steps);
    println!("Pessimistic              : valid = {:?}, steps = {}", pes.valid, pes.steps);
    println!("Two-threaded baseline    : valid = {:?}, steps = {}", two.valid, two.steps);

    // --- SmartPSI (the realist).
    let smart = SmartPsi::new(g, SmartPsiConfig::default());
    let result = smart.run(&q, &RunSpec::new());
    let trained = result.profile.as_ref().map_or(0, |p| p.counter(Counter::TrainedNodes));
    println!(
        "SmartPSI                 : valid = {:?}, steps = {}, trained on {} nodes",
        result.valid, result.steps, trained
    );

    assert_eq!(result.valid, vec![0, 5]);
    println!("\nAll engines agree: the pivot binds u1 and u6, exactly as in the paper.");
}
