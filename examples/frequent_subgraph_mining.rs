//! Frequent subgraph mining with PSI-based frequency evaluation
//! (§2.2 and §5.5 of the paper).
//!
//! Mines frequent patterns from a Twitter-like social graph twice — once
//! with classic subgraph-isomorphism frequency evaluation (what
//! ScaleMine does) and once with one-PSI-query-per-pattern-node (what
//! ScaleMine+SmartPSI does) — then verifies both find the same
//! patterns and compares the measured work.
//!
//! Run with: `cargo run --release --example frequent_subgraph_mining`

use smartpsi::datasets::PaperDataset;
use smartpsi::fsm::{miner::frequent_by_size, IsoSupport, Miner, MinerConfig, PsiSupport};
use smartpsi::fsm::{canonical_code, simulate_makespan};
use smartpsi::graph::GraphStats;

fn main() {
    // A dense social graph — the regime the paper's §5.5 targets
    // (Twitter/Weibo): embedding enumeration explodes, PSI does not.
    let g = PaperDataset::Twitter.generate_scaled(0.25, 7);
    println!("mining graph: {}", GraphStats::of(&g));

    let config = MinerConfig {
        threshold: (g.node_count() / 70).max(4),
        max_edges: 3,
        max_candidates_per_level: 300,
    };
    println!("MNI threshold = {}, max pattern size = {} edges", config.threshold, config.max_edges);
    let miner = Miner::new(&g, config);

    // --- Classic: enumerate embeddings per candidate pattern.
    let t0 = std::time::Instant::now();
    let mut iso = IsoSupport::new(&g, 3_000_000);
    let iso_out = miner.mine(&mut iso);
    let iso_time = t0.elapsed();

    // --- The paper's way: one PSI query per pattern node.
    let sigs = smartpsi::signature::matrix_signatures(&g, 2);
    let t0 = std::time::Instant::now();
    let mut psi = PsiSupport::new(&g, &sigs);
    let psi_out = miner.mine(&mut psi);
    let psi_time = t0.elapsed();

    // Same answer? (The iso evaluator runs under a step budget — the
    // stand-in for ScaleMine's task timeout — so it may undercount
    // supports on the heaviest patterns; compare only when exact.)
    if iso_out.exact {
        let codes = |o: &smartpsi::fsm::MiningOutcome| {
            let mut v: Vec<Vec<u32>> = o.frequent.iter().map(|(p, _)| canonical_code(p)).collect();
            v.sort();
            v
        };
        assert_eq!(codes(&iso_out), codes(&psi_out), "both evaluators must agree");
    } else {
        println!("(iso evaluator hit its task budget on some patterns — like ScaleMine's timeouts)");
    }

    println!("\nfrequent patterns found: {} (psi evaluator)", psi_out.frequent.len());
    let mut sizes: Vec<(usize, usize)> = frequent_by_size(&psi_out).into_iter().collect();
    sizes.sort_unstable();
    for (edges, count) in sizes {
        println!("  {edges}-edge patterns: {count}");
    }

    println!("\nevaluator comparison over {} candidate evaluations:", iso_out.evaluated);
    println!(
        "  subgraph-iso : {:>12} steps   {:>8.2?} wall",
        iso_out.total_cost(),
        iso_time
    );
    println!(
        "  PSI          : {:>12} steps   {:>8.2?} wall   ({:.1}x fewer steps)",
        psi_out.total_cost(),
        psi_time,
        iso_out.total_cost() as f64 / psi_out.total_cost().max(1) as f64
    );

    // The Figure 12 view: what a ScaleMine-style cluster would see.
    println!("\nsimulated cluster makespan (LPT over measured task costs):");
    println!("{:>8} {:>16} {:>16} {:>8}", "workers", "iso makespan", "psi makespan", "gain");
    for workers in [1usize, 2, 4, 8, 16, 32] {
        let mi = simulate_makespan(&iso_out.task_costs, workers, 500);
        let mp = simulate_makespan(&psi_out.task_costs, workers, 500);
        println!("{workers:>8} {mi:>16} {mp:>16} {:>7.1}x", mi as f64 / mp.max(1) as f64);
    }
}
