#!/usr/bin/env sh
# Panic-discipline audit for the PSI engine core.
#
# crates/core/src hosts the fault-tolerance layer (catch_unwind
# boundaries, retry ladder, failure ledger), so production code there
# must not quietly grow new panic sites: every `.unwrap()` /
# `.expect(` is either behind an isolation boundary on purpose or a
# bug. This script counts such calls on non-test, non-comment lines
# and fails when the count rises above the audited baseline.
#
# Baseline (4) — each site is deliberate:
#   evaluator.rs  x1: anchor-neighbor edge-label lookup (structural
#                     invariant of the compiled plan)
#   evaluator.rs  x2: partial_cmp sorts in the optimistic ranker —
#                     kept as the realistic NaN panic surface the
#                     isolation layer is exercised against
#   plan.rs       x1: connected-query invariant (validated on parse)
#
# To change the baseline, fix or document the new site and update
# BASELINE below in the same commit.
set -eu

cd "$(dirname "$0")/.."

BASELINE=4
total=0
for f in crates/core/src/*.rs; do
    # Test modules sit at the bottom of each file: drop everything from
    # the first `#[cfg(test)]` down, then drop comment-only lines
    # (doc comments included) before counting.
    n=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
        | grep -cE '\.unwrap\(\)|\.expect\(') || n=0
    if [ "$n" -gt 0 ]; then
        echo "  $f: $n"
    fi
    total=$((total + n))
done

echo "unwrap/expect in crates/core/src (non-test): $total (baseline $BASELINE)"
if [ "$total" -gt "$BASELINE" ]; then
    echo "audit: new unwrap()/expect() in psi-core production code." >&2
    echo "Handle the error instead, or document the site above and" >&2
    echo "raise BASELINE in scripts/audit_unwraps.sh in this commit." >&2
    exit 1
fi
