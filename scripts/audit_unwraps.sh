#!/usr/bin/env sh
# Panic-discipline audit for the PSI engine core and the matching
# kernels.
#
# crates/core/src hosts the fault-tolerance layer (catch_unwind
# boundaries, retry ladder, failure ledger) and crates/match/src runs
# inside those boundaries, so production code in either must not
# quietly grow new panic sites: every `.unwrap()` / `.expect(` is
# either behind an isolation boundary on purpose or a bug. This script
# counts such calls on non-test, non-comment lines per crate and fails
# when a count rises above that crate's audited baseline.
#
# crates/core/src baseline (4) — each site is deliberate:
#   evaluator.rs  x1: anchor-neighbor edge-label lookup (structural
#                     invariant of the compiled plan)
#   evaluator.rs  x2: partial_cmp sorts in the optimistic ranker —
#                     kept as the realistic NaN panic surface the
#                     isolation layer is exercised against
#   plan.rs       x1: connected-query invariant (validated on parse)
#
# crates/match/src baseline (9) — all structural invariants of parsed,
# connected pivoted queries (panicking here means the query parser is
# broken, and the core's panic isolation turns it into one accounted
# node failure, not an abort):
#   cfl.rs        x2: spanning-tree parent/child edge labels exist
#   cfl.rs        x1: connected query yields a next BFS node
#   common.rs     x1: chosen anchor is a neighbor of the current node
#   graphql.rs    x2: non-empty query / connected-query ordering
#   turboiso.rs   x1: connected query yields a next tree node
#   turboiso.rs   x1: TurboIso⁺ always forces the pivot as start
#   vf2.rs        x1: an unmapped query node exists while depth < n
#
# crates/core/src/engine baseline (0) — the PR-4 layered engine
# (context/training/ladder/exec/service, plus the PR-5 evolve and PR-6
# shard modules) was written panic-free from the start: poisoned locks
# are ridden out explicitly and every fallible path returns through
# the failure ledger. Keep it at zero.
#
# engine/shard.rs additionally gets its own zero-baseline line: the
# scatter-gather layer fans one query out across shard worker pools,
# so a panic there escapes *outside* the per-shard catch_unwind
# boundary and would poison the merge, not one node. The per-file
# check keeps that guarantee from being absorbed into the directory
# total if the directory baseline is ever raised.
#
# crates/signature/src baseline (0) — signature construction and the
# PR-5 incremental maintainer sit under the served-graph update path
# (PsiService::apply_update), where a panic would take down the update
# lock, not one query: batches are validated up front and every
# fallible path returns GraphError. Keep it at zero.
#
# engine/net.rs and engine/proto.rs (PR 7) get their own
# zero-baseline lines for the same reason shard.rs does: the network
# front door runs OUTSIDE every catch_unwind boundary — a panic in the
# accept loop, a connection thread, or the wire parser kills serving
# for every client, not one node. The malformed-protocol corpus test
# (crates/core/tests/net.rs) proves hostile input cannot panic these
# modules; this audit keeps refactors from quietly reintroducing a
# panic site.
#
# signature/store.rs and engine/deploy.rs (PR 8) get per-file
# zero-baseline lines: the pluggable signature store sits under every
# stage-1/2/3 row read and the deploy front door is the one
# constructor every serving topology now routes through — a panic in
# either takes down the whole deployment, not one node. (deploy.rs's
# `into_service`/`into_sharded` use documented explicit `panic!` for
# caller topology-contract violations; the audit tracks the quiet
# `.unwrap()`/`.expect(` sites, which must stay at zero.)
#
# engine/pool.rs (PR 9) gets a per-file zero-baseline line: the
# shared lazy worker pool is process-global state under every parallel
# driver — a quiet panic site there would strand scatter latches and
# hang every future parallel run, not one node. Poisoned mutexes and
# condvars are ridden out with unwrap_or_else(into_inner), and task
# panics are contained by catch_unwind + the completion latch. Keep it
# at zero.
#
# engine/adapt.rs (PR 10) gets a per-file zero-baseline line: the
# adaptation loop runs under the service's admission path (the queue
# lock) and inside the sharded coordinator's merge — a quiet panic
# site there would wedge submission for every client, not one node.
# Refits treat a failed fit as "keep the old models" and every
# reservoir path is bounds-checked. Keep it at zero.
#
# To change a baseline, fix or document the new site and update the
# BASELINE value below in the same commit.
set -eu

cd "$(dirname "$0")/.."

fail=0

audit_dir() {
    dir="$1"
    baseline="$2"
    total=0
    for f in "$dir"/*.rs; do
        # Test modules sit at the bottom of each file: drop everything
        # from the first `#[cfg(test)]` down, then drop comment-only
        # lines (doc comments included) before counting.
        n=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
            | grep -cE '\.unwrap\(\)|\.expect\(') || n=0
        if [ "$n" -gt 0 ]; then
            echo "  $f: $n"
        fi
        total=$((total + n))
    done
    echo "unwrap/expect in $dir (non-test): $total (baseline $baseline)"
    if [ "$total" -gt "$baseline" ]; then
        echo "audit: new unwrap()/expect() in $dir production code." >&2
        echo "Handle the error instead, or document the site above and" >&2
        echo "raise the baseline in scripts/audit_unwraps.sh in this" >&2
        echo "commit." >&2
        fail=1
    fi
}

audit_file() {
    f="$1"
    baseline="$2"
    n=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
        | grep -cE '\.unwrap\(\)|\.expect\(') || n=0
    echo "unwrap/expect in $f (non-test): $n (baseline $baseline)"
    if [ "$n" -gt "$baseline" ]; then
        echo "audit: new unwrap()/expect() in $f production code." >&2
        echo "Handle the error instead, or document the site and raise" >&2
        echo "the baseline in scripts/audit_unwraps.sh in this commit." >&2
        fail=1
    fi
}

audit_dir crates/core/src 4
audit_dir crates/core/src/engine 0
audit_file crates/core/src/engine/shard.rs 0
audit_file crates/core/src/engine/net.rs 0
audit_file crates/core/src/engine/proto.rs 0
audit_file crates/core/src/engine/deploy.rs 0
audit_file crates/core/src/engine/pool.rs 0
audit_file crates/core/src/engine/adapt.rs 0
audit_file crates/signature/src/store.rs 0
audit_dir crates/match/src 9
audit_dir crates/signature/src 0

exit "$fail"
