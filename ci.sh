#!/usr/bin/env sh
# Tier-1 verification, runnable offline (all dependencies are vendored
# path crates; see [workspace.dependencies] in Cargo.toml).
#
#   ./ci.sh
#
# Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

# Quarantined tests are opted out with #[ignore = "reason"]; listing
# them keeps the quarantine visible in every CI log. (The suite is
# currently quarantine-free — this prints an empty list.)
echo "==> quarantined (ignored) tests"
cargo test -q --offline -- --ignored --list

echo "ci.sh: all green"
