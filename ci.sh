#!/usr/bin/env sh
# Tier-1 verification, runnable offline (all dependencies are vendored
# path crates; see [workspace.dependencies] in Cargo.toml).
#
#   ./ci.sh
#
# Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo clippy (-D warnings)"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo test -q"
cargo test -q --offline

# The fault-injection differential suite is the robustness gate: it
# proves panic isolation, budget-escalation recovery, and worker-death
# requeue keep answers exact. Run it by name so a regression is
# impossible to miss in the log.
echo "==> fault-injection suite"
cargo test -p psi-core --test fault_injection --offline

echo "==> unwrap/expect audit (crates/core/src, crates/core/src/engine, crates/match/src, crates/signature/src)"
sh scripts/audit_unwraps.sh

# The docs are API contract: rustdoc warnings (broken intra-doc links,
# missing docs) fail the build.
echo "==> cargo doc --no-deps (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

# Observability overhead guard: the recorder seam on the clean path
# must stay under 3% (asserted inside the binary; also writes
# BENCH_profile.json with a sample QueryProfile).
echo "==> observability overhead bench (<3%)"
cargo run --release --offline -p psi-bench --bin profile

# Serve throughput guard: the persistent PsiService must stay at least
# as fast as per-query scoped pools on a ≥64-job batch (asserted
# inside the binary with PSI_SERVE_SLACK, default 1.15; also writes
# BENCH_serve.json and cross-checks every service answer against
# sequential runs).
echo "==> serve throughput bench (service >= scoped pools)"
cargo run --release --offline -p psi-bench --bin serve

# Dynamic-graph guard: incremental signature repair must stay ≥5× per
# update over a from-scratch rebuild on a 50k-node/200-update stream,
# and the add_node append stream must stay linear (asserted inside the
# binary with PSI_DYNAMIC_SLACK, default 1.0; also writes
# BENCH_dynamic.json after a bit-exactness check of the maintained
# matrix against a from-scratch build).
echo "==> dynamic-graph bench (incremental >= 5x rebuild, linear append)"
cargo run --release --offline -p psi-bench --bin dynamic

# Shard guard: scatter-gather serving over a 4-shard range cut of a
# 500k-node locality-ordered graph must stay within PSI_SHARD_SLACK
# (default 1.5) of a single-context service with the same total worker
# count, the peak per-shard signature slab must undercut half the full
# matrix, and every merged answer projection must equal the
# single-context one (all asserted inside the binary; also writes
# BENCH_shard.json).
echo "==> shard bench (scatter-gather parity + per-shard slab < 1/2 full)"
cargo run --release --offline -p psi-bench --bin shard

# Front-door latency guard: under 2x-saturation offered load the p99
# latency of ADMITTED jobs must stay within the queue-depth bound the
# admission ladder enforces, every shed response must carry a
# retry_after_ms hint, and a seeded chaos + mid-stream drain run must
# lose zero accepted jobs — every request the server reads gets
# exactly one answer or one structured failure (asserted inside the
# binary with PSI_LATENCY_SLACK, default 3.0; also writes
# BENCH_latency.json).
echo "==> front-door latency bench (bounded p99 under overload, zero loss)"
cargo run --release --offline -p psi-bench --bin latency

# Compact-store guard: on a 5M-node/64-label generated graph the
# quantized u8+bitset signature index must fit in a third of the dense
# f32 matrix, every compact answer projection must equal the dense
# engine's, and the compact query wall must stay within
# PSI_COMPACT_SLACK (default 1.5) of dense (all asserted inside the
# binary; also writes BENCH_compact.json).
echo "==> compact store bench (index <= 1/3 dense, identical answers)"
cargo run --release --offline -p psi-bench --bin compact

# Parallel scaling guard: on the fig9 dense single-label study the
# work-stealing pool (train once, one batched phase-A sweep, warm
# shared worker pool) must beat static chunking (per-chunk retraining)
# by at least 2.0x / PSI_PARALLEL_SLACK at 8 threads (asserted inside
# the binary; also refreshes BENCH_parallel.json).
echo "==> parallel scaling bench (work stealing >= 2x static at 8 threads)"
PSI_FIG9_SCALING_ONLY=1 cargo run --release --offline -p psi-bench --bin fig9

# Adaptive-serving guard: on a drifting query stream (mid-stream
# update skews a label's population) the adapting deployment must beat
# the frozen per-query convention post-drift on method-prediction
# accuracy AND stay within slack on total steps, with verdicts
# bit-identical between the arms on every job (asserted inside the
# binary with PSI_ADAPTIVE_SLACK, default 1.05; also writes
# BENCH_adaptive.json).
echo "==> adaptive serving bench (adaptive beats frozen post-drift)"
cargo run --release --offline -p psi-bench --bin adaptive

# Quarantined tests are opted out with #[ignore = "reason"]; listing
# them keeps the quarantine visible in every CI log. (The suite is
# currently quarantine-free — this prints an empty list.)
echo "==> quarantined (ignored) tests"
cargo test -q --offline -- --ignored --list

echo "ci.sh: all green"
