//! MNI support evaluation: the classic subgraph-isomorphism way and
//! the PSI way the paper proposes.

use psi_core::single::{psi_with_strategy_presig, RunOptions};
use psi_core::Strategy;
use psi_graph::{Graph, PivotedQuery};
use psi_match::{SearchBudget, SubgraphMatcher};
use psi_signature::SignatureMatrix;

use crate::pattern::Pattern;

/// Result of one support evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportOutcome {
    /// The MNI support (exact when `exact`, a lower bound otherwise).
    pub support: usize,
    /// Search steps spent (the task-cost unit fed to the scheduler
    /// simulation).
    pub cost: u64,
    /// Whether the evaluation ran to completion within its budget.
    pub exact: bool,
}

/// A pluggable frequency evaluator.
pub trait SupportEvaluator {
    /// Compute (or bound) the MNI support of `pattern`. `threshold`
    /// lets implementations stop early once infrequency is proven
    /// (any pattern node with fewer than `threshold` distinct images
    /// settles the answer).
    fn mni_support(&mut self, pattern: &Pattern, threshold: usize) -> SupportOutcome;

    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// Classic ScaleMine-style evaluation: enumerate embeddings with a
/// subgraph-isomorphism engine and collect per-node distinct images.
pub struct IsoSupport<'g> {
    g: &'g Graph,
    /// Step cap per pattern (the stand-in for the paper's 24-hour task
    /// limit; exhausted evaluations report a lower bound).
    pub step_budget: u64,
}

impl<'g> IsoSupport<'g> {
    /// New evaluator over `g`.
    pub fn new(g: &'g Graph, step_budget: u64) -> Self {
        Self { g, step_budget }
    }
}

impl SupportEvaluator for IsoSupport<'_> {
    fn mni_support(&mut self, pattern: &Pattern, _threshold: usize) -> SupportOutcome {
        let q = pattern.graph();
        let n = q.node_count();
        let mut images: Vec<psi_graph::hash::FxHashSet<u32>> =
            vec![psi_graph::hash::FxHashSet::default(); n];
        let budget = SearchBudget::steps(self.step_budget);
        let engine = psi_match::turboiso::TurboIso::default();
        let stats = engine.enumerate(self.g, q, &budget, &mut |emb| {
            for (v, &u) in emb.iter().enumerate() {
                images[v].insert(u);
            }
            true
        });
        let support = images.iter().map(|s| s.len()).min().unwrap_or(0);
        SupportOutcome {
            support,
            cost: stats.steps,
            exact: stats.outcome == psi_match::BudgetOutcome::Completed,
        }
    }

    fn name(&self) -> &'static str {
        "subgraph-iso"
    }
}

/// The paper's optimization: one PSI query per pattern node. Each
/// query returns the distinct images of that node directly — no
/// embedding enumeration — and a node falling below the threshold
/// settles infrequency immediately.
pub struct PsiSupport<'g> {
    g: &'g Graph,
    sigs: &'g SignatureMatrix,
    options: RunOptions,
}

impl<'g> PsiSupport<'g> {
    /// New evaluator over `g` with its precomputed signatures.
    pub fn new(g: &'g Graph, sigs: &'g SignatureMatrix) -> Self {
        Self {
            g,
            sigs,
            options: RunOptions::default(),
        }
    }
}

impl SupportEvaluator for PsiSupport<'_> {
    fn mni_support(&mut self, pattern: &Pattern, threshold: usize) -> SupportOutcome {
        let q = pattern.graph();
        let mut support = usize::MAX;
        let mut cost = 0u64;
        for v in q.node_ids() {
            let pq = PivotedQuery::from_graph(q.clone(), v).expect("patterns are connected");
            let r = psi_with_strategy_presig(self.g, self.sigs, &pq, Strategy::pessimistic(), &self.options);
            cost += r.steps;
            support = support.min(r.count());
            if support < threshold {
                break; // anti-monotone early exit
            }
        }
        SupportOutcome {
            support: if support == usize::MAX { 0 } else { support },
            cost,
            exact: true,
        }
    }

    fn name(&self) -> &'static str {
        "psi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    /// A graph with 3 copies of edge (0)-(1) and one (0)-(2).
    fn small() -> Graph {
        graph_from(
            &[0, 1, 0, 1, 0, 1, 0, 2],
            &[(0, 1), (2, 3), (4, 5), (6, 7)],
        )
        .unwrap()
    }

    #[test]
    fn iso_and_psi_agree_on_support() {
        let g = small();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let p = Pattern::seed(0, 0, 1);
        let mut iso = IsoSupport::new(&g, u64::MAX);
        let mut psi = PsiSupport::new(&g, &sigs);
        let a = iso.mni_support(&p, 1);
        let b = psi.mni_support(&p, 1);
        assert_eq!(a.support, 3);
        assert_eq!(b.support, 3);
        assert!(a.exact && b.exact);
    }

    #[test]
    fn psi_early_exits_below_threshold() {
        let g = small();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        // Pattern 0-2 has support 1.
        let p = Pattern::seed(0, 0, 2);
        let mut psi = PsiSupport::new(&g, &sigs);
        let out = psi.mni_support(&p, 5);
        assert!(out.support < 5);
    }

    #[test]
    fn missing_pattern_has_zero_support() {
        let g = small();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let p = Pattern::seed(1, 0, 2);
        let mut iso = IsoSupport::new(&g, u64::MAX);
        let mut psi = PsiSupport::new(&g, &sigs);
        assert_eq!(iso.mni_support(&p, 1).support, 0);
        assert_eq!(psi.mni_support(&p, 1).support, 0);
    }

    #[test]
    fn iso_budget_censors() {
        // Dense mono-label graph: enumeration explodes, budget bites.
        let mut edges = Vec::new();
        for u in 0..14u32 {
            for v in (u + 1)..14 {
                edges.push((u, v));
            }
        }
        let g = graph_from(&[0; 14], &edges).unwrap();
        let p = Pattern::from_parts(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]);
        let mut iso = IsoSupport::new(&g, 200);
        let out = iso.mni_support(&p, 1);
        assert!(!out.exact);
        assert!(out.cost <= 210);
    }

    #[test]
    fn psi_cost_is_much_lower_on_symmetric_blowup() {
        // Hub-and-spokes: PSI per node is linear-ish, enumeration is
        // factorial in the arms.
        let mut labels = vec![0u16];
        let mut edges = Vec::new();
        for i in 1..=9u32 {
            labels.push(1);
            edges.push((0, i));
        }
        let g = graph_from(&labels, &edges).unwrap();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let p = Pattern::from_parts(&[0, 1, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
        let mut iso = IsoSupport::new(&g, u64::MAX);
        let mut psi = PsiSupport::new(&g, &sigs);
        let a = iso.mni_support(&p, 1);
        let b = psi.mni_support(&p, 1);
        assert_eq!(a.support, b.support);
        assert!(b.cost < a.cost, "psi {} vs iso {}", b.cost, a.cost);
    }
}
