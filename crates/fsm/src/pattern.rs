//! Patterns: the small candidate subgraphs the miner grows, plus
//! canonical codes for duplicate elimination.

use psi_graph::{Graph, GraphBuilder, LabelId, NodeId};

/// A candidate pattern: a small connected labeled graph.
///
/// Thin wrapper over [`Graph`] so the miner can carry the pattern's
/// edge list (useful for extension) alongside the CSR form (used by
/// the matchers).
#[derive(Debug, Clone)]
pub struct Pattern {
    graph: Graph,
    /// Edges as `(u, v, edge_label)` with `u < v`.
    edges: Vec<(NodeId, NodeId, LabelId)>,
}

impl Pattern {
    /// A single-edge pattern `la -el- lb`.
    pub fn seed(la: LabelId, el: LabelId, lb: LabelId) -> Self {
        let mut b = GraphBuilder::new();
        let u = b.add_node(la);
        let v = b.add_node(lb);
        b.add_labeled_edge(u, v, el);
        let graph = b.build().expect("seed pattern is valid");
        Self {
            graph,
            edges: vec![(0, 1, el)],
        }
    }

    /// Build from parts.
    pub fn from_parts(labels: &[LabelId], edges: &[(NodeId, NodeId, LabelId)]) -> Self {
        let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
        for &l in labels {
            b.add_node(l);
        }
        let mut norm: Vec<(NodeId, NodeId, LabelId)> = edges
            .iter()
            .map(|&(u, v, l)| (u.min(v), u.max(v), l))
            .collect();
        norm.sort_unstable();
        norm.dedup();
        for &(u, v, l) in &norm {
            b.add_labeled_edge(u, v, l);
        }
        Self {
            graph: b.build().expect("pattern parts are valid"),
            edges: norm,
        }
    }

    /// The pattern graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Pattern edges `(u, v, edge_label)` with `u < v`, sorted.
    pub fn edges(&self) -> &[(NodeId, NodeId, LabelId)] {
        &self.edges
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Extend with a new node of label `l` attached to pattern node
    /// `at` via an edge labeled `el`.
    pub fn extend_with_node(&self, at: NodeId, el: LabelId, l: LabelId) -> Pattern {
        let mut labels: Vec<LabelId> = self.graph.labels().to_vec();
        labels.push(l);
        let new_id = (labels.len() - 1) as NodeId;
        let mut edges = self.edges.clone();
        edges.push((at.min(new_id), at.max(new_id), el));
        Pattern::from_parts(&labels, &edges)
    }

    /// Extend with a closing edge between existing nodes `u` and `v`.
    /// Returns `None` if the edge already exists.
    pub fn extend_with_edge(&self, u: NodeId, v: NodeId, el: LabelId) -> Option<Pattern> {
        let key = (u.min(v), u.max(v));
        if u == v || self.edges.iter().any(|&(a, b, _)| (a, b) == key) {
            return None;
        }
        let mut edges = self.edges.clone();
        edges.push((key.0, key.1, el));
        Some(Pattern::from_parts(self.graph.labels(), &edges))
    }
}

/// Canonical code of a pattern: the lexicographically smallest
/// `(labels, edges)` encoding over all node permutations. Two patterns
/// have equal codes iff they are isomorphic (including labels).
///
/// Brute force over permutations — patterns in FSM have ≤ 8 nodes, so
/// this is at most 40320 cheap comparisons and far simpler than a
/// DFS-code implementation.
pub fn canonical_code(p: &Pattern) -> Vec<u32> {
    let n = p.node_count();
    let labels = p.graph().labels();
    let mut best: Option<Vec<u32>> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |perm| {
        // Encode: node labels in perm order, then sorted relabeled edges.
        let mut code: Vec<u32> = Vec::with_capacity(n + p.edge_count() * 3);
        // inverse permutation: old -> new
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        for &old in perm.iter() {
            code.push(labels[old] as u32);
        }
        let mut edges: Vec<(u32, u32, u32)> = p
            .edges()
            .iter()
            .map(|&(u, v, l)| {
                let (a, b) = (inv[u as usize] as u32, inv[v as usize] as u32);
                (a.min(b), a.max(b), l as u32)
            })
            .collect();
        edges.sort_unstable();
        for (a, b, l) in edges {
            code.push(a);
            code.push(b);
            code.push(l);
        }
        if best.as_ref().is_none_or(|b| code < *b) {
            best = Some(code);
        }
    });
    best.unwrap_or_default()
}

fn permute(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_pattern() {
        let p = Pattern::seed(3, 0, 5);
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.edge_count(), 1);
        assert_eq!(p.graph().label(0), 3);
        assert_eq!(p.graph().label(1), 5);
    }

    #[test]
    fn extend_with_node_grows() {
        let p = Pattern::seed(0, 0, 1).extend_with_node(1, 0, 2);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
        assert!(p.graph().has_edge(1, 2));
        assert!(p.graph().is_connected());
    }

    #[test]
    fn extend_with_edge_closes_cycles() {
        let p = Pattern::seed(0, 0, 0).extend_with_node(1, 0, 0);
        let closed = p.extend_with_edge(0, 2, 0).unwrap();
        assert_eq!(closed.edge_count(), 3);
        // Re-closing fails.
        assert!(closed.extend_with_edge(0, 2, 0).is_none());
        assert!(closed.extend_with_edge(1, 1, 0).is_none());
    }

    #[test]
    fn canonical_code_is_isomorphism_invariant() {
        // Path a-b-c encoded two ways (different node orders).
        let p1 = Pattern::from_parts(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]);
        let p2 = Pattern::from_parts(&[2, 1, 0], &[(0, 1, 0), (1, 2, 0)]);
        assert_eq!(canonical_code(&p1), canonical_code(&p2));
        // A different label placement differs (middle label 0, not 1).
        let other = Pattern::from_parts(&[1, 0, 2], &[(0, 1, 0), (1, 2, 0)]);
        assert_ne!(canonical_code(&p1), canonical_code(&other));
    }

    #[test]
    fn canonical_code_distinguishes_edge_labels() {
        let p1 = Pattern::from_parts(&[0, 0], &[(0, 1, 1)]);
        let p2 = Pattern::from_parts(&[0, 0], &[(0, 1, 2)]);
        assert_ne!(canonical_code(&p1), canonical_code(&p2));
    }

    #[test]
    fn canonical_code_triangle_vs_path() {
        let tri = Pattern::from_parts(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        let path = Pattern::from_parts(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]);
        assert_ne!(canonical_code(&tri), canonical_code(&path));
        // Triangle is fully symmetric: all relabelings give one code.
        let tri2 = Pattern::from_parts(&[0, 0, 0], &[(0, 2, 0), (1, 2, 0), (0, 1, 0)]);
        assert_eq!(canonical_code(&tri), canonical_code(&tri2));
    }
}
