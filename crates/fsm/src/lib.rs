//! # psi-fsm
//!
//! Frequent Subgraph Mining over a single large graph — the substrate
//! for §5.5 of the SmartPSI paper, where replacing subgraph isomorphism
//! with PSI inside ScaleMine yields up to 6× end-to-end speedups.
//!
//! The miner follows the GraMi/ScaleMine recipe:
//!
//! * **support measure**: MNI (minimum node image) — the minimum, over
//!   pattern nodes `v`, of the number of *distinct* data nodes that
//!   bind `v` in some embedding. MNI is anti-monotone, so mining can
//!   proceed level-wise (grow-and-test).
//! * **pattern growth**: extend each frequent pattern by one edge
//!   (either a new labeled node hooked onto an existing pattern node,
//!   or a closing edge between two existing nodes), restricted to
//!   label triples that actually occur in the data graph; duplicates
//!   are removed with a brute-force canonical code (patterns are tiny).
//! * **frequency evaluation** is pluggable ([`SupportEvaluator`]):
//!   [`support::IsoSupport`] enumerates embeddings like classic
//!   ScaleMine, [`support::PsiSupport`] issues one PSI query per
//!   pattern node — the paper's optimization. Computing the MNI of a
//!   node is *exactly* a PSI query: "finding the distinct input graph
//!   nodes that match their corresponding candidate subgraph nodes".
//! * **distributed scaling** (Figure 12's x-axis) is reproduced with a
//!   deterministic scheduler simulation ([`schedule`]): per-pattern
//!   evaluation costs are measured for real, then assigned to `k`
//!   simulated workers by the longest-processing-time rule; the
//!   reported makespan is what a ScaleMine master would observe. (A
//!   Cray XC40 is not available; DESIGN.md documents the
//!   substitution.)

#![warn(missing_docs)]

pub mod miner;
pub mod pattern;
pub mod schedule;
pub mod support;

pub use miner::{MinerConfig, MiningOutcome, Miner};
pub use pattern::{canonical_code, Pattern};
pub use schedule::simulate_makespan;
pub use support::{IsoSupport, PsiSupport, SupportEvaluator, SupportOutcome};
