//! The level-wise frequent-subgraph miner.

use psi_graph::hash::{FxHashMap, FxHashSet};
use psi_graph::{Graph, LabelId, NodeId};

use crate::pattern::{canonical_code, Pattern};
use crate::support::{SupportEvaluator, SupportOutcome};

/// Miner configuration.
#[derive(Debug, Clone, Copy)]
pub struct MinerConfig {
    /// MNI support threshold.
    pub threshold: usize,
    /// Maximum pattern size in edges (the paper caps Weibo at 6).
    pub max_edges: usize,
    /// Safety cap on candidates evaluated per level (0 = unlimited);
    /// exceeding it marks the outcome inexact.
    pub max_candidates_per_level: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            threshold: 2,
            max_edges: 4,
            max_candidates_per_level: 0,
        }
    }
}

/// What a mining run produced.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// Frequent patterns with their supports, in discovery order.
    pub frequent: Vec<(Pattern, usize)>,
    /// Measured cost of every evaluated candidate (the task list fed to
    /// [`crate::schedule::simulate_makespan`]).
    pub task_costs: Vec<u64>,
    /// Candidates evaluated in total.
    pub evaluated: usize,
    /// False when any support evaluation was censored by its budget or
    /// a level was truncated.
    pub exact: bool,
}

impl MiningOutcome {
    /// Total measured cost.
    pub fn total_cost(&self) -> u64 {
        self.task_costs.iter().sum()
    }
}

/// Level-wise miner bound to one data graph.
pub struct Miner<'g> {
    /// Kept for future extension generators that need graph access
    /// beyond the label-triple index (e.g. degree-aware pruning).
    _g: &'g Graph,
    config: MinerConfig,
    /// (node label, edge label, node label) triples present in the
    /// data, both orientations — the only extensions worth generating.
    triples: FxHashSet<(LabelId, LabelId, LabelId)>,
}

impl<'g> Miner<'g> {
    /// Create a miner; scans the graph once for its label triples.
    pub fn new(g: &'g Graph, config: MinerConfig) -> Self {
        let mut triples = FxHashSet::default();
        for (u, v, el) in g.edges() {
            triples.insert((g.label(u), el, g.label(v)));
            triples.insert((g.label(v), el, g.label(u)));
        }
        Self { _g: g, config, triples }
    }

    /// The distinct seed patterns (single frequent-candidate edges).
    fn seeds(&self) -> Vec<Pattern> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for &(la, el, lb) in &self.triples {
            let key = (la.min(lb), el, la.max(lb));
            if seen.insert(key) {
                out.push(Pattern::seed(key.0, key.1, key.2));
            }
        }
        // Deterministic order for reproducibility.
        out.sort_by_key(canonical_code);
        out
    }

    /// All one-edge extensions of `p`, deduplicated against `seen`.
    fn extensions(&self, p: &Pattern, seen: &mut FxHashSet<Vec<u32>>) -> Vec<Pattern> {
        let mut out = Vec::new();
        let q = p.graph();
        // New-node extensions.
        for at in q.node_ids() {
            let la = q.label(at);
            for &(a, el, lb) in &self.triples {
                if a != la {
                    continue;
                }
                let child = p.extend_with_node(at, el, lb);
                let code = canonical_code(&child);
                if seen.insert(code) {
                    out.push(child);
                }
            }
        }
        // Closing-edge extensions.
        let n = q.node_count() as NodeId;
        for u in 0..n {
            for v in (u + 1)..n {
                if q.has_edge(u, v) {
                    continue;
                }
                let (lu, lv) = (q.label(u), q.label(v));
                // Distinct edge labels seen between these node labels.
                let labels: FxHashSet<LabelId> = self
                    .triples
                    .iter()
                    .filter(|&&(a, _, b)| a == lu && b == lv)
                    .map(|&(_, el, _)| el)
                    .collect();
                for el in labels {
                    if let Some(child) = p.extend_with_edge(u, v, el) {
                        let code = canonical_code(&child);
                        if seen.insert(code) {
                            out.push(child);
                        }
                    }
                }
            }
        }
        out
    }

    /// Run the mine with the given support evaluator.
    pub fn mine<E: SupportEvaluator>(&self, eval: &mut E) -> MiningOutcome {
        let mut outcome = MiningOutcome {
            frequent: Vec::new(),
            task_costs: Vec::new(),
            evaluated: 0,
            exact: true,
        };
        let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
        let mut frontier: Vec<Pattern> = Vec::new();

        for seed in self.seeds() {
            seen.insert(canonical_code(&seed));
            let SupportOutcome { support, cost, exact } =
                eval.mni_support(&seed, self.config.threshold);
            outcome.task_costs.push(cost);
            outcome.evaluated += 1;
            outcome.exact &= exact;
            if support >= self.config.threshold {
                outcome.frequent.push((seed.clone(), support));
                frontier.push(seed);
            }
        }

        while !frontier.is_empty() {
            let mut candidates: Vec<Pattern> = Vec::new();
            for p in &frontier {
                if p.edge_count() >= self.config.max_edges {
                    continue;
                }
                candidates.extend(self.extensions(p, &mut seen));
            }
            if self.config.max_candidates_per_level > 0
                && candidates.len() > self.config.max_candidates_per_level
            {
                candidates.truncate(self.config.max_candidates_per_level);
                outcome.exact = false;
            }
            let mut next = Vec::new();
            for cand in candidates {
                let SupportOutcome { support, cost, exact } =
                    eval.mni_support(&cand, self.config.threshold);
                outcome.task_costs.push(cost);
                outcome.evaluated += 1;
                outcome.exact &= exact;
                if support >= self.config.threshold {
                    outcome.frequent.push((cand.clone(), support));
                    next.push(cand);
                }
            }
            frontier = next;
        }
        outcome
    }
}

/// Convenience: per-pattern-size counts of the frequent set.
pub fn frequent_by_size(outcome: &MiningOutcome) -> FxHashMap<usize, usize> {
    let mut m = FxHashMap::default();
    for (p, _) in &outcome.frequent {
        *m.entry(p.edge_count()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::{IsoSupport, PsiSupport};
    use psi_graph::builder::graph_from;

    /// Two triangles of labels (0,1,2) plus a pendant edge.
    fn data() -> Graph {
        graph_from(
            &[0, 1, 2, 0, 1, 2, 3],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (0, 6)],
        )
        .unwrap()
    }

    #[test]
    fn mines_the_two_triangles() {
        let g = data();
        let miner = Miner::new(&g, MinerConfig { threshold: 2, max_edges: 3, ..Default::default() });
        let mut eval = IsoSupport::new(&g, u64::MAX);
        let out = miner.mine(&mut eval);
        assert!(out.exact);
        // Frequent: edges 0-1, 1-2, 0-2 (support 2 each), the three
        // 2-edge paths, and the triangle.
        let by_size = frequent_by_size(&out);
        assert_eq!(by_size.get(&1), Some(&3));
        assert!(by_size.get(&3).copied().unwrap_or(0) >= 1, "triangle found");
        // The pendant (0)-(3) edge has support 1 < 2: not frequent.
        assert!(out
            .frequent
            .iter()
            .all(|(p, _)| !p.graph().labels().contains(&3)));
    }

    #[test]
    fn iso_and_psi_mining_agree() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let cfg = MinerConfig { threshold: 2, max_edges: 3, ..Default::default() };
        let miner = Miner::new(&g, cfg);
        let mut iso = IsoSupport::new(&g, u64::MAX);
        let mut psi = PsiSupport::new(&g, &sigs);
        let a = miner.mine(&mut iso);
        let b = miner.mine(&mut psi);
        let codes = |o: &MiningOutcome| {
            let mut v: Vec<Vec<u32>> = o.frequent.iter().map(|(p, _)| canonical_code(p)).collect();
            v.sort();
            v
        };
        assert_eq!(codes(&a), codes(&b));
        // Supports agree pattern-by-pattern.
        let sup = |o: &MiningOutcome| {
            let mut v: Vec<(Vec<u32>, usize)> =
                o.frequent.iter().map(|(p, s)| (canonical_code(p), *s)).collect();
            v.sort();
            v
        };
        assert_eq!(sup(&a), sup(&b));
    }

    #[test]
    fn threshold_prunes_everything_when_too_high() {
        let g = data();
        let miner = Miner::new(&g, MinerConfig { threshold: 100, max_edges: 3, ..Default::default() });
        let mut eval = IsoSupport::new(&g, u64::MAX);
        let out = miner.mine(&mut eval);
        assert!(out.frequent.is_empty());
        assert!(out.evaluated > 0, "seeds are still evaluated");
    }

    #[test]
    fn max_edges_caps_growth() {
        let g = data();
        let miner = Miner::new(&g, MinerConfig { threshold: 2, max_edges: 1, ..Default::default() });
        let mut eval = IsoSupport::new(&g, u64::MAX);
        let out = miner.mine(&mut eval);
        assert!(out.frequent.iter().all(|(p, _)| p.edge_count() <= 1));
    }

    #[test]
    fn anti_monotonicity_holds() {
        // Every frequent pattern's sub-pattern obtained by removing the
        // last edge must also be frequent (when connected). We check
        // supports are non-increasing along the discovery order chain:
        // each level's patterns have support ≥ threshold and the
        // supports of extensions never exceed their parents'. Verify a
        // weaker, directly checkable form: support of any (k+1)-edge
        // frequent pattern ≤ max support among k-edge frequent ones.
        let g = data();
        let miner = Miner::new(&g, MinerConfig { threshold: 1, max_edges: 3, ..Default::default() });
        let mut eval = IsoSupport::new(&g, u64::MAX);
        let out = miner.mine(&mut eval);
        let max_by_size: FxHashMap<usize, usize> =
            out.frequent.iter().fold(FxHashMap::default(), |mut m, (p, s)| {
                let e = m.entry(p.edge_count()).or_insert(0);
                *e = (*e).max(*s);
                m
            });
        for (p, s) in &out.frequent {
            if p.edge_count() > 1 {
                let parent_max = max_by_size[&(p.edge_count() - 1)];
                assert!(*s <= parent_max, "support grew with pattern size");
            }
        }
    }

    #[test]
    fn task_costs_recorded_per_candidate() {
        let g = data();
        let miner = Miner::new(&g, MinerConfig { threshold: 2, max_edges: 2, ..Default::default() });
        let mut eval = IsoSupport::new(&g, u64::MAX);
        let out = miner.mine(&mut eval);
        assert_eq!(out.task_costs.len(), out.evaluated);
        assert!(out.total_cost() > 0);
    }
}
