//! Deterministic scheduler simulation for the distributed sweep of
//! Figure 12.
//!
//! ScaleMine's master hands frequency-evaluation tasks to workers; at
//! laptop scale we measure each task's serial cost for real and then
//! compute the makespan a `k`-worker cluster would achieve under the
//! longest-processing-time (LPT) greedy rule, plus a per-task
//! coordination overhead. The quantity Figure 12 plots — total mining
//! time as a function of compute nodes, for the iso-based vs the
//! PSI-based evaluator — is preserved because both evaluators are
//! scheduled identically and differ only in their measured task costs.

/// Simulate the makespan of `tasks` (cost units) on `workers` parallel
/// workers using LPT greedy assignment. `per_task_overhead` models
/// master-worker coordination per task (added to each task's cost).
///
/// Returns the maximum total load over workers. Zero workers is a
/// contract violation.
pub fn simulate_makespan(tasks: &[u64], workers: usize, per_task_overhead: u64) -> u64 {
    assert!(workers > 0, "need at least one worker");
    if tasks.is_empty() {
        return 0;
    }
    let mut sorted: Vec<u64> = tasks.iter().map(|&t| t + per_task_overhead).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    // Binary heap of (load, worker) — take the least-loaded worker.
    // With ≤ a few thousand tasks and ≤ 64 workers a linear scan is
    // simpler and fast enough.
    let mut load = vec![0u64; workers];
    for t in sorted {
        let (i, _) = load
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .expect("workers > 0");
        load[i] += t;
    }
    load.into_iter().max().unwrap_or(0)
}

/// Speedup curve: makespan at 1 worker divided by makespan at each of
/// `worker_counts`.
pub fn speedup_curve(tasks: &[u64], worker_counts: &[usize], per_task_overhead: u64) -> Vec<f64> {
    let serial = simulate_makespan(tasks, 1, per_task_overhead).max(1);
    worker_counts
        .iter()
        .map(|&w| serial as f64 / simulate_makespan(tasks, w, per_task_overhead).max(1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_sums() {
        assert_eq!(simulate_makespan(&[3, 5, 2], 1, 0), 10);
        assert_eq!(simulate_makespan(&[3, 5, 2], 1, 1), 13);
    }

    #[test]
    fn perfect_split() {
        assert_eq!(simulate_makespan(&[4, 4, 4, 4], 2, 0), 8);
        assert_eq!(simulate_makespan(&[4, 4, 4, 4], 4, 0), 4);
    }

    #[test]
    fn bounded_by_longest_task() {
        // One giant task dominates no matter how many workers.
        assert_eq!(simulate_makespan(&[100, 1, 1, 1], 8, 0), 100);
    }

    #[test]
    fn lpt_is_reasonable() {
        // LPT on {5,4,3,3,3} with 2 workers gives 10 (optimal is 9 —
        // LPT is a 4/3-approximation, which is what ScaleMine's greedy
        // master achieves too).
        assert_eq!(simulate_makespan(&[5, 4, 3, 3, 3], 2, 0), 10);
    }

    #[test]
    fn empty_tasks() {
        assert_eq!(simulate_makespan(&[], 4, 10), 0);
    }

    #[test]
    fn more_workers_never_slower() {
        let tasks: Vec<u64> = (1..=40).map(|i| (i * 13) % 97 + 1).collect();
        let mut prev = u64::MAX;
        for w in [1, 2, 4, 8, 16, 32] {
            let m = simulate_makespan(&tasks, w, 5);
            assert!(m <= prev, "workers {w}: {m} > {prev}");
            prev = m;
        }
    }

    #[test]
    fn speedup_curve_monotone_and_bounded() {
        let tasks: Vec<u64> = (1..=100).map(|i| (i * 7) % 50 + 1).collect();
        let curve = speedup_curve(&tasks, &[1, 2, 4, 8], 0);
        assert!((curve[0] - 1.0).abs() < 1e-9);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
        assert!(curve[3] <= 8.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        simulate_makespan(&[1], 0, 0);
    }
}
