//! Property tests for the FSM substrate.

use proptest::prelude::*;
use psi_fsm::{canonical_code, IsoSupport, Miner, MinerConfig, Pattern, PsiSupport, SupportEvaluator};
use psi_graph::builder::graph_from;
use psi_graph::Graph;

fn random_graph() -> impl Strategy<Value = Graph> {
    (4usize..=14, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<u16> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.3) {
                    edges.push((u, v));
                }
            }
        }
        graph_from(&labels, &edges).expect("valid")
    })
}

fn random_pattern(seed: u64) -> Pattern {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Pattern::seed(rng.gen_range(0..3), 0, rng.gen_range(0..3));
    for _ in 0..rng.gen_range(0..3usize) {
        let at = rng.gen_range(0..p.node_count() as u32);
        p = p.extend_with_node(at, 0, rng.gen_range(0..3));
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both support evaluators agree on every pattern.
    #[test]
    fn evaluators_agree(g in random_graph(), pseed in any::<u64>()) {
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let p = random_pattern(pseed);
        let a = IsoSupport::new(&g, u64::MAX).mni_support(&p, 1);
        let b = PsiSupport::new(&g, &sigs).mni_support(&p, 1);
        prop_assert_eq!(a.support, b.support, "pattern {:?}", p.graph().labels());
    }

    /// Canonical codes are invariant under random node relabelings.
    #[test]
    fn canonical_code_permutation_invariant(pseed in any::<u64>(), perm_seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let p = random_pattern(pseed);
        let n = p.node_count();
        // Random permutation of node ids.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let labels: Vec<u16> = (0..n).map(|i| {
            let orig = perm.iter().position(|&x| x == i as u32).unwrap();
            p.graph().label(orig as u32)
        }).collect();
        let edges: Vec<(u32, u32, u16)> = p
            .edges()
            .iter()
            .map(|&(u, v, l)| (perm[u as usize], perm[v as usize], l))
            .collect();
        let q = Pattern::from_parts(&labels, &edges);
        prop_assert_eq!(canonical_code(&p), canonical_code(&q));
    }

    /// Support is anti-monotone: extending a pattern never increases
    /// its MNI support.
    #[test]
    fn support_is_anti_monotone(g in random_graph(), pseed in any::<u64>()) {
        let p = random_pattern(pseed);
        let mut iso = IsoSupport::new(&g, u64::MAX);
        let parent = iso.mni_support(&p, 1);
        let child = p.extend_with_node(0, 0, 1);
        let child_support = iso.mni_support(&child, 1);
        prop_assert!(child_support.support <= parent.support);
    }

    /// Mining with a higher threshold yields a subset of the frequent
    /// patterns of a lower threshold.
    #[test]
    fn threshold_monotonicity(g in random_graph()) {
        let lo = Miner::new(&g, MinerConfig { threshold: 1, max_edges: 2, max_candidates_per_level: 200 })
            .mine(&mut IsoSupport::new(&g, u64::MAX));
        let hi = Miner::new(&g, MinerConfig { threshold: 2, max_edges: 2, max_candidates_per_level: 200 })
            .mine(&mut IsoSupport::new(&g, u64::MAX));
        let lo_codes: std::collections::HashSet<Vec<u32>> =
            lo.frequent.iter().map(|(p, _)| canonical_code(p)).collect();
        for (p, s) in &hi.frequent {
            prop_assert!(*s >= 2);
            prop_assert!(lo_codes.contains(&canonical_code(p)), "hi-frequent missing at lo");
        }
    }

    /// Every mined pattern's support is at least the threshold and its
    /// pattern actually occurs (support via the other evaluator > 0).
    #[test]
    fn mined_patterns_are_sound(g in random_graph()) {
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let cfg = MinerConfig { threshold: 2, max_edges: 2, max_candidates_per_level: 200 };
        let out = Miner::new(&g, cfg).mine(&mut PsiSupport::new(&g, &sigs));
        for (p, s) in &out.frequent {
            prop_assert!(*s >= 2);
            let check = IsoSupport::new(&g, u64::MAX).mni_support(p, 1);
            prop_assert_eq!(check.support, *s);
        }
    }
}
