//! The six named datasets of the paper (Table 3), as synthetic
//! equivalents.
//!
//! | Dataset | paper |V| | paper |E| | labels | here |V| | here |E| |
//! |---------|-----------|-----------|--------|----------|----------|
//! | Yeast   | 3,112     | 12,519    | 71     | full     | full     |
//! | Cora    | 2,708     | 5,429     | 7      | full     | full     |
//! | Human   | 4,674     | 86,282    | 44     | full     | full     |
//! | YouTube | 5,101,938 | 42,546,295| 25     | 1:100    | 1:100    |
//! | Twitter | 11,316,811| 85,331,846| 25     | 1:150    | 1:150    |
//! | Weibo   | 1,655,678 | 369,438,063| 55    | 1:80     | 1:400    |
//!
//! The three small graphs are generated at full paper size. The
//! web-scale graphs are scaled to laptop budgets while preserving label
//! alphabet and degree character; Weibo's extreme density (avg degree
//! ≈ 446) is kept clearly above the others (≈ 90 here). The scale can
//! be tightened further with [`PaperDataset::generate_scaled`].

use psi_graph::Graph;

use crate::generators::{DegreeFamily, GeneratorConfig};

/// One of the six datasets used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Protein-protein interaction network (3,112 nodes, 71 labels).
    Yeast,
    /// Citation graph (2,708 nodes, 7 labels).
    Cora,
    /// Dense protein-protein interaction network (4,674 nodes, 44 labels).
    Human,
    /// Video similarity network (scaled; 25 labels).
    Youtube,
    /// Follower network (scaled; 25 labels).
    Twitter,
    /// Very dense follower network (scaled; 55 labels).
    Weibo,
}

impl PaperDataset {
    /// All six datasets in the paper's order.
    pub const ALL: [PaperDataset; 6] = [
        PaperDataset::Yeast,
        PaperDataset::Cora,
        PaperDataset::Human,
        PaperDataset::Youtube,
        PaperDataset::Twitter,
        PaperDataset::Weibo,
    ];

    /// The three small datasets (generated at full paper size).
    pub const SMALL: [PaperDataset; 3] =
        [PaperDataset::Yeast, PaperDataset::Cora, PaperDataset::Human];

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::Yeast => "Yeast",
            PaperDataset::Cora => "Cora",
            PaperDataset::Human => "Human",
            PaperDataset::Youtube => "YouTube",
            PaperDataset::Twitter => "Twitter",
            PaperDataset::Weibo => "Weibo",
        }
    }

    /// Default generator configuration (already scaled for the large
    /// graphs; see the module docs).
    pub fn config(self) -> GeneratorConfig {
        match self {
            PaperDataset::Yeast => GeneratorConfig {
                nodes: 3_112,
                edges: 12_519,
                labels: 71,
                label_skew: 1.1,
                label_homophily: 0.3,
                family: DegreeFamily::HeavyTailed,
            },
            PaperDataset::Cora => GeneratorConfig {
                nodes: 2_708,
                edges: 5_429,
                labels: 7,
                label_skew: 0.9,
                label_homophily: 0.0,
                family: DegreeFamily::Uniform,
            },
            PaperDataset::Human => GeneratorConfig {
                nodes: 4_674,
                edges: 86_282,
                labels: 44,
                label_skew: 1.4,
                label_homophily: 0.3,
                family: DegreeFamily::HeavyTailed,
            },
            PaperDataset::Youtube => GeneratorConfig {
                nodes: 51_000,
                edges: 425_000,
                labels: 25,
                label_skew: 0.8,
                label_homophily: 0.65,
                family: DegreeFamily::PowerLaw,
            },
            PaperDataset::Twitter => GeneratorConfig {
                nodes: 75_000,
                edges: 569_000,
                labels: 25,
                label_skew: 0.8,
                label_homophily: 0.65,
                family: DegreeFamily::PowerLaw,
            },
            PaperDataset::Weibo => GeneratorConfig {
                nodes: 20_000,
                edges: 900_000,
                labels: 55,
                label_skew: 0.8,
                label_homophily: 0.7,
                family: DegreeFamily::PowerLaw,
            },
        }
    }

    /// Generate the dataset with the default (scaled) configuration.
    pub fn generate(self, seed: u64) -> Graph {
        self.config().generate(seed)
    }

    /// Generate with node/edge counts multiplied by `factor`
    /// (0 < factor ≤ 1); used by quick tests and CI-sized benches.
    pub fn generate_scaled(self, factor: f64, seed: u64) -> Graph {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let mut cfg = self.config();
        cfg.nodes = ((cfg.nodes as f64 * factor) as usize).max(16);
        cfg.edges = ((cfg.edges as f64 * factor) as usize).max(15);
        cfg.generate(seed)
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PaperDataset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "yeast" => Ok(PaperDataset::Yeast),
            "cora" => Ok(PaperDataset::Cora),
            "human" => Ok(PaperDataset::Human),
            "youtube" => Ok(PaperDataset::Youtube),
            "twitter" => Ok(PaperDataset::Twitter),
            "weibo" => Ok(PaperDataset::Weibo),
            other => Err(format!("unknown dataset '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::GraphStats;

    #[test]
    fn small_datasets_match_paper_sizes() {
        let yeast = PaperDataset::Yeast.generate(1);
        assert_eq!(yeast.node_count(), 3_112);
        let cora = PaperDataset::Cora.generate(1);
        assert_eq!(cora.node_count(), 2_708);
        assert_eq!(cora.edge_count(), 5_429);
        assert!(cora.label_count() <= 7);
        let human = PaperDataset::Human.generate(1);
        assert_eq!(human.node_count(), 4_674);
    }

    #[test]
    fn human_is_much_denser_than_cora() {
        let cora = PaperDataset::Cora.generate(2);
        let human = PaperDataset::Human.generate(2);
        assert!(human.avg_degree() > 5.0 * cora.avg_degree());
    }

    #[test]
    fn weibo_is_the_densest() {
        let weibo = PaperDataset::Weibo.generate_scaled(0.2, 3);
        let twitter = PaperDataset::Twitter.generate_scaled(0.2, 3);
        assert!(weibo.avg_degree() > 2.0 * twitter.avg_degree());
    }

    #[test]
    fn scaled_generation_shrinks() {
        let g = PaperDataset::Youtube.generate_scaled(0.05, 4);
        assert!(g.node_count() < 5_000);
        assert!(g.node_count() >= 16);
    }

    #[test]
    fn name_and_parse_roundtrip() {
        for d in PaperDataset::ALL {
            let parsed: PaperDataset = d.name().parse().unwrap();
            assert_eq!(parsed, d);
        }
        assert!("nonsense".parse::<PaperDataset>().is_err());
    }

    #[test]
    fn label_alphabets_match_table3() {
        for (d, labels) in [
            (PaperDataset::Yeast, 71),
            (PaperDataset::Cora, 7),
            (PaperDataset::Human, 44),
            (PaperDataset::Youtube, 25),
            (PaperDataset::Twitter, 25),
            (PaperDataset::Weibo, 55),
        ] {
            assert_eq!(d.config().labels, labels, "{d}");
        }
    }

    #[test]
    fn social_graphs_have_power_law_tails() {
        let g = PaperDataset::Twitter.generate_scaled(0.1, 5);
        let s = GraphStats::of(&g);
        assert!(s.max_degree as f64 > 10.0 * s.avg_degree);
    }
}
