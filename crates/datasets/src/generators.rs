//! Random labeled-graph generators.
//!
//! Three degree families cover the paper's datasets:
//!
//! * [`DegreeFamily::Uniform`] — Erdős–Rényi G(n, m); citation-like
//!   sparse graphs (Cora).
//! * [`DegreeFamily::PowerLaw`] — Barabási–Albert preferential
//!   attachment; social networks (YouTube, Twitter, Weibo).
//! * [`DegreeFamily::HeavyTailed`] — preferential attachment blended
//!   with uniform attachment; protein-interaction networks (Yeast,
//!   Human), whose degree distributions are skewed but flatter than
//!   pure power laws.
//!
//! Labels are drawn from a [`ZipfSampler`], matching the skewed label
//! histograms of real labeled graphs.

use psi_graph::{Graph, GraphBuilder, LabelId, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::ZipfSampler;

/// Degree-distribution family of a generated graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeFamily {
    /// Erdős–Rényi G(n, m).
    Uniform,
    /// Pure preferential attachment (Barabási–Albert).
    PowerLaw,
    /// Preferential attachment mixed 50/50 with uniform attachment.
    HeavyTailed,
}

/// Full configuration of a synthetic graph.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of undirected edges (approximate for the
    /// attachment models: duplicates are collapsed).
    pub edges: usize,
    /// Label alphabet size.
    pub labels: usize,
    /// Zipf exponent for label frequencies (0 = uniform).
    pub label_skew: f64,
    /// Probability that a node copies the label of a neighbor instead
    /// of drawing a fresh one (attachment families only). Real social
    /// networks are strongly homophilous — users cluster by city or
    /// interest — which produces the locally-similar, globally-rare
    /// label patterns that make PSI evaluation hard. 0 disables.
    pub label_homophily: f64,
    /// Degree-distribution family.
    pub family: DegreeFamily,
}

impl GeneratorConfig {
    /// Generate a graph from this configuration with the given seed.
    pub fn generate(&self, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        match self.family {
            DegreeFamily::Uniform => erdos_renyi_with(self, &mut rng),
            DegreeFamily::PowerLaw => attachment_with(self, 0.0, &mut rng),
            DegreeFamily::HeavyTailed => attachment_with(self, 0.5, &mut rng),
        }
    }
}

fn sample_labels(cfg: &GeneratorConfig, rng: &mut StdRng) -> Vec<LabelId> {
    let zipf = ZipfSampler::new(cfg.labels.max(1), cfg.label_skew);
    (0..cfg.nodes).map(|_| zipf.sample(rng) as LabelId).collect()
}

/// Erdős–Rényi G(n, m): `m` distinct uniformly random edges.
pub fn erdos_renyi(nodes: usize, edges: usize, labels: usize, seed: u64) -> Graph {
    GeneratorConfig {
        nodes,
        edges,
        labels,
        label_skew: 0.6,
        label_homophily: 0.0,
        family: DegreeFamily::Uniform,
    }
    .generate(seed)
}

fn erdos_renyi_with(cfg: &GeneratorConfig, rng: &mut StdRng) -> Graph {
    let n = cfg.nodes;
    let mut b = GraphBuilder::with_capacity(n, cfg.edges);
    for l in sample_labels(cfg, rng) {
        b.add_node(l);
    }
    if n >= 2 {
        let mut seen = psi_graph::hash::FxHashSet::<(NodeId, NodeId)>::default();
        seen.reserve(cfg.edges);
        while seen.len() < cfg.edges.min(n * (n - 1) / 2) {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                b.add_edge(key.0, key.1);
            }
        }
    }
    b.build().expect("generator produces valid edges")
}

/// Barabási–Albert preferential attachment with `edges/nodes` links per
/// new node.
pub fn barabasi_albert(nodes: usize, edges: usize, labels: usize, seed: u64) -> Graph {
    GeneratorConfig {
        nodes,
        edges,
        labels,
        label_skew: 0.8,
        label_homophily: 0.0,
        family: DegreeFamily::PowerLaw,
    }
    .generate(seed)
}

/// Attachment-model generator. `uniform_mix` is the probability that a
/// new node attaches to a uniformly random earlier node instead of a
/// degree-proportional one (0 = pure BA, 1 = random recursive graph).
fn attachment_with(cfg: &GeneratorConfig, uniform_mix: f64, rng: &mut StdRng) -> Graph {
    let n = cfg.nodes;
    let mut labels = sample_labels(cfg, rng);
    if n < 2 {
        let mut b = GraphBuilder::with_capacity(n, 0);
        for l in labels {
            b.add_node(l);
        }
        return b.build().expect("valid");
    }
    let m = (cfg.edges / n.max(1)).max(1);
    // `endpoint_pool` holds one entry per edge endpoint, so uniform
    // sampling from it is degree-proportional sampling (standard BA
    // trick).
    let mut endpoint_pool: Vec<NodeId> = Vec::with_capacity(cfg.edges * 2);
    let mut picked: Vec<NodeId> = Vec::with_capacity(m);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(cfg.edges + m * m);
    // Seed clique over the first m+1 nodes.
    let seed_size = (m + 1).min(n);
    for u in 0..seed_size as NodeId {
        for v in (u + 1)..seed_size as NodeId {
            edges.push((u, v));
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    for u in seed_size as NodeId..n as NodeId {
        picked.clear();
        let mut guard = 0;
        while picked.len() < m && guard < 50 * m {
            guard += 1;
            let t = if endpoint_pool.is_empty() || rng.gen_bool(uniform_mix) {
                rng.gen_range(0..u)
            } else {
                endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
            };
            if t != u && !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push((u, t));
            endpoint_pool.push(u);
            endpoint_pool.push(t);
        }
        // Homophily: with probability `label_homophily`, adopt the
        // label of one of the nodes this node attached to.
        if cfg.label_homophily > 0.0 && !picked.is_empty() && rng.gen_bool(cfg.label_homophily) {
            let t = picked[rng.gen_range(0..picked.len())];
            labels[u as usize] = labels[t as usize];
        }
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for l in labels {
        b.add_node(l);
    }
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().expect("generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::GraphStats;

    #[test]
    fn erdos_renyi_exact_edge_count() {
        let g = erdos_renyi(100, 300, 5, 1);
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_count(), 300);
        assert!(g.label_count() <= 5);
    }

    #[test]
    fn erdos_renyi_caps_at_complete_graph() {
        let g = erdos_renyi(5, 1000, 2, 1);
        assert_eq!(g.edge_count(), 10); // C(5,2)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = erdos_renyi(50, 100, 4, 9);
        let b = erdos_renyi(50, 100, 4, 9);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = erdos_renyi(50, 100, 4, 10);
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn barabasi_albert_is_connected_and_skewed() {
        let g = barabasi_albert(500, 1500, 10, 3);
        assert_eq!(g.node_count(), 500);
        assert!(g.is_connected(), "BA graphs are connected by construction");
        // Heavy tail: max degree far above average.
        let s = GraphStats::of(&g);
        assert!(
            s.max_degree as f64 > 4.0 * s.avg_degree,
            "max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn heavy_tailed_family_lies_between() {
        let cfg = GeneratorConfig {
            nodes: 500,
            edges: 1500,
            labels: 8,
            label_skew: 0.5,
            label_homophily: 0.0,
            family: DegreeFamily::HeavyTailed,
        };
        let g = cfg.generate(4);
        assert!(g.is_connected());
        let s = GraphStats::of(&g);
        assert!(s.max_degree > s.avg_degree as usize);
    }

    #[test]
    fn labels_follow_skew() {
        let cfg = GeneratorConfig {
            nodes: 20_000,
            edges: 0,
            labels: 10,
            label_skew: 1.0,
            label_homophily: 0.0,
            family: DegreeFamily::Uniform,
        };
        let g = cfg.generate(5);
        let s = GraphStats::of(&g);
        // Most frequent label must dominate the least frequent.
        let max = s.label_histogram.iter().max().unwrap();
        let min = s.label_histogram.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(max > &(min * 3), "max {max} min {min}");
    }

    #[test]
    fn tiny_graphs() {
        let g = erdos_renyi(0, 0, 3, 1);
        assert_eq!(g.node_count(), 0);
        let g = erdos_renyi(1, 5, 3, 1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        let g = barabasi_albert(1, 5, 3, 1);
        assert_eq!(g.edge_count(), 0);
        let g = barabasi_albert(2, 5, 3, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edge_budget_roughly_met_by_attachment() {
        let g = barabasi_albert(1000, 5000, 6, 2);
        let e = g.edge_count();
        assert!((4000..=5600).contains(&e), "edges {e}");
    }
}
