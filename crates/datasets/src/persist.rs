//! Workload persistence: save and reload extracted query workloads so
//! experiments can be replayed bit-for-bit (and shared between the
//! repro binaries and external tools).
//!
//! The format extends the graph text format with a `t` header per
//! query and a `p <pivot>` record:
//!
//! ```text
//! t query 0
//! p 2
//! v 0 3
//! v 1 4
//! v 2 3
//! e 0 1
//! e 1 2
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use psi_graph::{GraphBuilder, GraphError, PivotedQuery};

use crate::QueryWorkload;

/// Write a workload to a writer.
pub fn write_workload<W: Write>(w: &QueryWorkload, mut out: W) -> Result<(), GraphError> {
    for (i, q) in w.queries.iter().enumerate() {
        writeln!(out, "t query {i}")?;
        writeln!(out, "p {}", q.pivot())?;
        let g = q.graph();
        for n in g.node_ids() {
            writeln!(out, "v {} {}", n, g.label(n))?;
        }
        for (u, v, l) in g.edges() {
            if l == psi_graph::UNLABELED_EDGE {
                writeln!(out, "e {u} {v}")?;
            } else {
                writeln!(out, "e {u} {v} {l}")?;
            }
        }
    }
    Ok(())
}

/// Save a workload to a file.
pub fn save_workload<P: AsRef<Path>>(w: &QueryWorkload, path: P) -> Result<(), GraphError> {
    let f = std::fs::File::create(path)?;
    write_workload(w, std::io::BufWriter::new(f))
}

/// Read a workload from a reader. The workload `size` is taken from
/// the first query; mixed sizes are rejected.
pub fn read_workload<R: Read>(reader: R) -> Result<QueryWorkload, GraphError> {
    let r = BufReader::new(reader);
    let mut queries = Vec::new();
    let mut builder: Option<GraphBuilder> = None;
    let mut pivot: Option<u32> = None;
    let mut lineno = 0usize;

    let flush = |builder: &mut Option<GraphBuilder>,
                     pivot: &mut Option<u32>,
                     queries: &mut Vec<PivotedQuery>,
                     lineno: usize|
     -> Result<(), GraphError> {
        if let Some(b) = builder.take() {
            let p = pivot.take().ok_or(GraphError::Parse {
                line: lineno,
                message: "query without 'p' pivot record".into(),
            })?;
            let g = b.build()?;
            queries.push(PivotedQuery::from_graph(g, p)?);
        }
        Ok(())
    };

    for line in r.lines() {
        lineno += 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut tok = t.split_ascii_whitespace();
        let parse_err = |m: &str| GraphError::Parse {
            line: lineno,
            message: m.to_string(),
        };
        match tok.next().unwrap_or("") {
            "t" => {
                flush(&mut builder, &mut pivot, &mut queries, lineno)?;
                builder = Some(GraphBuilder::new());
            }
            "p" => {
                pivot = Some(
                    tok.next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| parse_err("expected pivot id"))?,
                );
            }
            "v" => {
                let b = builder.as_mut().ok_or_else(|| parse_err("'v' before 't'"))?;
                let _id: u64 = tok
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| parse_err("expected node id"))?;
                let label: u16 = tok
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| parse_err("expected node label"))?;
                b.add_node(label);
            }
            "e" => {
                let b = builder.as_mut().ok_or_else(|| parse_err("'e' before 't'"))?;
                let u: u32 = tok
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| parse_err("expected edge source"))?;
                let v: u32 = tok
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| parse_err("expected edge target"))?;
                let l: u16 = match tok.next() {
                    Some(x) => x.parse().map_err(|_| parse_err("bad edge label"))?,
                    None => psi_graph::UNLABELED_EDGE,
                };
                b.add_labeled_edge(u, v, l);
            }
            _ => return Err(parse_err("expected 't', 'p', 'v' or 'e'")),
        }
    }
    flush(&mut builder, &mut pivot, &mut queries, lineno)?;
    if queries.is_empty() {
        return Err(GraphError::Parse {
            line: lineno,
            message: "workload is empty".into(),
        });
    }
    let size = queries[0].size();
    if queries.iter().any(|q| q.size() != size) {
        return Err(GraphError::Parse {
            line: lineno,
            message: "mixed query sizes in one workload".into(),
        });
    }
    Ok(QueryWorkload { size, queries })
}

/// Load a workload from a file.
pub fn load_workload<P: AsRef<Path>>(path: P) -> Result<QueryWorkload, GraphError> {
    read_workload(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_workload() -> QueryWorkload {
        let g = crate::generators::erdos_renyi(60, 200, 4, 3);
        QueryWorkload::extract(&g, 4, 5, 9).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let w = sample_workload();
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        let w2 = read_workload(buf.as_slice()).unwrap();
        assert_eq!(w.size, w2.size);
        assert_eq!(w.queries.len(), w2.queries.len());
        for (a, b) in w.queries.iter().zip(&w2.queries) {
            assert_eq!(a.pivot(), b.pivot());
            assert_eq!(a.graph().labels(), b.graph().labels());
            assert_eq!(
                a.graph().edges().collect::<Vec<_>>(),
                b.graph().edges().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("psi_workload_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.q");
        let w = sample_workload();
        save_workload(&w, &path).unwrap();
        let w2 = load_workload(&path).unwrap();
        assert_eq!(w.queries.len(), w2.queries.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_pivot_rejected() {
        let text = "t query 0\nv 0 1\n";
        assert!(matches!(
            read_workload(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_workload("".as_bytes()).is_err());
    }

    #[test]
    fn mixed_sizes_rejected() {
        let text = "t q\np 0\nv 0 1\nt q\np 0\nv 0 1\nv 1 1\ne 0 1\n";
        assert!(matches!(
            read_workload(text.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn record_before_header_rejected() {
        assert!(read_workload("v 0 1\n".as_bytes()).is_err());
        assert!(read_workload("e 0 1\n".as_bytes()).is_err());
    }
}
