//! Zipf-distributed sampling for skewed label assignment.
//!
//! Label frequencies in real labeled graphs are highly skewed (a few
//! dominant categories, a long tail). `rand` does not ship a Zipf
//! distribution, so we implement inverse-CDF sampling over a
//! precomputed table — exact, O(log k) per draw.

use rand::Rng;

/// Samples `0..k` with probability `P(i) ∝ (i + 1)^-s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative distribution; `cdf[i]` = P(value ≤ i).
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `k` values with exponent `s ≥ 0`.
    /// `s = 0` is the uniform distribution; larger `s` is more skewed.
    ///
    /// # Panics
    /// Panics if `k == 0` or `s` is negative/non-finite.
    pub fn new(k: usize, s: f64) -> Self {
        assert!(k > 0, "ZipfSampler needs at least one value");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0f64;
        for i in 0..k {
            acc += ((i + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of values.
    pub fn k(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one value in `0..k`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Exact probability of value `i`.
    pub fn probability(&self, i: usize) -> f64 {
        if i >= self.cdf.len() {
            return 0.0;
        }
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(10, 1.1);
        let total: f64 = (0..10).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = ZipfSampler::new(4, 0.0);
        for i in 0..4 {
            assert!((z.probability(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_probabilities() {
        let z = ZipfSampler::new(5, 1.5);
        for i in 1..5 {
            assert!(z.probability(i) < z.probability(i - 1));
        }
    }

    #[test]
    fn samples_match_distribution() {
        let z = ZipfSampler::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - z.probability(i)).abs() < 0.01,
                "value {i}: freq {freq} vs p {}",
                z.probability(i)
            );
        }
    }

    #[test]
    fn single_value_always_zero() {
        let z = ZipfSampler::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn out_of_range_probability_is_zero() {
        let z = ZipfSampler::new(3, 1.0);
        assert_eq!(z.probability(99), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_values_rejected() {
        ZipfSampler::new(0, 1.0);
    }
}
