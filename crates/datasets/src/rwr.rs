//! Query extraction by random walk with restart (§5.1 of the paper).
//!
//! "A random walk with restart algorithm is used to extract 1000 query
//! graphs for each size. […] The resulted queries span a wide range of
//! query complexities including paths, trees, stars and other complex
//! shapes."
//!
//! The walk starts at a random node, restarts to the start node with a
//! fixed probability at each step, and accumulates distinct visited
//! nodes until the requested query size is reached. The query is the
//! subgraph of the data graph *induced* on those nodes (connected by
//! construction), with a uniformly random pivot.

use psi_graph::algo::induced_subgraph;
use psi_graph::{Graph, NodeId, PivotedQuery};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Parameters of the random-walk-with-restart extractor.
#[derive(Debug, Clone, Copy)]
pub struct RwrConfig {
    /// Restart probability per step (the literature's customary 0.15).
    pub restart_probability: f64,
    /// Give up on a start node after this many steps without having
    /// collected enough distinct nodes (e.g. the walk started in a tiny
    /// component) and re-seed elsewhere.
    pub max_steps_per_attempt: usize,
    /// Total attempts before concluding the graph cannot produce a
    /// query of the requested size.
    pub max_attempts: usize,
}

impl Default for RwrConfig {
    fn default() -> Self {
        Self {
            restart_probability: 0.15,
            max_steps_per_attempt: 4_096,
            max_attempts: 256,
        }
    }
}

/// Extract one connected query of `size` nodes with a random pivot.
///
/// Returns `None` if the graph has no connected subgraph of the
/// requested size reachable by the walk within the configured budget
/// (e.g. `size` exceeds the largest component).
pub fn extract_query<R: Rng + ?Sized>(
    g: &Graph,
    size: usize,
    cfg: &RwrConfig,
    rng: &mut R,
) -> Option<PivotedQuery> {
    if size == 0 || g.node_count() < size {
        return None;
    }
    for _ in 0..cfg.max_attempts {
        let start = rng.gen_range(0..g.node_count() as NodeId);
        if let Some(nodes) = walk_from(g, start, size, cfg, rng) {
            return Some(induce_query(g, &nodes, rng));
        }
    }
    None
}

/// Convenience wrapper seeding its own RNG.
pub fn extract_query_seeded(g: &Graph, size: usize, seed: u64) -> Option<PivotedQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    extract_query(g, size, &RwrConfig::default(), &mut rng)
}

fn walk_from<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    size: usize,
    cfg: &RwrConfig,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    let mut collected: Vec<NodeId> = Vec::with_capacity(size);
    collected.push(start);
    let mut cur = start;
    for _ in 0..cfg.max_steps_per_attempt {
        if collected.len() == size {
            return Some(collected);
        }
        if rng.gen_bool(cfg.restart_probability) {
            cur = start;
            continue;
        }
        let ns = g.neighbors(cur);
        if ns.is_empty() {
            return None; // isolated start node
        }
        cur = ns[rng.gen_range(0..ns.len())];
        if !collected.contains(&cur) {
            collected.push(cur);
        }
    }
    None
}

/// Build the induced subgraph on `nodes` (order defines the id
/// remapping) and pivot it on a uniformly random member.
fn induce_query<R: Rng + ?Sized>(g: &Graph, nodes: &[NodeId], rng: &mut R) -> PivotedQuery {
    let graph = induced_subgraph(g, nodes);
    let pivot = rng.gen_range(0..nodes.len() as NodeId);
    PivotedQuery::from_graph(graph, pivot).expect("walk-collected node sets are connected")
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_datasets_test_helpers::*;

    /// Local helpers (kept in a module so the name is descriptive in
    /// test output).
    mod psi_datasets_test_helpers {
        pub use psi_graph::builder::graph_from;
    }

    #[test]
    fn extracts_connected_query_of_requested_size() {
        let g = crate::generators::erdos_renyi(200, 800, 5, 11);
        for size in 2..=8 {
            let q = extract_query_seeded(&g, size, size as u64).expect("query");
            assert_eq!(q.size(), size);
            assert!(q.graph().is_connected());
        }
    }

    #[test]
    fn query_labels_and_edges_come_from_data_graph() {
        let g = graph_from(&[3, 1, 4, 1], &[(0, 1), (1, 2), (2, 3), (1, 3)]).unwrap();
        let q = extract_query_seeded(&g, 3, 7).unwrap();
        // Every query node label must exist in g, every query edge must
        // have label UNLABELED_EDGE (g is edge-unlabeled).
        for n in q.graph().node_ids() {
            assert!(g.labels().contains(&q.graph().label(n)));
        }
        for (_, _, l) in q.graph().edges() {
            assert_eq!(l, psi_graph::UNLABELED_EDGE);
        }
    }

    #[test]
    fn induced_subgraph_keeps_all_internal_edges() {
        // Triangle: any 3-node query must have all 3 edges.
        let g = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let q = extract_query_seeded(&g, 3, 1).unwrap();
        assert_eq!(q.graph().edge_count(), 3);
    }

    #[test]
    fn size_too_large_returns_none() {
        let g = graph_from(&[0, 1], &[(0, 1)]).unwrap();
        assert!(extract_query_seeded(&g, 3, 1).is_none());
        assert!(extract_query_seeded(&g, 0, 1).is_none());
    }

    #[test]
    fn disconnected_graph_cannot_exceed_component() {
        // Two disconnected edges; size-3 queries are impossible.
        let g = graph_from(&[0, 0, 0, 0], &[(0, 1), (2, 3)]).unwrap();
        assert!(extract_query_seeded(&g, 3, 5).is_none());
        // size-2 queries work.
        assert!(extract_query_seeded(&g, 2, 5).is_some());
    }

    #[test]
    fn single_node_query() {
        let g = graph_from(&[2, 3], &[(0, 1)]).unwrap();
        let q = extract_query_seeded(&g, 1, 3).unwrap();
        assert_eq!(q.size(), 1);
    }

    #[test]
    fn extraction_is_deterministic_per_seed() {
        let g = crate::generators::erdos_renyi(100, 300, 4, 2);
        let a = extract_query_seeded(&g, 5, 42).unwrap();
        let b = extract_query_seeded(&g, 5, 42).unwrap();
        assert_eq!(a.pivot(), b.pivot());
        assert_eq!(a.graph().labels(), b.graph().labels());
        assert_eq!(
            a.graph().edges().collect::<Vec<_>>(),
            b.graph().edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn queries_vary_across_seeds() {
        let g = crate::generators::erdos_renyi(500, 2000, 6, 3);
        let qs: Vec<_> = (0..20)
            .filter_map(|s| extract_query_seeded(&g, 6, s))
            .map(|q| q.graph().labels().to_vec())
            .collect();
        assert!(qs.len() >= 15);
        let first = &qs[0];
        assert!(qs.iter().any(|l| l != first), "expect label diversity");
    }
}
