//! Query workloads: batches of extracted queries per size, as used in
//! every experiment of the paper.

use psi_graph::{Graph, PivotedQuery};
use rand::{rngs::StdRng, SeedableRng};

use crate::rwr::{extract_query, RwrConfig};

/// A batch of same-size pivoted queries extracted from one data graph.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// Query size (node count) shared by all queries.
    pub size: usize,
    /// The extracted queries.
    pub queries: Vec<PivotedQuery>,
}

impl QueryWorkload {
    /// Extract `count` queries of `size` nodes from `g`.
    ///
    /// Returns `None` when the graph cannot produce even one query of
    /// the requested size. If fewer than `count` (but at least one)
    /// queries can be extracted within the attempt budget, the workload
    /// is returned with however many were found.
    pub fn extract(g: &Graph, size: usize, count: usize, seed: u64) -> Option<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RwrConfig::default();
        let mut queries = Vec::with_capacity(count);
        for _ in 0..count {
            match extract_query(g, size, &cfg, &mut rng) {
                Some(q) => queries.push(q),
                None => break,
            }
        }
        if queries.is_empty() {
            None
        } else {
            Some(Self { size, queries })
        }
    }

    /// Extract one workload per size in `sizes`, skipping sizes the
    /// graph cannot support.
    pub fn extract_sizes(
        g: &Graph,
        sizes: impl IntoIterator<Item = usize>,
        count: usize,
        seed: u64,
    ) -> Vec<Self> {
        sizes
            .into_iter()
            .enumerate()
            .filter_map(|(i, size)| Self::extract(g, size, count, seed.wrapping_add(i as u64 * 7919)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_requested_count() {
        let g = crate::generators::erdos_renyi(300, 1200, 5, 8);
        let w = QueryWorkload::extract(&g, 5, 25, 1).unwrap();
        assert_eq!(w.size, 5);
        assert_eq!(w.queries.len(), 25);
        assert!(w.queries.iter().all(|q| q.size() == 5));
    }

    #[test]
    fn impossible_size_yields_none() {
        let g = psi_graph::builder::graph_from(&[0, 0], &[(0, 1)]).unwrap();
        assert!(QueryWorkload::extract(&g, 10, 5, 1).is_none());
    }

    #[test]
    fn extract_sizes_covers_range() {
        let g = crate::generators::erdos_renyi(300, 1200, 5, 8);
        let ws = QueryWorkload::extract_sizes(&g, 4..=7, 5, 3);
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0].size, 4);
        assert_eq!(ws[3].size, 7);
    }

    #[test]
    fn extract_sizes_skips_impossible() {
        let g = psi_graph::builder::graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        let ws = QueryWorkload::extract_sizes(&g, vec![2, 3, 50], 3, 1);
        assert_eq!(ws.len(), 2);
    }
}
