//! # psi-datasets
//!
//! Dataset suite for the SmartPSI reproduction.
//!
//! The paper evaluates on six real graphs (Table 3): Yeast, Cora, Human,
//! YouTube, Twitter and Weibo. Those downloads are not available in this
//! offline environment, so this crate provides **synthetic generators
//! statistically matched** to each dataset: node count, edge count,
//! label-alphabet size, label-frequency skew and degree distribution
//! family (protein-interaction, citation, social). Every algorithm in
//! the workspace observes a graph only through those statistics, so the
//! paper's *comparative* results (which engine wins, where crossovers
//! fall) are preserved. The web-scale graphs are scaled down to laptop
//! budgets; the scale factor is recorded with each generated graph and
//! in `EXPERIMENTS.md`.
//!
//! Queries are extracted exactly as in the paper (§5.1): a random walk
//! with restart collects a connected node set of the requested size, the
//! induced subgraph becomes the query, and a random node is designated
//! as pivot.
//!
//! ```
//! use psi_datasets::{PaperDataset, QueryWorkload};
//!
//! let g = PaperDataset::Yeast.generate(42);
//! assert!(g.node_count() > 3000);
//! let workload = QueryWorkload::extract(&g, 5, 10, 7).unwrap();
//! assert_eq!(workload.queries.len(), 10);
//! assert!(workload.queries.iter().all(|q| q.size() == 5));
//! ```

#![warn(missing_docs)]

pub mod generators;
pub mod paper;
pub mod persist;
pub mod rwr;
pub mod workload;
pub mod zipf;

pub use generators::{barabasi_albert, erdos_renyi, DegreeFamily, GeneratorConfig};
pub use paper::PaperDataset;
pub use persist::{load_workload, read_workload, save_workload, write_workload};
pub use rwr::{extract_query, extract_query_seeded, RwrConfig};
pub use workload::QueryWorkload;
pub use zipf::ZipfSampler;
