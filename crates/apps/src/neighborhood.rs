//! Frequent neighborhood pattern mining (Han & Wen, CIKM 2013; §2.2 of
//! the SmartPSI paper).
//!
//! Given a node label `ℓ` and a support threshold `τ`, find the
//! pivoted patterns (pivot labeled `ℓ`) that at least `τ` distinct
//! data nodes satisfy. "Given a specific label, each candidate pattern
//! is evaluated by PSI to know the number of graph nodes that satisfy
//! this pattern" — the support of a pattern *is* the size of its PSI
//! answer, so this application is a direct PSI consumer.
//!
//! Candidate patterns are grown the same way `psi-fsm` grows patterns
//! (one edge at a time, canonical-code dedup), but every pattern is
//! pivoted on its `ℓ`-labeled node and support counts pivot bindings
//! only (not MNI over all pattern nodes).

use psi_core::single::{psi_with_strategy_presig, RunOptions};
use psi_core::Strategy;
use psi_fsm::{canonical_code, Pattern};
use psi_graph::hash::FxHashSet;
use psi_graph::{Graph, LabelId, PivotedQuery};
use psi_signature::SignatureMatrix;

/// Configuration of a neighborhood-pattern mine.
#[derive(Debug, Clone, Copy)]
pub struct NeighborhoodConfig {
    /// Minimum number of distinct pivot bindings.
    pub support: usize,
    /// Maximum pattern size in edges.
    pub max_edges: usize,
    /// Safety cap on candidates per level (0 = unlimited).
    pub max_candidates_per_level: usize,
}

impl Default for NeighborhoodConfig {
    fn default() -> Self {
        Self {
            support: 2,
            max_edges: 3,
            max_candidates_per_level: 2_000,
        }
    }
}

/// A frequent neighborhood pattern: the pattern (pivot is node 0 of
/// the pattern graph) and its PSI support.
#[derive(Debug, Clone)]
pub struct NeighborhoodPattern {
    /// The pattern; its pivot is always node 0 (labeled with the mined
    /// label).
    pub pattern: Pattern,
    /// Number of distinct data nodes satisfying it.
    pub support: usize,
}

/// PSI support of `pattern` pivoted on node 0.
fn psi_support(
    g: &Graph,
    sigs: &SignatureMatrix,
    pattern: &Pattern,
    opts: &RunOptions,
) -> usize {
    let q = PivotedQuery::from_graph(pattern.graph().clone(), 0)
        .expect("patterns are connected and node 0 exists");
    psi_with_strategy_presig(g, sigs, &q, Strategy::pessimistic(), opts).count()
}

/// Mine the frequent neighborhood patterns of `label`.
pub fn mine_neighborhood_patterns(
    g: &Graph,
    sigs: &SignatureMatrix,
    label: LabelId,
    config: &NeighborhoodConfig,
) -> Vec<NeighborhoodPattern> {
    let opts = RunOptions::default();
    // Label triples of the data graph, oriented from each endpoint.
    let mut triples: FxHashSet<(LabelId, LabelId, LabelId)> = FxHashSet::default();
    for (u, v, el) in g.edges() {
        triples.insert((g.label(u), el, g.label(v)));
        triples.insert((g.label(v), el, g.label(u)));
    }

    let mut out = Vec::new();
    let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
    // Seeds: one edge out of an ℓ-labeled pivot.
    let mut frontier: Vec<Pattern> = Vec::new();
    let mut seed_triples: Vec<(LabelId, LabelId)> = triples
        .iter()
        .filter(|&&(a, _, _)| a == label)
        .map(|&(_, el, b)| (el, b))
        .collect();
    seed_triples.sort_unstable();
    seed_triples.dedup();
    for (el, b) in seed_triples {
        // Not `Pattern::seed`, which normalizes label order — the
        // pivot must always be node 0 and carry the mined label.
        let p = Pattern::from_parts(&[label, b], &[(0, 1, el)]);
        if !seen.insert(pivot_code(&p)) {
            continue;
        }
        let support = psi_support(g, sigs, &p, &opts);
        if support >= config.support {
            out.push(NeighborhoodPattern {
                pattern: p.clone(),
                support,
            });
            frontier.push(p);
        }
    }

    while !frontier.is_empty() {
        let mut candidates = Vec::new();
        for p in &frontier {
            if p.edge_count() >= config.max_edges {
                continue;
            }
            // New-node extensions at every pattern node.
            for at in p.graph().node_ids() {
                let la = p.graph().label(at);
                for &(a, el, lb) in &triples {
                    if a != la {
                        continue;
                    }
                    let child = p.extend_with_node(at, el, lb);
                    if seen.insert(pivot_code(&child)) {
                        candidates.push(child);
                    }
                }
            }
        }
        if config.max_candidates_per_level > 0 && candidates.len() > config.max_candidates_per_level
        {
            candidates.truncate(config.max_candidates_per_level);
        }
        let mut next = Vec::new();
        for cand in candidates {
            let support = psi_support(g, sigs, &cand, &opts);
            if support >= config.support {
                out.push(NeighborhoodPattern {
                    pattern: cand.clone(),
                    support,
                });
                next.push(cand);
            }
        }
        frontier = next;
    }
    out
}

/// Canonical code that additionally fixes the pivot: node 0 must stay
/// distinguishable, so prefix the code with the pivot's label and
/// degree. (Plain canonical codes would merge patterns that are
/// isomorphic as graphs but pivoted differently.)
fn pivot_code(p: &Pattern) -> Vec<u32> {
    let mut code = vec![
        p.graph().label(0) as u32,
        p.graph().degree(0) as u32,
        u32::MAX, // separator
    ];
    code.extend(canonical_code(p));
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    /// Three label-0 nodes each with a label-1 neighbor; one of them
    /// additionally has a label-2 neighbor.
    fn data() -> Graph {
        graph_from(
            &[0, 1, 0, 1, 0, 1, 2],
            &[(0, 1), (2, 3), (4, 5), (4, 6)],
        )
        .unwrap()
    }

    #[test]
    fn mines_patterns_of_a_label() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let cfg = NeighborhoodConfig {
            support: 2,
            max_edges: 2,
            max_candidates_per_level: 0,
        };
        let found = mine_neighborhood_patterns(&g, &sigs, 0, &cfg);
        // (0)-(1) has support 3; nothing with label 2 reaches support 2.
        assert!(found.iter().any(|p| p.support == 3 && p.pattern.edge_count() == 1));
        assert!(found.iter().all(|p| p.pattern.graph().label(0) == 0));
        assert!(found
            .iter()
            .all(|p| !p.pattern.graph().labels().contains(&2) || p.support >= 2));
    }

    #[test]
    fn support_threshold_filters() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let strict = NeighborhoodConfig {
            support: 4,
            max_edges: 2,
            max_candidates_per_level: 0,
        };
        assert!(mine_neighborhood_patterns(&g, &sigs, 0, &strict).is_empty());
    }

    #[test]
    fn missing_label_yields_nothing() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let found = mine_neighborhood_patterns(&g, &sigs, 9, &NeighborhoodConfig::default());
        assert!(found.is_empty());
    }

    #[test]
    fn supports_match_enumeration_oracle() {
        let g = psi_datasets::generators::erdos_renyi(80, 240, 3, 5);
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let cfg = NeighborhoodConfig {
            support: 3,
            max_edges: 2,
            max_candidates_per_level: 200,
        };
        for pat in mine_neighborhood_patterns(&g, &sigs, 0, &cfg) {
            let q = PivotedQuery::from_graph(pat.pattern.graph().clone(), 0).unwrap();
            let oracle = psi_match::psi_by_enumeration(
                &psi_match::Engine::Vf2,
                &g,
                &q,
                &psi_match::SearchBudget::unlimited(),
            );
            assert_eq!(pat.support, oracle.count());
        }
    }
}
