//! # psi-apps
//!
//! The PSI application suite of §2.2 of the paper, built on the
//! SmartPSI engine. Each module is one of the applications the paper
//! uses to motivate PSI as a first-class operation:
//!
//! * [`neighborhood`] — *Mining frequent neighborhood patterns*
//!   (Han & Wen, CIKM 2013): for a given node label, find the patterns
//!   pivoted on that label satisfied by at least `τ` of its nodes.
//!   Each candidate evaluation is one PSI query.
//! * [`discovery`] — *Discovering pattern queries by sample answers*
//!   (Han et al., ICDE 2016): from a set of example answer nodes,
//!   generate candidate pivoted queries from their neighborhoods and
//!   keep those whose PSI answer covers every sample; rank by
//!   specificity.
//! * [`similarity`] — *In-network node similarity* (Yang et al., KAIS
//!   2017): similarity of two nodes measured through the pivoted
//!   subgraphs they have in common — patterns anchored at one node
//!   checked (via PSI membership) at the other.
//!
//! Frequent subgraph mining, the paper's headline application (§5.5),
//! lives in its own crate (`psi-fsm`).

#![warn(missing_docs)]

pub mod discovery;
pub mod neighborhood;
pub mod similarity;

pub use discovery::{discover_queries, DiscoveryConfig, RankedQuery};
pub use neighborhood::{mine_neighborhood_patterns, NeighborhoodConfig, NeighborhoodPattern};
pub use similarity::{pivoted_similarity, SimilarityConfig};
