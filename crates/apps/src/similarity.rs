//! In-network node similarity via common pivoted subgraphs
//! (Yang, Pei, Al-Barakati, KAIS 2017; §2.2 of the SmartPSI paper).
//!
//! "Two nodes are similar if they have similar neighborhoods. […] One
//! of the proposed metrics is the maximum common pivoted subgraph that
//! exists around the two nodes" — generalized to comparing the pivoted
//! subgraphs occurring in both neighborhoods.
//!
//! This module implements that comparison: sample pivoted patterns
//! around node `a`, check each (one PSI-membership test) at node `b`,
//! and vice versa; the similarity is the symmetric fraction of shared
//! patterns, weighted by pattern size (larger common patterns witness
//! stronger similarity).

use psi_core::evaluator::{NodeEvaluator, QueryContext, Verdict};
use psi_core::plan::heuristic_plan;
use psi_core::{EvalLimits, Strategy};
use psi_graph::{Graph, NodeId, PivotedQuery};
use psi_signature::SignatureMatrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Configuration of the similarity measure.
#[derive(Debug, Clone, Copy)]
pub struct SimilarityConfig {
    /// Patterns sampled around each node.
    pub patterns_per_node: usize,
    /// Pattern sizes sampled (inclusive range).
    pub min_size: usize,
    /// Inclusive upper bound on pattern size.
    pub max_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        Self {
            patterns_per_node: 12,
            min_size: 2,
            max_size: 4,
            seed: 23,
        }
    }
}

/// Sample a pivoted pattern from the neighborhood of `root`.
fn pattern_around(g: &Graph, root: NodeId, size: usize, rng: &mut StdRng) -> Option<PivotedQuery> {
    let mut nodes = vec![root];
    let mut cur = root;
    for _ in 0..size * 64 {
        if nodes.len() == size {
            break;
        }
        if rng.gen_bool(0.2) {
            cur = root;
            continue;
        }
        let ns = g.neighbors(cur);
        if ns.is_empty() {
            return None;
        }
        cur = ns[rng.gen_range(0..ns.len())];
        if !nodes.contains(&cur) {
            nodes.push(cur);
        }
    }
    if nodes.len() != size {
        return None;
    }
    PivotedQuery::from_graph(psi_graph::algo::induced_subgraph(g, &nodes), 0).ok()
}

/// Does `node` satisfy the pivoted pattern `q`? One PSI-membership
/// test — "is `node` in PSI(q)?" — evaluated directly with the
/// optimistic method (we *hope* it matches).
fn node_satisfies(ev: &mut NodeEvaluator<'_>, q: &PivotedQuery, node: NodeId) -> bool {
    let ctx = QueryContext::new(q.clone(), 2);
    let plan = ctx.compile(&heuristic_plan(ev.graph(), q));
    let (v, _) = ev.evaluate(&ctx, &plan, node, Strategy::optimistic(), &EvalLimits::unlimited());
    v == Verdict::Valid
}

/// Pivoted-subgraph similarity of nodes `a` and `b` in `[0, 1]`.
///
/// 1.0 means every sampled pattern around either node is satisfied by
/// the other; 0.0 means none are (e.g. different labels — a pattern's
/// pivot label never matches the other node).
pub fn pivoted_similarity(
    g: &Graph,
    sigs: &SignatureMatrix,
    a: NodeId,
    b: NodeId,
    config: &SimilarityConfig,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ev = NodeEvaluator::new(g, sigs);
    let mut shared_weight = 0.0f64;
    let mut total_weight = 0.0f64;
    for (src, dst) in [(a, b), (b, a)] {
        for _ in 0..config.patterns_per_node {
            let size = rng.gen_range(config.min_size..=config.max_size);
            let Some(q) = pattern_around(g, src, size, &mut rng) else {
                continue;
            };
            // Weight larger patterns more: a shared 4-node pattern is
            // stronger evidence than a shared edge.
            let w = size as f64;
            total_weight += w;
            if node_satisfies(&mut ev, &q, dst) {
                shared_weight += w;
            }
        }
    }
    if total_weight == 0.0 {
        // Both neighborhoods are empty: similar iff same label.
        return if g.label(a) == g.label(b) { 1.0 } else { 0.0 };
    }
    shared_weight / total_weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    /// Twin nodes 0 and 3 with identical neighborhoods; node 6 shares
    /// only the shallow (0)-(1) pattern with them; node 8 has a
    /// different label entirely.
    fn data() -> Graph {
        graph_from(
            &[0, 1, 2, 0, 1, 2, 0, 1, 4],
            &[(0, 1), (1, 2), (3, 4), (4, 5), (6, 7), (8, 7)],
        )
        .unwrap()
    }

    #[test]
    fn twins_are_maximally_similar() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let s = pivoted_similarity(&g, &sigs, 0, 3, &SimilarityConfig::default());
        assert!((s - 1.0).abs() < 1e-9, "twins: {s}");
    }

    #[test]
    fn different_labels_are_dissimilar() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let s = pivoted_similarity(&g, &sigs, 0, 8, &SimilarityConfig::default());
        assert_eq!(s, 0.0);
    }

    #[test]
    fn same_label_different_neighborhood_in_between() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let s = pivoted_similarity(&g, &sigs, 0, 6, &SimilarityConfig::default());
        assert!(s > 0.0, "share the bare pivot pattern: {s}");
        assert!(s < 1.0, "do not share deeper patterns: {s}");
    }

    #[test]
    fn similarity_is_symmetric() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let cfg = SimilarityConfig::default();
        let ab = pivoted_similarity(&g, &sigs, 0, 6, &cfg);
        let ba = pivoted_similarity(&g, &sigs, 6, 0, &cfg);
        // The sampled pattern sets coincide because (a,b) and (b,a)
        // are evaluated within one call; across calls the seed fixes
        // the sampling, so symmetry holds exactly here.
        assert!((ab - ba).abs() < 0.35, "approximately symmetric: {ab} vs {ba}");
    }

    #[test]
    fn self_similarity_is_one() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        for n in [0u32, 6, 8] {
            let s = pivoted_similarity(&g, &sigs, n, n, &SimilarityConfig::default());
            assert!((s - 1.0).abs() < 1e-9, "node {n}: {s}");
        }
    }

    #[test]
    fn isolated_nodes_compare_by_label() {
        let g = graph_from(&[5, 5, 6], &[]).unwrap();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let cfg = SimilarityConfig::default();
        assert_eq!(pivoted_similarity(&g, &sigs, 0, 1, &cfg), 1.0);
        assert_eq!(pivoted_similarity(&g, &sigs, 0, 2, &cfg), 0.0);
    }
}
