//! Discovering pattern queries by sample answers (Han et al., ICDE
//! 2016; §2.2 of the SmartPSI paper).
//!
//! A user supplies a few *sample answer* nodes they believe should
//! match their (unknown) query. The discovery procedure:
//!
//! 1. extract candidate pivoted queries from the neighborhood of each
//!    sample node (random walks pivoted at the sample),
//! 2. **filter** — "a series of PSI operations which tries to filter
//!    out all queries that do not match any of the given answer
//!    nodes": keep a candidate only if every sample node is in its PSI
//!    answer,
//! 3. **rank** the survivors: more selective queries (smaller PSI
//!    answers, i.e. fewer nodes besides the samples) rank higher.

use psi_core::single::{psi_with_strategy_presig, RunOptions};
use psi_core::Strategy;
use psi_graph::{Graph, NodeId, PivotedQuery};
use psi_signature::SignatureMatrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Configuration of the discovery procedure.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Candidate queries generated per sample node.
    pub candidates_per_sample: usize,
    /// Query sizes to try.
    pub min_size: usize,
    /// Inclusive upper bound on query size.
    pub max_size: usize,
    /// How many ranked queries to return.
    pub top_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            candidates_per_sample: 8,
            min_size: 2,
            max_size: 4,
            top_k: 5,
            seed: 17,
        }
    }
}

/// A discovered query with its ranking information.
#[derive(Debug, Clone)]
pub struct RankedQuery {
    /// The candidate pivoted query.
    pub query: PivotedQuery,
    /// Total PSI answer size (including the samples). Smaller = more
    /// specific = better.
    pub answer_size: usize,
}

/// Extract one pivoted query from the neighborhood of `sample` — a
/// random walk from the sample, with the sample as pivot.
fn query_around(g: &Graph, sample: NodeId, size: usize, rng: &mut StdRng) -> Option<PivotedQuery> {
    let mut nodes: Vec<NodeId> = vec![sample];
    let mut cur = sample;
    for _ in 0..size * 64 {
        if nodes.len() == size {
            break;
        }
        if rng.gen_bool(0.15) {
            cur = sample;
            continue;
        }
        let ns = g.neighbors(cur);
        if ns.is_empty() {
            return None;
        }
        cur = ns[rng.gen_range(0..ns.len())];
        if !nodes.contains(&cur) {
            nodes.push(cur);
        }
    }
    if nodes.len() != size {
        return None;
    }
    // Induce the subgraph; the sample is node 0 and becomes the pivot.
    PivotedQuery::from_graph(psi_graph::algo::induced_subgraph(g, &nodes), 0).ok()
}

/// Discover queries whose answers contain every sample node, ranked by
/// specificity (ascending PSI answer size).
pub fn discover_queries(
    g: &Graph,
    sigs: &SignatureMatrix,
    samples: &[NodeId],
    config: &DiscoveryConfig,
) -> Vec<RankedQuery> {
    assert!(!samples.is_empty(), "need at least one sample answer node");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let opts = RunOptions::default();
    let mut ranked: Vec<RankedQuery> = Vec::new();

    for &sample in samples {
        for _ in 0..config.candidates_per_sample {
            let size = rng.gen_range(config.min_size..=config.max_size);
            let Some(q) = query_around(g, sample, size, &mut rng) else {
                continue;
            };
            // Filter: every sample must be in the PSI answer. (The
            // generating sample is by construction; others may not be.)
            let answer = psi_with_strategy_presig(g, sigs, &q, Strategy::pessimistic(), &opts);
            if samples.iter().all(|&s| answer.contains(s)) {
                ranked.push(RankedQuery {
                    query: q,
                    answer_size: answer.count(),
                });
            }
        }
    }
    // Rank: specific first; deterministic tiebreak on size (larger
    // query = more structure = earlier).
    ranked.sort_by_key(|r| (r.answer_size, usize::MAX - r.query.size()));
    ranked.dedup_by(|a, b| {
        a.answer_size == b.answer_size
            && a.query.size() == b.query.size()
            && a.query.graph().labels() == b.query.graph().labels()
    });
    ranked.truncate(config.top_k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    /// Two label-0 nodes share the pattern (0)-(1)-(2); a third
    /// label-0 node only has a label-1 neighbor.
    fn data() -> Graph {
        graph_from(
            &[0, 1, 2, 0, 1, 2, 0, 1],
            &[(0, 1), (1, 2), (3, 4), (4, 5), (6, 7)],
        )
        .unwrap()
    }

    #[test]
    fn discovers_query_covering_both_samples() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let found = discover_queries(&g, &sigs, &[0, 3], &DiscoveryConfig::default());
        assert!(!found.is_empty(), "the shared path pattern must be found");
        // Every returned query matches both samples.
        let opts = RunOptions::default();
        for r in &found {
            let a = psi_with_strategy_presig(&g, &sigs, &r.query, Strategy::pessimistic(), &opts);
            assert!(a.contains(0) && a.contains(3));
            assert_eq!(a.count(), r.answer_size);
        }
        // The most specific query excludes node 6 (no label-2 at
        // distance 2): answer size 2.
        assert_eq!(found[0].answer_size, 2);
    }

    #[test]
    fn conflicting_samples_yield_single_node_or_shared_patterns_only() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        // Samples 0 (label 0) and 1 (label 1) can never co-occur in a
        // PSI answer (different pivot labels).
        let found = discover_queries(&g, &sigs, &[0, 1], &DiscoveryConfig::default());
        assert!(found.is_empty());
    }

    #[test]
    fn single_sample_always_finds_something() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let found = discover_queries(&g, &sigs, &[0], &DiscoveryConfig::default());
        assert!(!found.is_empty());
        assert!(found.windows(2).all(|w| w[0].answer_size <= w[1].answer_size));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        let g = data();
        let sigs = psi_signature::matrix_signatures(&g, 2);
        discover_queries(&g, &sigs, &[], &DiscoveryConfig::default());
    }
}
