//! Property tests for the application suite.

use proptest::prelude::*;
use psi_apps::{discover_queries, pivoted_similarity, DiscoveryConfig, SimilarityConfig};
use psi_core::single::{psi_with_strategy_presig, RunOptions};
use psi_core::Strategy as PsiStrategy;
use psi_graph::builder::graph_from;
use psi_graph::Graph;

fn random_graph() -> impl Strategy<Value = Graph> {
    (6usize..=16, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<u16> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.3) {
                    edges.push((u, v));
                }
            }
        }
        graph_from(&labels, &edges).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every discovered query's PSI answer really contains all samples.
    #[test]
    fn discovery_results_cover_all_samples(g in random_graph(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let a = rng.gen_range(0..g.node_count() as u32);
        let samples = vec![a];
        let cfg = DiscoveryConfig { candidates_per_sample: 4, seed, ..DiscoveryConfig::default() };
        let found = discover_queries(&g, &sigs, &samples, &cfg);
        let opts = RunOptions::default();
        for r in &found {
            let ans = psi_with_strategy_presig(&g, &sigs, &r.query, PsiStrategy::pessimistic(), &opts);
            prop_assert!(ans.contains(a));
            prop_assert_eq!(ans.count(), r.answer_size);
            prop_assert_eq!(r.query.pivot_label(), g.label(a));
        }
        // Ranking is ascending in answer size.
        for w in found.windows(2) {
            prop_assert!(w[0].answer_size <= w[1].answer_size);
        }
    }

    /// Similarity is bounded, reflexive, and zero across labels.
    #[test]
    fn similarity_axioms(g in random_graph(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let cfg = SimilarityConfig { patterns_per_node: 6, seed, ..SimilarityConfig::default() };
        let a = rng.gen_range(0..g.node_count() as u32);
        let b = rng.gen_range(0..g.node_count() as u32);
        let s = pivoted_similarity(&g, &sigs, a, b, &cfg);
        prop_assert!((0.0..=1.0).contains(&s), "{s}");
        let self_sim = pivoted_similarity(&g, &sigs, a, a, &cfg);
        prop_assert!((self_sim - 1.0).abs() < 1e-9);
        if g.label(a) != g.label(b) {
            prop_assert_eq!(s, 0.0, "cross-label similarity must be 0");
        }
    }
}
