//! Thread-safe metrics sinks: atomic counters, phase-span
//! accumulators, and log₂ histograms.
//!
//! [`MetricsRecorder`] is both the shared per-query registry and the
//! per-worker buffer: workers in the stealing pool record into a
//! private instance and [`MetricsRecorder::drain_into`] the shared one
//! when they finish. Because every sink is a sum, the merged totals
//! are deterministic regardless of worker interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Counter, Histogram, Phase, Recorder, COUNTER_COUNT, HISTOGRAM_COUNT, PHASE_COUNT};

/// Number of buckets in a [`LogHistogram`]: bucket 0 holds zeros,
/// bucket `i ≥ 1` holds values with `floor(log2(v)) == i - 1`.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-size log₂ histogram over `u64` observations.
///
/// Lock-free: one relaxed atomic increment per observation.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current bucket counts.
    pub fn snapshot(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Smallest value that lands in bucket `i` (0 for bucket 0).
    pub fn bucket_floor(i: usize) -> u64 {
        if i <= 1 {
            (i as u64).min(1)
        } else {
            1u64 << (i - 1)
        }
    }

    /// Largest value that lands in bucket `i`. Buckets 0 and 1 are the
    /// singletons `{0}` and `{1}`; bucket `i ≥ 2` spans
    /// `[2^(i-1), 2^i - 1]`; the last bucket is capped at `u64::MAX`.
    pub fn bucket_ceil(i: usize) -> u64 {
        if i <= 1 {
            Self::bucket_floor(i)
        } else if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Midpoint of bucket `i` — the unbiased point estimate for an
    /// observation known only by its bucket. Quantile reads
    /// (`NetServer::queue_wait_p50_ms`) must use this, not
    /// [`LogHistogram::bucket_floor`], which underestimates by up to a
    /// full log-bucket width.
    pub fn bucket_midpoint(i: usize) -> u64 {
        let floor = Self::bucket_floor(i);
        floor + (Self::bucket_ceil(i) - floor) / 2
    }
}

/// The concrete metrics registry: atomic counters, per-phase span
/// nanos, and log₂ histograms, all behind relaxed atomics.
///
/// Doubles as the per-worker buffer of the work-stealing pool — see
/// [`MetricsRecorder::drain_into`].
#[derive(Debug)]
pub struct MetricsRecorder {
    counters: [AtomicU64; COUNTER_COUNT],
    phase_ns: [AtomicU64; PHASE_COUNT],
    hists: [LogHistogram; HISTOGRAM_COUNT],
}

// Manual impl: the std `Default` derive stops at 32-element arrays.
impl Default for MetricsRecorder {
    fn default() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| LogHistogram::new()),
        }
    }
}

impl MetricsRecorder {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Accumulated wall nanos for a phase.
    pub fn phase_nanos(&self, p: Phase) -> u64 {
        self.phase_ns[p as usize].load(Ordering::Relaxed)
    }

    /// Bucket snapshot of a histogram.
    pub fn histogram(&self, h: Histogram) -> [u64; HIST_BUCKETS] {
        self.hists[h as usize].snapshot()
    }

    /// Add every count, span, and bucket of `self` into `target`,
    /// then zero `self`.
    ///
    /// This is the per-worker merge of the stealing pool: each worker
    /// records into a private `MetricsRecorder` (no cross-thread
    /// contention) and drains it into the shared recorder exactly once
    /// at exit. All sinks are sums, so the merged totals do not depend
    /// on worker scheduling.
    pub fn drain_into(&self, target: &dyn Recorder) {
        for c in Counter::ALL {
            let v = self.counters[c as usize].swap(0, Ordering::Relaxed);
            if v != 0 {
                target.add(c, v);
            }
        }
        for p in Phase::ALL {
            let v = self.phase_ns[p as usize].swap(0, Ordering::Relaxed);
            if v != 0 {
                target.span_ns(p, v);
            }
        }
        for h in Histogram::ALL {
            let buckets = &self.hists[h as usize].buckets;
            for (i, b) in buckets.iter().enumerate() {
                let n = b.swap(0, Ordering::Relaxed);
                // Replay `n` observations of a representative value for
                // the bucket; bucket_floor maps back to the same bucket.
                for _ in 0..n {
                    target.observe(h, LogHistogram::bucket_floor(i));
                }
            }
        }
    }

    /// Zero every sink.
    pub fn reset(&self) {
        for c in self.counters.iter().chain(self.phase_ns.iter()) {
            c.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn span_ns(&self, phase: Phase, nanos: u64) {
        self.phase_ns[phase as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    #[inline]
    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn observe(&self, hist: Histogram, value: u64) {
        self.hists[hist as usize].observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_of(LogHistogram::bucket_floor(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn bucket_ceil_and_midpoint_stay_inside_their_bucket() {
        // Exact singleton buckets: floor == ceil == midpoint.
        assert_eq!(LogHistogram::bucket_ceil(0), 0);
        assert_eq!(LogHistogram::bucket_ceil(1), 1);
        assert_eq!(LogHistogram::bucket_midpoint(0), 0);
        assert_eq!(LogHistogram::bucket_midpoint(1), 1);
        // Bucket 5 spans [16, 31]: midpoint 23.
        assert_eq!(LogHistogram::bucket_floor(5), 16);
        assert_eq!(LogHistogram::bucket_ceil(5), 31);
        assert_eq!(LogHistogram::bucket_midpoint(5), 23);
        // The last bucket is capped, not overflowed.
        assert_eq!(LogHistogram::bucket_ceil(HIST_BUCKETS - 1), u64::MAX);
        for i in 0..HIST_BUCKETS {
            let f = LogHistogram::bucket_floor(i);
            let c = LogHistogram::bucket_ceil(i);
            let m = LogHistogram::bucket_midpoint(i);
            assert!(f <= m && m <= c, "bucket {i}: {f} <= {m} <= {c}");
            assert_eq!(bucket_of(c), i, "ceil stays in bucket {i}");
            assert_eq!(bucket_of(m), i, "midpoint stays in bucket {i}");
            if i + 1 < HIST_BUCKETS {
                assert_eq!(c + 1, LogHistogram::bucket_floor(i + 1), "buckets tile");
            }
        }
    }

    #[test]
    fn counters_spans_hists_accumulate() {
        let rec = MetricsRecorder::new();
        rec.add(Counter::Steps, 5);
        rec.add(Counter::Steps, 7);
        rec.span_ns(Phase::Train, 100);
        rec.span_ns(Phase::Train, 50);
        rec.observe(Histogram::StepsPerNode, 3);
        rec.observe(Histogram::StepsPerNode, 1000);
        assert_eq!(rec.counter(Counter::Steps), 12);
        assert_eq!(rec.phase_nanos(Phase::Train), 150);
        let h = rec.histogram(Histogram::StepsPerNode);
        assert_eq!(h.iter().sum::<u64>(), 2);
        assert_eq!(h[bucket_of(3)], 1);
        assert_eq!(h[bucket_of(1000)], 1);
    }

    #[test]
    fn drain_into_moves_everything_once() {
        let local = MetricsRecorder::new();
        let shared = MetricsRecorder::new();
        local.add(Counter::CacheHits, 4);
        local.span_ns(Phase::MatchS1, 999);
        local.observe(Histogram::GrabLength, 16);
        local.drain_into(&shared);
        assert_eq!(shared.counter(Counter::CacheHits), 4);
        assert_eq!(shared.phase_nanos(Phase::MatchS1), 999);
        assert_eq!(shared.histogram(Histogram::GrabLength)[bucket_of(16)], 1);
        // Local is now empty; a second drain adds nothing.
        local.drain_into(&shared);
        assert_eq!(shared.counter(Counter::CacheHits), 4);
        assert_eq!(shared.phase_nanos(Phase::MatchS1), 999);
    }

    #[test]
    fn merge_is_order_independent() {
        // Two workers, merged in either order, give identical totals.
        let mk = |a: u64, b: u64| {
            let r = MetricsRecorder::new();
            r.add(Counter::Steps, a);
            r.span_ns(Phase::MatchS2, b);
            r
        };
        let total_ab = MetricsRecorder::new();
        mk(3, 10).drain_into(&total_ab);
        mk(9, 20).drain_into(&total_ab);
        let total_ba = MetricsRecorder::new();
        mk(9, 20).drain_into(&total_ba);
        mk(3, 10).drain_into(&total_ba);
        assert_eq!(total_ab.counter(Counter::Steps), total_ba.counter(Counter::Steps));
        assert_eq!(
            total_ab.phase_nanos(Phase::MatchS2),
            total_ba.phase_nanos(Phase::MatchS2)
        );
    }

    #[test]
    fn threaded_recording_is_safe() {
        let rec = std::sync::Arc::new(MetricsRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = std::sync::Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..1000 {
                        rec.add(Counter::GrabSteals, 1);
                    }
                });
            }
        });
        assert_eq!(rec.counter(Counter::GrabSteals), 4000);
    }
}
