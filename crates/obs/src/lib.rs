//! # psi-obs
//!
//! Zero-dependency observability layer for the PSI engine: structured
//! tracing spans and a metrics registry behind a [`Recorder`] trait
//! whose no-op implementation costs one predictable branch per site.
//!
//! The paper's whole argument (EDBT 2019, §4–§5) is about *where the
//! time goes* — training vs. prediction vs. the three matching stages
//! of the preemptive executor — so every executor in `psi-core`
//! reports into this layer:
//!
//! * **Spans** ([`Phase`]) — wall-clock intervals for the query
//!   phases: train / signature / predict / match-S1 / match-S2 /
//!   match-S3 / exact-fallback / merge. Use the [`span!`] macro or
//!   [`timed`]; with a disabled recorder neither even reads the clock.
//! * **Counters** ([`Counter`]) — named monotonic counters (per-method
//!   node counts, steps burned, retries, cache hits/misses, grab-queue
//!   steals, recovered panics, …).
//! * **Histograms** ([`Histogram`]) — log₂-bucketed distributions
//!   (e.g. steps per candidate node).
//!
//! The concrete sinks live in [`metrics`] ([`MetricsRecorder`], a
//! thread-safe atomic registry that doubles as a per-worker buffer via
//! [`MetricsRecorder::drain_into`]) and [`profile`] ([`QueryProfile`],
//! the per-query report attached to every `PsiResult`, serializable to
//! JSON and pretty-printable as a phase-time table).
//!
//! ```
//! use psi_obs::{span, MetricsRecorder, NoopRecorder, Phase, Counter, Recorder};
//!
//! let rec = MetricsRecorder::new();
//! let sum = span!(&rec, Phase::Train, {
//!     rec.add(Counter::TrainedNodes, 3);
//!     1 + 2
//! });
//! assert_eq!(sum, 3);
//! assert_eq!(rec.counter(Counter::TrainedNodes), 3);
//! // The no-op recorder compiles down to the untimed body.
//! assert_eq!(span!(&NoopRecorder, Phase::Train, { 7 }), 7);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod profile;

pub use metrics::{LogHistogram, MetricsRecorder, HIST_BUCKETS};
pub use profile::QueryProfile;

/// The traced phases of one PSI query, in execution order.
///
/// The phases are *disjoint*: no span nests inside another, so their
/// sum is a lower bound on the query's total wall time (uninstrumented
/// glue — loop overhead, signature-row lookups, queue traffic — makes
/// up the rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// §4.2 training: ground-truth evaluation of the sample, plan
    /// timing, and fitting Models α and β.
    Train,
    /// Neighborhood-signature construction (deployment load time).
    Signature,
    /// Batched stage-1 prefilter: the structure-of-arrays
    /// `rows_satisfy`/`rows_score` sweep over the whole untrained
    /// candidate range, producing the survivor mask and score vector
    /// the prediction phase consumes.
    Prefilter,
    /// Per-node (method, plan) prediction: cache probe + forest
    /// inference.
    Predict,
    /// Stage 1 of the preemptive executor: first budgeted attempt with
    /// the predicted method.
    MatchS1,
    /// Stage 2: budgeted recovery attempts with alternating methods.
    MatchS2,
    /// Stage 3: the final unlimited attempt of the retry ladder.
    MatchS3,
    /// The no-ML exact sweep used below the training threshold, and
    /// training-phase ground-truth runs.
    ExactFallback,
    /// Deterministic merge of per-worker partials (sorting, failure
    /// ledger, requeue recovery).
    Merge,
    /// Thread-pool spawn/attach latency: from the moment an executor
    /// decides to go parallel until each worker starts pulling work.
    /// Reported per worker so BENCH_parallel (per-query scoped pools)
    /// and BENCH_serve (persistent service) are comparable.
    PoolSpawn,
    /// Applying one evolving-graph update batch: incremental signature
    /// repair plus publishing the new epoch snapshot
    /// (`PsiService::apply_update` / `EvolvingContext` in `psi-core`).
    GraphUpdate,
    /// Merging per-shard partial answers of a scatter-gather query into
    /// one result: valid-set union, id translation back to global space,
    /// and failure-report aggregation (`ShardedService` in `psi-core`).
    ShardMerge,
    /// Reading and parsing protocol lines off client sockets (the
    /// network front door's per-connection reader threads).
    NetRead,
    /// Serializing and writing protocol responses back to client
    /// sockets (the front door's per-connection writer threads).
    NetWrite,
    /// Refitting the online adaptation models (α/β) from the feedback
    /// reservoir of an adaptive deployment (`AdaptiveState` in
    /// `psi-core`).
    Refit,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 15;

impl Phase {
    /// All phases, in execution order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Train,
        Phase::Signature,
        Phase::Prefilter,
        Phase::Predict,
        Phase::MatchS1,
        Phase::MatchS2,
        Phase::MatchS3,
        Phase::ExactFallback,
        Phase::Merge,
        Phase::PoolSpawn,
        Phase::GraphUpdate,
        Phase::ShardMerge,
        Phase::NetRead,
        Phase::NetWrite,
        Phase::Refit,
    ];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Train => "train",
            Phase::Signature => "signature",
            Phase::Prefilter => "prefilter",
            Phase::Predict => "predict",
            Phase::MatchS1 => "match_s1",
            Phase::MatchS2 => "match_s2",
            Phase::MatchS3 => "match_s3",
            Phase::ExactFallback => "exact_fallback",
            Phase::Merge => "merge",
            Phase::PoolSpawn => "pool_spawn",
            Phase::GraphUpdate => "graph_update",
            Phase::ShardMerge => "shard_merge",
            Phase::NetRead => "net_read",
            Phase::NetWrite => "net_write",
            Phase::Refit => "refit",
        }
    }
}

/// Named monotonic counters of the metrics registry.
///
/// The first block mirrors the executor's per-candidate accounting and
/// satisfies the identity checked by [`QueryProfile::reconciles`]:
/// `TrainedNodes + ResolvedS1 + RecoveredS2 + RecoveredS3 +
/// FailedNodes + Unresolved == Candidates`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Candidate nodes considered (after the label/degree filter).
    Candidates,
    /// Candidates resolved during training (§4.2 ground truth).
    TrainedNodes,
    /// Candidates resolved by the first budgeted attempt (stage 1).
    ResolvedS1,
    /// Candidates recovered by a later budgeted attempt (stage 2).
    RecoveredS2,
    /// Candidates recovered by the unlimited fallback (stage 3).
    RecoveredS3,
    /// Candidates that stayed failed after the whole retry ladder.
    FailedNodes,
    /// Candidates cut off unresolved by a global deadline/cancel.
    Unresolved,
    /// Candidates evaluated with the optimistic method first.
    NodesOptimistic,
    /// Candidates evaluated with the pessimistic method first.
    NodesPessimistic,
    /// Candidates Model α predicted valid.
    PredictedValid,
    /// Search steps burned across all evaluations.
    Steps,
    /// Prediction-cache hits.
    CacheHits,
    /// Prediction-cache misses (a model inference was needed).
    CacheMisses,
    /// Per-node evaluation attempts beyond the first.
    Retries,
    /// Budget/spurious interrupts escalated to a bigger budget or the
    /// exact fallback.
    Escalations,
    /// Panicking per-node attempts contained by the isolation layer.
    PanicsRecovered,
    /// Grabs pulled from the shared work-stealing queue.
    GrabSteals,
    /// Candidates re-queued from dead workers and re-evaluated.
    Requeued,
    /// Worker threads that died mid-run.
    WorkerDeaths,
    /// Random-forest inferences (Model α + Model β calls).
    MlInferences,
    /// Signature rows constructed.
    SignatureRows,
    /// Queries a `PsiService` worker pool answered (service-level).
    QueriesServed,
    /// Prediction-cache hits on entries inserted by an *earlier* query
    /// (service-level: cross-query cache reuse).
    CrossQueryCacheHits,
    /// Epoch snapshots published by an evolving deployment (one per
    /// applied update batch).
    EpochsPublished,
    /// Signature rows recomputed by incremental repair (the evolving
    /// counterpart of [`Counter::SignatureRows`]).
    RowsRepaired,
    /// Cross-query prediction caches dropped because a graph update
    /// made their epoch stale (each invalidation retires one
    /// (epoch, query-shape) cache).
    CacheInvalidations,
    /// Shard jobs dispatched by scatter-gather queries: one increment
    /// per (query, shard) pair that actually received work — shards
    /// with no owned candidates are skipped and not counted.
    ShardFanout,
    /// Requests the front door's admission layer accepted into the
    /// service queue (the complement of [`Counter::Shed`]).
    Admitted,
    /// Requests rejected by admission control — per-client quota or
    /// queue-depth shedding — each answered with a structured
    /// `retry-after` instead of queueing unboundedly.
    Shed,
    /// Accepted jobs whose deadline passed while they waited in the
    /// queue: answered with a structured failure, never run.
    DeadlineExpired,
    /// Jobs answered normally during a graceful
    /// `shutdown(grace)` drain window (the complement of the drain
    /// report's aborted count).
    Drained,
    /// Candidates rejected by the batched stage-1 prefilter sweep
    /// (pivot-signature satisfaction, Proposition 3.2) and resolved
    /// invalid without entering the retry ladder. A subset of
    /// [`Counter::ResolvedS1`].
    PrefilterPruned,
    /// OS threads actually spawned into the shared lazy worker pool.
    /// Stays zero on runs that reuse already-warm pool threads — the
    /// complement of the amortization [`Phase::PoolSpawn`] measures.
    PoolThreadsSpawned,
    /// Online α/β model refits performed by an adaptive deployment
    /// (each one a [`Phase::Refit`] span over the feedback reservoir).
    Refits,
    /// Queries whose method choice was forced by the ε-exploration
    /// floor instead of the predictor (adaptive deployments only;
    /// keeps the feedback stream unbiased).
    ExplorationRuns,
    /// Per-node feedback rows absorbed into an adaptive deployment's
    /// refit reservoir.
    FeedbackSamples,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = 36;

impl Counter {
    /// All counters, in declaration order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::Candidates,
        Counter::TrainedNodes,
        Counter::ResolvedS1,
        Counter::RecoveredS2,
        Counter::RecoveredS3,
        Counter::FailedNodes,
        Counter::Unresolved,
        Counter::NodesOptimistic,
        Counter::NodesPessimistic,
        Counter::PredictedValid,
        Counter::Steps,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::Retries,
        Counter::Escalations,
        Counter::PanicsRecovered,
        Counter::GrabSteals,
        Counter::Requeued,
        Counter::WorkerDeaths,
        Counter::MlInferences,
        Counter::SignatureRows,
        Counter::QueriesServed,
        Counter::CrossQueryCacheHits,
        Counter::EpochsPublished,
        Counter::RowsRepaired,
        Counter::CacheInvalidations,
        Counter::ShardFanout,
        Counter::Admitted,
        Counter::Shed,
        Counter::DeadlineExpired,
        Counter::Drained,
        Counter::PrefilterPruned,
        Counter::PoolThreadsSpawned,
        Counter::Refits,
        Counter::ExplorationRuns,
        Counter::FeedbackSamples,
    ];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Candidates => "candidates",
            Counter::TrainedNodes => "trained_nodes",
            Counter::ResolvedS1 => "resolved_s1",
            Counter::RecoveredS2 => "recovered_s2",
            Counter::RecoveredS3 => "recovered_s3",
            Counter::FailedNodes => "failed_nodes",
            Counter::Unresolved => "unresolved",
            Counter::NodesOptimistic => "nodes_optimistic",
            Counter::NodesPessimistic => "nodes_pessimistic",
            Counter::PredictedValid => "predicted_valid",
            Counter::Steps => "steps",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::Retries => "retries",
            Counter::Escalations => "escalations",
            Counter::PanicsRecovered => "panics_recovered",
            Counter::GrabSteals => "grab_steals",
            Counter::Requeued => "requeued",
            Counter::WorkerDeaths => "worker_deaths",
            Counter::MlInferences => "ml_inferences",
            Counter::SignatureRows => "signature_rows",
            Counter::QueriesServed => "queries_served",
            Counter::CrossQueryCacheHits => "cross_query_cache_hits",
            Counter::EpochsPublished => "epochs_published",
            Counter::RowsRepaired => "rows_repaired",
            Counter::CacheInvalidations => "cache_invalidations",
            Counter::ShardFanout => "shard_fanout",
            Counter::Admitted => "admitted",
            Counter::Shed => "shed",
            Counter::DeadlineExpired => "deadline_expired",
            Counter::Drained => "drained",
            Counter::PrefilterPruned => "prefilter_pruned",
            Counter::PoolThreadsSpawned => "pool_threads_spawned",
            Counter::Refits => "refits",
            Counter::ExplorationRuns => "exploration_runs",
            Counter::FeedbackSamples => "feedback_samples",
        }
    }
}

/// Named log₂-bucketed histograms of the metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Histogram {
    /// Search steps spent per candidate node.
    StepsPerNode,
    /// Candidates per work-stealing grab actually evaluated.
    GrabLength,
    /// Nanoseconds a submitted query waited in a `PsiService` queue
    /// before a worker picked it up.
    QueueWait,
}

/// Number of [`Histogram`] variants.
pub const HISTOGRAM_COUNT: usize = 3;

impl Histogram {
    /// All histograms, in declaration order.
    pub const ALL: [Histogram; HISTOGRAM_COUNT] =
        [Histogram::StepsPerNode, Histogram::GrabLength, Histogram::QueueWait];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Histogram::StepsPerNode => "steps_per_node",
            Histogram::GrabLength => "grab_length",
            Histogram::QueueWait => "queue_wait_ns",
        }
    }
}

/// The observability seam. Every instrumentation site in the engine
/// calls through `&dyn Recorder`; the default method bodies make a
/// unit implementation ([`NoopRecorder`]) a true no-op, and
/// [`Recorder::enabled`] lets hot paths skip even the clock reads that
/// would feed a span.
///
/// Implementations must be thread-safe: the work-stealing pool shares
/// one recorder across workers (or gives each worker a private
/// [`MetricsRecorder`] buffer and merges at query end).
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Hot paths gate their
    /// `Instant::now` calls on this, so a disabled recorder costs one
    /// virtual call per site and no clock reads.
    fn enabled(&self) -> bool {
        false
    }

    /// Record `nanos` of wall time spent in `phase`.
    fn span_ns(&self, _phase: Phase, _nanos: u64) {}

    /// Add `n` to a named counter.
    fn add(&self, _counter: Counter, _n: u64) {}

    /// Record one observation of `value` into a histogram.
    fn observe(&self, _hist: Histogram, _value: u64) {}
}

/// The do-nothing recorder: production default when nobody asked for a
/// profile. All methods inherit the trait's empty defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Run `f` inside a [`Phase`] span: times the call and reports it to
/// `rec` when the recorder is enabled, otherwise just calls `f`.
#[inline]
pub fn timed<R>(rec: &dyn Recorder, phase: Phase, f: impl FnOnce() -> R) -> R {
    if rec.enabled() {
        let t0 = std::time::Instant::now();
        let r = f();
        rec.span_ns(phase, t0.elapsed().as_nanos() as u64);
        r
    } else {
        f()
    }
}

/// Statement form of [`timed`]: `span!(rec, Phase::Train, { … })`
/// evaluates the block inside a span and yields its value.
#[macro_export]
macro_rules! span {
    ($rec:expr, $phase:expr, $body:expr) => {{
        let __rec = $rec;
        if $crate::Recorder::enabled(__rec) {
            let __t0 = ::std::time::Instant::now();
            let __out = $body;
            $crate::Recorder::span_ns(__rec, $phase, __t0.elapsed().as_nanos() as u64);
            __out
        } else {
            $body
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_tables_are_consistent() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, h) in Histogram::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
        // Names are unique (they become JSON keys).
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.add(Counter::Steps, 10);
        rec.span_ns(Phase::Train, 10);
        rec.observe(Histogram::StepsPerNode, 10);
        assert_eq!(timed(&rec, Phase::Merge, || 41 + 1), 42);
    }

    #[test]
    fn span_macro_records_only_when_enabled() {
        let rec = MetricsRecorder::new();
        let out = span!(&rec, Phase::Predict, "x");
        assert_eq!(out, "x");
        // Even a zero-length body records a (possibly zero) span; the
        // recorder must have been consulted.
        assert!(rec.enabled());
        let noop = NoopRecorder;
        assert_eq!(span!(&noop, Phase::Predict, 5u32), 5);
    }
}
