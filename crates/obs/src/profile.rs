//! [`QueryProfile`]: the per-query observability report.
//!
//! A `QueryProfile` is attached to every `PsiResult` produced by the
//! unified `SmartPsi::run` entry point. The coarse fields
//! (`total_wall_ns`, `train_ns`, `evaluation_ns`) and the accounting
//! counters are always filled — they come from the executor's own
//! bookkeeping, so [`QueryProfile::reconciles`] is exact even with the
//! no-op recorder. The fine-grained spans and histograms are only
//! populated (`recorded == true`) when the caller supplied a live
//! [`MetricsRecorder`].

use std::fmt;
use std::time::Duration;

use crate::metrics::{MetricsRecorder, HIST_BUCKETS, LogHistogram};
use crate::{Counter, Histogram, Phase, COUNTER_COUNT, HISTOGRAM_COUNT, PHASE_COUNT};

/// Per-query profile: phase wall times, the metrics-registry counters,
/// and log₂ step histograms. Serializes to JSON ([`QueryProfile::to_json`])
/// and pretty-prints as a phase-time table (`Display`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// End-to-end wall time of the `run` call, in nanoseconds.
    pub total_wall_ns: u64,
    /// Wall time spent building neighborhood signatures (zero when the
    /// engine reused prebuilt signatures).
    pub signature_build_ns: u64,
    /// Coarse training + prediction wall time (the paper's
    /// `training_and_prediction` stage).
    pub train_ns: u64,
    /// Coarse evaluation wall time (everything after training).
    pub evaluation_ns: u64,
    /// Training accuracy of Model α on its own sample; `NaN` when no
    /// model was trained.
    pub alpha_accuracy: f64,
    /// Whether a live recorder filled the fine-grained spans and
    /// histograms below.
    pub recorded: bool,
    /// Accumulated wall nanos per [`Phase`], indexed by `Phase as usize`.
    pub spans_ns: [u64; PHASE_COUNT],
    /// Counter values, indexed by `Counter as usize`.
    pub counters: [u64; COUNTER_COUNT],
    /// Histogram buckets, indexed by `Histogram as usize`.
    pub hists: [[u64; HIST_BUCKETS]; HISTOGRAM_COUNT],
}

impl Default for QueryProfile {
    fn default() -> Self {
        Self {
            total_wall_ns: 0,
            signature_build_ns: 0,
            train_ns: 0,
            evaluation_ns: 0,
            alpha_accuracy: f64::NAN,
            recorded: false,
            spans_ns: [0; PHASE_COUNT],
            counters: [0; COUNTER_COUNT],
            hists: [[0; HIST_BUCKETS]; HISTOGRAM_COUNT],
        }
    }
}

impl QueryProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Overwrite a counter (used by the executor to publish its exact
    /// accounting totals over whatever the recorder sampled).
    pub fn set_counter(&mut self, c: Counter, v: u64) {
        self.counters[c as usize] = v;
    }

    /// Wall time recorded for one phase.
    pub fn span(&self, p: Phase) -> Duration {
        Duration::from_nanos(self.spans_ns[p as usize])
    }

    /// Sum of all phase spans. Spans are disjoint, so this is a lower
    /// bound on [`QueryProfile::total_wall_ns`] (modulo timer jitter).
    pub fn phase_total(&self) -> Duration {
        Duration::from_nanos(self.spans_ns.iter().sum())
    }

    /// The PR-2 accounting identity over the counters:
    /// `trained + s1 + s2 + s3 + failed + unresolved == candidates`.
    pub fn reconciles(&self) -> bool {
        self.counter(Counter::TrainedNodes)
            + self.counter(Counter::ResolvedS1)
            + self.counter(Counter::RecoveredS2)
            + self.counter(Counter::RecoveredS3)
            + self.counter(Counter::FailedNodes)
            + self.counter(Counter::Unresolved)
            == self.counter(Counter::Candidates)
    }

    /// Fold a recorder's spans, counters, and histograms into this
    /// profile and mark it `recorded`. Counters *add* (the executor
    /// then overwrites the accounting block with its exact totals via
    /// [`QueryProfile::set_counter`]).
    pub fn absorb(&mut self, rec: &MetricsRecorder) {
        self.recorded = true;
        for p in Phase::ALL {
            self.spans_ns[p as usize] += rec.phase_nanos(p);
        }
        for c in Counter::ALL {
            self.counters[c as usize] += rec.counter(c);
        }
        for h in Histogram::ALL {
            let snap = rec.histogram(h);
            for (dst, src) in self.hists[h as usize].iter_mut().zip(snap.iter()) {
                *dst += src;
            }
        }
    }

    /// Serialize to a single JSON object (hand-rolled; the workspace is
    /// zero-dep). Histograms are emitted sparsely as
    /// `[[bucket_floor, count], …]`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        push_kv_u64(&mut s, "total_wall_ns", self.total_wall_ns);
        s.push(',');
        push_kv_u64(&mut s, "signature_build_ns", self.signature_build_ns);
        s.push(',');
        push_kv_u64(&mut s, "train_ns", self.train_ns);
        s.push(',');
        push_kv_u64(&mut s, "evaluation_ns", self.evaluation_ns);
        s.push(',');
        push_kv_f64(&mut s, "alpha_accuracy", self.alpha_accuracy);
        s.push(',');
        s.push_str("\"recorded\":");
        s.push_str(if self.recorded { "true" } else { "false" });
        s.push(',');
        s.push_str("\"phases_ns\":{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_kv_u64(&mut s, p.name(), self.spans_ns[*p as usize]);
        }
        s.push_str("},\"counters\":{");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_kv_u64(&mut s, c.name(), self.counters[*c as usize]);
        }
        s.push_str("},\"histograms\":{");
        for (i, h) in Histogram::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(h.name());
            s.push_str("\":[");
            let mut first = true;
            for (b, n) in self.hists[*h as usize].iter().enumerate() {
                if *n != 0 {
                    if !first {
                        s.push(',');
                    }
                    first = false;
                    s.push_str(&format!("[{},{}]", LogHistogram::bucket_floor(b), n));
                }
            }
            s.push(']');
        }
        s.push_str("}}");
        s
    }
}

fn push_kv_u64(s: &mut String, key: &str, v: u64) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

fn push_kv_f64(s: &mut String, key: &str, v: f64) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    if v.is_finite() {
        s.push_str(&format!("{v:.6}"));
    } else {
        s.push_str("null");
    }
}

/// Human format for a nanosecond quantity (`432ns`, `18.3µs`,
/// `42.1ms`, `1.204s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query profile ({} wall)", fmt_ns(self.total_wall_ns))?;
        writeln!(
            f,
            "  coarse: signature {} · train {} · evaluate {}",
            fmt_ns(self.signature_build_ns),
            fmt_ns(self.train_ns),
            fmt_ns(self.evaluation_ns)
        )?;
        if self.recorded {
            writeln!(f, "  {:<16} {:>12} {:>8}", "phase", "wall", "share")?;
            let total = self.total_wall_ns.max(1) as f64;
            for p in Phase::ALL {
                let ns = self.spans_ns[p as usize];
                if ns == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "  {:<16} {:>12} {:>7.1}%",
                    p.name(),
                    fmt_ns(ns),
                    100.0 * ns as f64 / total
                )?;
            }
            writeln!(
                f,
                "  {:<16} {:>12} {:>7.1}%",
                "(phases total)",
                fmt_ns(self.phase_total().as_nanos() as u64),
                100.0 * self.phase_total().as_nanos() as f64 / total
            )?;
        } else {
            writeln!(f, "  (fine-grained spans not recorded; pass a recorder)")?;
        }
        write!(f, "  counters:")?;
        let mut shown = 0;
        for c in Counter::ALL {
            let v = self.counters[c as usize];
            if v == 0 {
                continue;
            }
            if shown > 0 && shown % 5 == 0 {
                write!(f, "\n           ")?;
            }
            write!(f, " {}={}", c.name(), v)?;
            shown += 1;
        }
        if shown == 0 {
            write!(f, " (all zero)")?;
        }
        writeln!(f)?;
        if self.alpha_accuracy.is_finite() {
            writeln!(f, "  model α train accuracy: {:.3}", self.alpha_accuracy)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> QueryProfile {
        let mut p = QueryProfile::new();
        p.total_wall_ns = 10_000_000;
        p.signature_build_ns = 1_000_000;
        p.train_ns = 4_000_000;
        p.evaluation_ns = 5_000_000;
        p.alpha_accuracy = 0.9375;
        p.set_counter(Counter::Candidates, 10);
        p.set_counter(Counter::TrainedNodes, 3);
        p.set_counter(Counter::ResolvedS1, 5);
        p.set_counter(Counter::RecoveredS2, 1);
        p.set_counter(Counter::RecoveredS3, 1);
        p
    }

    #[test]
    fn identity_reconciles() {
        let mut p = sample();
        assert!(p.reconciles());
        p.set_counter(Counter::FailedNodes, 1);
        assert!(!p.reconciles());
        p.set_counter(Counter::Candidates, 11);
        assert!(p.reconciles());
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let mut p = sample();
        let rec = MetricsRecorder::new();
        rec.span_ns(Phase::MatchS1, 123);
        rec.observe(Histogram::StepsPerNode, 40);
        p.absorb(&rec);
        let json = p.to_json();
        // Structural sanity: balanced braces/brackets, every key present.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "total_wall_ns",
            "alpha_accuracy",
            "phases_ns",
            "counters",
            "histograms",
            "match_s1",
            "steps_per_node",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}: {json}");
        }
        assert!(json.contains("\"match_s1\":123"));
        assert!(json.contains("[32,1]"), "sparse histogram entry: {json}");
        assert!(json.contains("\"alpha_accuracy\":0.937500"));
    }

    #[test]
    fn nan_accuracy_serializes_as_null() {
        let p = QueryProfile::new();
        assert!(p.to_json().contains("\"alpha_accuracy\":null"));
    }

    #[test]
    fn absorb_then_override_keeps_identity_exact() {
        let mut p = QueryProfile::new();
        let rec = MetricsRecorder::new();
        rec.add(Counter::Candidates, 7); // recorder saw a partial view
        rec.add(Counter::MlInferences, 4);
        p.absorb(&rec);
        assert!(p.recorded);
        // Executor publishes exact totals over the sampled ones.
        p.set_counter(Counter::Candidates, 10);
        p.set_counter(Counter::ResolvedS1, 10);
        assert!(p.reconciles());
        assert_eq!(p.counter(Counter::MlInferences), 4);
    }

    #[test]
    fn display_renders_table() {
        let mut p = sample();
        let rec = MetricsRecorder::new();
        rec.span_ns(Phase::Train, 4_000_000);
        rec.span_ns(Phase::MatchS1, 3_000_000);
        p.absorb(&rec);
        let s = p.to_string();
        assert!(s.contains("train"));
        assert!(s.contains("match_s1"));
        assert!(s.contains("phases total"));
        assert!(s.contains("candidates=10"));
        let blank = QueryProfile::new().to_string();
        assert!(blank.contains("not recorded"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(432), "432ns");
        assert_eq!(fmt_ns(18_300), "18.3µs");
        assert_eq!(fmt_ns(42_100_000), "42.1ms");
        assert_eq!(fmt_ns(1_204_000_000), "1.204s");
    }
}
