//! Criterion micro-benches, one group per paper experiment. These are
//! the statistically-measured companions to the `src/bin/*` repro
//! binaries (which run the full sweeps): each group pins one or two
//! representative points of the corresponding table/figure so
//! `cargo bench` tracks regressions in the quantities the paper plots.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use psi_core::single::{psi_with_strategy_presig, RunOptions};
use psi_core::{RunSpec, SmartPsi, SmartPsiConfig, Strategy};
use psi_datasets::{PaperDataset, QueryWorkload};
use psi_fsm::{IsoSupport, Miner, MinerConfig, PsiSupport, SupportEvaluator};
use psi_match::{count_embeddings, psi_by_enumeration, turboiso::turboiso_plus_psi, Engine, SearchBudget};
use psi_ml::{Classifier, Dataset};
use psi_signature::{exploration_signatures, matrix_signatures};

fn quick<'c>(c: &'c mut Criterion, name: &str) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// Table 1 point: embedding counting vs. PSI on a Yeast-scale graph.
fn bench_table1(c: &mut Criterion) {
    let g = PaperDataset::Yeast.generate_scaled(0.3, 1);
    let q = QueryWorkload::extract(&g, 5, 1, 3).unwrap().queries.remove(0);
    let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
    let mut group = quick(c, "table1_counts");
    group.bench_function("count_all_embeddings", |b| {
        b.iter(|| count_embeddings(&g, q.graph(), &SearchBudget::steps(5_000_000)))
    });
    group.bench_function("psi_answer", |b| b.iter(|| smart.run(&q, &RunSpec::new())));
    group.finish();
}

/// Table 2 / Figure 7 point: the three systems on a Human-scale graph.
fn bench_fig7(c: &mut Criterion) {
    let g = PaperDataset::Human.generate_scaled(0.25, 2);
    let q = QueryWorkload::extract(&g, 5, 1, 5).unwrap().queries.remove(0);
    let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
    let cap = SearchBudget::steps(5_000_000);
    let mut group = quick(c, "fig7_systems");
    group.bench_function("turboiso_enumerate", |b| {
        b.iter(|| psi_by_enumeration(&Engine::TurboIso, &g, &q, &cap))
    });
    group.bench_function("cflmatch_enumerate", |b| {
        b.iter(|| psi_by_enumeration(&Engine::CflMatch, &g, &q, &cap))
    });
    group.bench_function("turboiso_plus", |b| b.iter(|| turboiso_plus_psi(&g, &q, &cap)));
    group.bench_function("smartpsi", |b| b.iter(|| smart.run(&q, &RunSpec::new())));
    group.finish();
}

/// Figure 8 point: signature construction on a YouTube-scale graph.
fn bench_fig8(c: &mut Criterion) {
    let g = PaperDataset::Youtube.generate_scaled(0.1, 3);
    let mut group = quick(c, "fig8_signatures");
    group.bench_function("exploration", |b| b.iter(|| exploration_signatures(&g, 2)));
    group.bench_function("matrix", |b| b.iter(|| matrix_signatures(&g, 2)));
    group.finish();
}

/// Figure 9 point: two-threaded baseline vs. SmartPSI on one query.
fn bench_fig9(c: &mut Criterion) {
    let g = PaperDataset::Youtube.generate_scaled(0.05, 4);
    let q = QueryWorkload::extract(&g, 5, 1, 7).unwrap().queries.remove(0);
    let smart = SmartPsi::new(g.clone(), SmartPsiConfig::web_scale());
    let opts = RunOptions::default();
    let mut group = quick(c, "fig9_baseline");
    group.bench_function("two_threaded", |b| {
        b.iter(|| psi_core::twothread::two_threaded_psi(&g, &q, &opts))
    });
    let ws2 = RunSpec::new().threads(2);
    group.bench_function("smartpsi_2threads", |b| b.iter(|| smart.run(&q, &ws2)));
    group.finish();
}

/// Figure 10 point: fixed strategies vs. SmartPSI on a Twitter-scale
/// graph.
fn bench_fig10(c: &mut Criterion) {
    let g = PaperDataset::Twitter.generate_scaled(0.08, 5);
    let sigs = matrix_signatures(&g, 2);
    let q = QueryWorkload::extract(&g, 6, 1, 9).unwrap().queries.remove(0);
    let smart = SmartPsi::new(g.clone(), SmartPsiConfig::web_scale());
    let opts = RunOptions::default();
    let mut group = quick(c, "fig10_strategies");
    group.bench_function("optimistic_only", |b| {
        b.iter(|| psi_with_strategy_presig(&g, &sigs, &q, Strategy::optimistic(), &opts))
    });
    group.bench_function("pessimistic_only", |b| {
        b.iter(|| psi_with_strategy_presig(&g, &sigs, &q, Strategy::pessimistic(), &opts))
    });
    group.bench_function("smartpsi", |b| b.iter(|| smart.run(&q, &RunSpec::new())));
    group.finish();
}

/// Figure 11 / §5.4 point: model fitting on signature features.
fn bench_models(c: &mut Criterion) {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(6);
    let mut ds = Dataset::new(25);
    for _ in 0..400 {
        let label = rng.gen_range(0..2usize);
        let row: Vec<f32> = (0..25)
            .map(|i| rng.gen_range(0.0..2.0) + if label == 1 && i < 5 { 1.0 } else { 0.0 })
            .collect();
        ds.push(&row, label);
    }
    let mut group = quick(c, "models");
    group.bench_function("random_forest_fit", |b| {
        b.iter_batched(
            psi_ml::forest::RandomForest::default,
            |mut rf| {
                rf.fit(&ds, 1);
                rf
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("svm_fit", |b| {
        b.iter_batched(
            psi_ml::svm::LinearSvm::default,
            |mut m| {
                m.fit(&ds, 1);
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("mlp_fit", |b| {
        b.iter_batched(
            psi_ml::mlp::Mlp::default,
            |mut m| {
                m.fit(&ds, 1);
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Figure 12 point: one pattern's frequency via iso vs. PSI.
fn bench_fig12(c: &mut Criterion) {
    let g = PaperDataset::Twitter.generate_scaled(0.05, 7);
    let sigs = matrix_signatures(&g, 2);
    let miner = Miner::new(&g, MinerConfig::default());
    let _ = miner; // seeds demonstrated below with a fixed pattern
    let pattern = psi_fsm::Pattern::seed(0, 0, 1).extend_with_node(1, 0, 0);
    let mut group = quick(c, "fig12_fsm");
    group.bench_function("support_via_iso", |b| {
        b.iter(|| IsoSupport::new(&g, 3_000_000).mni_support(&pattern, 4))
    });
    group.bench_function("support_via_psi", |b| {
        b.iter(|| PsiSupport::new(&g, &sigs).mni_support(&pattern, 4))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_models,
    bench_fig12
);
criterion_main!(benches);
