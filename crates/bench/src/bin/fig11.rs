//! Figure 11 — prediction accuracy of the node-type model (Model α)
//! across datasets and query sizes.
//!
//! Accuracy is measured exactly as the paper describes: "comparing the
//! result of the model's prediction to the ground truth result obtained
//! by node evaluation" — SmartPSI's report already tracks, for every
//! non-training candidate, whether Model α's prediction matched the
//! final (exact) verdict.
//!
//! Paper's claim to reproduce: accuracy consistently above ~90% across
//! datasets and stable across query sizes.

use psi_bench::{ExperimentEnv, ResultTable};
use psi_core::obs::Counter;
use psi_core::{RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::PaperDataset;

fn main() {
    let env = ExperimentEnv::from_env();
    let datasets = [
        PaperDataset::Yeast,
        PaperDataset::Human,
        PaperDataset::Cora,
        PaperDataset::Youtube,
        PaperDataset::Twitter,
    ];
    let mut table = ResultTable::new(
        "fig11",
        &["dataset", "q4", "q5", "q6", "q7", "q8", "q9", "q10"],
    );
    for d in datasets {
        let g = env.dataset(d);
        let cfg = SmartPsiConfig {
            // Force the ML path even on small candidate sets so the
            // accuracy measurement is meaningful everywhere.
            min_candidates_for_ml: 20,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let mut row = vec![d.name().to_string()];
        for size in 4..=10 {
            let Some(w) = env.workload(&g, size) else {
                row.push("-".into());
                continue;
            };
            let (mut acc_sum, mut n) = (0.0f64, 0usize);
            for q in &w.queries {
                let r = smart.run(q, &RunSpec::new());
                if let Some(p) = &r.profile {
                    if p.counter(Counter::TrainedNodes) > 0 {
                        acc_sum += p.alpha_accuracy;
                        n += 1;
                    }
                }
            }
            row.push(if n == 0 {
                "-".into()
            } else {
                format!("{:.1}%", 100.0 * acc_sum / n as f64)
            });
        }
        table.row(row);
        eprintln!("[fig11] {} done", d.name());
    }
    println!(
        "\nFigure 11: Model α prediction accuracy ({} queries/size; '-' = ML path not engaged)",
        env.queries_per_size
    );
    table.finish();
}
