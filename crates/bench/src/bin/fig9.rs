//! Figure 9 — parallel SmartPSI vs. the two-threaded baseline on
//! YouTube and Twitter, query sizes 4–8, plus the parallel-executor
//! scaling study (`BENCH_parallel.json`).
//!
//! For fairness (as in the paper) SmartPSI also gets two concurrent
//! threads in the headline comparison, each evaluating different
//! candidate nodes, while the baseline spends its two threads racing
//! the optimistic and pessimistic methods on the *same* node. SmartPSI
//! appears twice: the historical static-chunk driver (one candidate
//! chunk per thread, each with its own training run and cache) and the
//! work-stealing pool (train once, shared queue, shared prediction
//! cache).
//!
//! Paper's claims to reproduce: the baseline can win on the smallest
//! queries (no training overhead), but grows much faster with query
//! size and eventually times out where SmartPSI keeps finishing.
//!
//! The scaling study then drops the baseline and compares static
//! chunking against work stealing at 2/4/8 workers on a skewed
//! single-label workload (see [`scaling_study`] for why the paper
//! datasets cannot exercise the prediction cache), also counting how
//! often the shared cache serves a prediction versus per-worker
//! private caches. Worker threads live in the engine's shared lazy
//! pool, so the OS-thread spawn bill (`pool_spawn_ms`) is paid once
//! per thread level — the study warms the pool with one recorded run,
//! reports that one-time bill as its own column, and times every
//! arm against warm workers. With `PSI_FIG9_SCALING_ONLY` set, the
//! binary skips the paper-dataset comparison and runs just the
//! scaling study; `ci.sh` uses that mode to enforce the 8-thread
//! scaling floor (`PSI_PARALLEL_SLACK`). Results land in
//! `BENCH_parallel.json` next to the CSVs.

use std::fmt::Write as _;
use std::sync::Arc;

use psi_bench::{render_grouped_bars, repro_dir, time, ExperimentEnv, ResultTable, Series};
use psi_core::single::RunOptions;
use psi_core::twothread::two_threaded_psi;
use psi_core::obs::{Counter, MetricsRecorder, Phase};
use psi_core::{EvalLimits, PsiResult, RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::PaperDataset;

/// Timing rounds per scaling-study arm; the minimum is recorded.
const STUDY_ROUNDS: usize = 3;

fn main() {
    // CI mode: only the scaling study (which asserts the 8-thread
    // scaling floor), skipping the long paper-dataset comparison.
    if std::env::var_os("PSI_FIG9_SCALING_ONLY").is_some() {
        scaling_study();
        return;
    }
    let env = ExperimentEnv::from_env();
    // The paper evaluates 100 queries here ("evaluating 1000 queries
    // takes too much time for the two-threaded approach") — we default
    // to the harness-wide count.
    let cap: u64 = std::env::var("PSI_REPRO_STEP_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000_000);
    let mut table = ResultTable::new(
        "fig9",
        &[
            "dataset",
            "size",
            "two_threaded_ms",
            "smartpsi2_static_ms",
            "smartpsi2_ws_ms",
            "baseline_unresolved",
        ],
    );

    for d in [PaperDataset::Youtube, PaperDataset::Twitter] {
        let g = env.dataset(d);
        eprintln!("[fig9] {}: |V|={} |E|={}", d.name(), g.node_count(), g.edge_count());
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::web_scale());
        let mut xs: Vec<String> = Vec::new();
        let mut series = vec![
            Series { name: "two-threaded".into(), values: Vec::new() },
            Series { name: "SmartPSI static (2t)".into(), values: Vec::new() },
            Series { name: "SmartPSI stealing (2t)".into(), values: Vec::new() },
        ];
        for size in 4..=8 {
            let Some(w) = env.workload(&g, size) else { continue };
            let opts = RunOptions {
                limits: EvalLimits::steps(cap),
                ..RunOptions::default()
            };
            let (unresolved, t_two) = time(|| {
                let mut u = 0usize;
                for q in &w.queries {
                    u += two_threaded_psi(&g, q, &opts).unresolved;
                }
                u
            });
            let static2 = RunSpec::new().static_chunks(2);
            let (_, t_static) = time(|| {
                for q in &w.queries {
                    let _ = smart.run(q, &static2);
                }
            });
            let ws2 = RunSpec::new().threads(2);
            let (_, t_ws) = time(|| {
                for q in &w.queries {
                    let _ = smart.run(q, &ws2);
                }
            });
            table.row(vec![
                d.name().into(),
                size.to_string(),
                t_two.as_millis().to_string(),
                t_static.as_millis().to_string(),
                t_ws.as_millis().to_string(),
                unresolved.to_string(),
            ]);
            xs.push(format!("query size {size}"));
            series[0].values.push(Some(t_two.as_millis() as f64));
            series[1].values.push(Some(t_static.as_millis() as f64));
            series[2].values.push(Some(t_ws.as_millis() as f64));
            eprintln!("[fig9] {} size {size} done", d.name());
        }
        println!("{}", render_grouped_bars(&format!("Figure 9({}): total ms per workload", d.name()), &xs, &series, 48));
    }
    println!(
        "\nFigure 9: parallel SmartPSI vs. two-threaded baseline ({} queries/size)",
        env.queries_per_size
    );
    table.finish();

    scaling_study();
}

/// Static chunking vs. work stealing at increasing worker counts,
/// plus shared-vs-private cache hit counts. Writes
/// `BENCH_parallel.json` and enforces the 8-thread scaling floor:
/// work stealing must beat static chunking by at least
/// `2.0 / PSI_PARALLEL_SLACK` (slack defaults to 1.0, so the default
/// floor is a hard 2.0×; the checked-in JSON targets ≥ 2.5×).
///
/// The study runs on a dense single-label graph rather than the paper
/// datasets, for two reasons. First, with many labels every
/// candidate's signature row is distinctive — on YouTube and Twitter
/// not a single pair of candidates shares an exact signature, so the
/// prediction cache can never hit and the shared-vs-private ablation
/// is vacuous. With one label, 50–75% of candidates are exact
/// duplicates and the cache carries real traffic. Second, the
/// single-label candidate set is every node in the graph, so the
/// training cap binds globally but not per chunk: static chunking
/// pays for `threads ×` as many ground-truth runs (expensive
/// exhaustive searches on a dense graph) while the pool trains once —
/// the redundancy that grows with the worker count is exactly what
/// the study is after. Each arm is timed as the best of
/// [`STUDY_ROUNDS`] rounds to damp scheduler noise.
fn scaling_study() {
    let g = psi_datasets::generators::erdos_renyi(6_000, 36_000, 1, 31);
    let cfg = SmartPsiConfig {
        // An aggressive fraction under a web-scale cap: the cap of 400
        // binds for the pool's single training run (0.5 × 6000 » 400),
        // while each static chunk re-trains its own fraction (0.5 ×
        // 750 = 375 nodes at 8 threads, 3000 ground-truth runs total
        // vs. the pool's 400) — the per-chunk redundancy that grows
        // with the worker count is exactly what the study measures.
        train_fraction: 0.50,
        max_train_nodes: 400,
        ..SmartPsiConfig::default()
    };
    let smart = SmartPsi::new(g.clone(), cfg);
    // Size-mixed (skewed) workload: small queries are cheap, large
    // ones expensive, so contiguous chunks get uneven work.
    let mut queries = Vec::new();
    for size in 5..=7usize {
        if let Some(w) = psi_datasets::QueryWorkload::extract(&g, size, 5, 48 + size as u64) {
            queries.extend(w.queries);
        }
    }
    eprintln!(
        "[fig9] scaling study: |V|={} |E|={} single-label, {} queries",
        g.node_count(),
        g.edge_count(),
        queries.len()
    );

    let mut table = ResultTable::new(
        "parallel_scaling",
        &["threads", "static_ms", "ws_ms", "pool_spawn_ms", "speedup", "shared_hits", "prefilter_pruned"],
    );
    let mut json_rows = String::new();
    let mut speedup_at_8 = f64::MAX;
    for &threads in &[2usize, 4, 8] {
        // Warm the shared pool at this thread level with one recorded
        // run, and read back the one-time spawn bill: the engine's
        // lazy pool spawns each OS thread exactly once per process, so
        // this is the entire `pool_spawn_ms` the whole batch pays —
        // every timed round below runs on warm workers.
        let warmup = RunSpec::new()
            .threads(threads)
            .recorder(Arc::new(MetricsRecorder::new()));
        let r = smart.run(&queries[0], &warmup);
        let (pool_spawn_ms, pool_threads_spawned) = r.profile.as_ref().map_or((0.0, 0), |p| {
            (
                p.span(Phase::PoolSpawn).as_nanos() as f64 / 1e6,
                p.counter(Counter::PoolThreadsSpawned),
            )
        });
        let mut t_static = f64::MAX;
        let mut t_ws = f64::MAX;
        let mut t_private = f64::MAX;
        let mut shared_hits = 0usize;
        let mut pruned = 0usize;
        let static_spec = RunSpec::new().static_chunks(threads);
        let ws_spec = RunSpec::new().threads(threads);
        let uncached_spec = RunSpec::new().threads(threads).shared_cache(false);
        for _ in 0..STUDY_ROUNDS {
            let (_, t) = time(|| {
                for q in &queries {
                    let _ = smart.run(q, &static_spec);
                }
            });
            t_static = t_static.min(t.as_secs_f64() * 1e3);
            let ((hits, pr), t) = time(|| {
                let (mut hits, mut pr) = (0usize, 0usize);
                for q in &queries {
                    let r = smart.run(q, &ws_spec);
                    hits += cache_hits(&r);
                    pr += prefilter_pruned(&r);
                }
                (hits, pr)
            });
            t_ws = t_ws.min(t.as_secs_f64() * 1e3);
            shared_hits = hits;
            pruned = pr;
            // Ablation: same pool and batch plan, but the phase-A
            // sweep predicts every survivor from scratch — no
            // prediction cache at all.
            let (_, t) = time(|| {
                for q in &queries {
                    let _ = smart.run(q, &uncached_spec);
                }
            });
            t_private = t_private.min(t.as_secs_f64() * 1e3);
        }
        let speedup = t_static / t_ws.max(1e-9);
        if threads == 8 {
            speedup_at_8 = speedup;
        }
        table.row(vec![
            threads.to_string(),
            format!("{t_static:.1}"),
            format!("{t_ws:.1}"),
            format!("{pool_spawn_ms:.2}"),
            format!("{speedup:.2}"),
            shared_hits.to_string(),
            pruned.to_string(),
        ]);
        let _ = writeln!(
            json_rows,
            "    {{\"threads\": {threads}, \"static_ms\": {t_static:.1}, \
             \"work_stealing_ms\": {t_ws:.1}, \"work_stealing_uncached_ms\": {t_private:.1}, \
             \"pool_spawn_ms\": {pool_spawn_ms:.2}, \
             \"pool_threads_spawned\": {pool_threads_spawned}, \
             \"speedup_vs_static\": {speedup:.3}, \"shared_cache_hits\": {shared_hits}, \
             \"prefilter_pruned\": {pruned}}},",
        );
        eprintln!("[fig9] scaling study at {threads} threads done");
    }
    table.finish();

    let json = format!(
        "{{\n  \"experiment\": \"fig9 parallel scaling (dense single-label skewed workload, \
         best of {STUDY_ROUNDS} rounds)\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.trim_end().trim_end_matches(','),
    );
    let path = repro_dir().join("BENCH_parallel.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    // Also drop a copy at the workspace root for discoverability.
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_parallel.json", &json);
    }
    println!("[json] {}", path.display());

    // Scaling floor: train-once + one batched phase-A sweep + warm
    // workers must beat per-chunk retraining by at least 2.0× at 8
    // threads (`PSI_PARALLEL_SLACK` loosens the floor for noisy CI
    // hosts; the checked-in numbers target ≥ 2.5×).
    let slack: f64 = std::env::var("PSI_PARALLEL_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let floor = 2.0 / slack;
    assert!(
        speedup_at_8 >= floor,
        "scaling floor: work stealing at 8 threads is only {speedup_at_8:.2}x \
         over static chunking (floor {floor:.2}x; raise PSI_PARALLEL_SLACK only \
         for a provably noisy host)"
    );
    println!("[fig9] scaling floor ok: {speedup_at_8:.2}x >= {floor:.2}x at 8 threads");
}

/// Prediction-cache hits served during `r`'s evaluation, read back
/// from the attached [`psi_core::obs::QueryProfile`].
fn cache_hits(r: &PsiResult) -> usize {
    r.profile.as_ref().map_or(0, |p| p.counter(Counter::CacheHits) as usize)
}

/// Candidates the batched phase-A sweep pruned before prediction.
fn prefilter_pruned(r: &PsiResult) -> usize {
    r.profile.as_ref().map_or(0, |p| p.counter(Counter::PrefilterPruned) as usize)
}
