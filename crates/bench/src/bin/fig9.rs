//! Figure 9 — SmartPSI (2 worker threads) vs. the two-threaded baseline
//! on YouTube and Twitter, query sizes 4–8.
//!
//! For fairness (as in the paper) SmartPSI also gets two concurrent
//! threads here, each evaluating different candidate nodes, while the
//! baseline spends its two threads racing the optimistic and
//! pessimistic methods on the *same* node.
//!
//! Paper's claims to reproduce: the baseline can win on the smallest
//! queries (no training overhead), but grows much faster with query
//! size and eventually times out where SmartPSI keeps finishing.

use psi_bench::{render_grouped_bars, time, ExperimentEnv, ResultTable, Series};
use psi_core::single::RunOptions;
use psi_core::twothread::two_threaded_psi;
use psi_core::{EvalLimits, SmartPsi, SmartPsiConfig};
use psi_datasets::PaperDataset;

fn main() {
    let env = ExperimentEnv::from_env();
    // The paper evaluates 100 queries here ("evaluating 1000 queries
    // takes too much time for the two-threaded approach") — we default
    // to the harness-wide count.
    let cap: u64 = std::env::var("PSI_REPRO_STEP_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000_000);
    let mut table = ResultTable::new(
        "fig9",
        &["dataset", "size", "two_threaded_ms", "smartpsi2_ms", "baseline_unresolved"],
    );

    for d in [PaperDataset::Youtube, PaperDataset::Twitter] {
        let g = env.dataset(d);
        eprintln!("[fig9] {}: |V|={} |E|={}", d.name(), g.node_count(), g.edge_count());
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::web_scale());
        let mut xs: Vec<String> = Vec::new();
        let mut series = vec![
            Series { name: "two-threaded".into(), values: Vec::new() },
            Series { name: "SmartPSI (2t)".into(), values: Vec::new() },
        ];
        for size in 4..=8 {
            let Some(w) = env.workload(&g, size) else { continue };
            let opts = RunOptions {
                limits: EvalLimits::steps(cap),
                ..RunOptions::default()
            };
            let (unresolved, t_two) = time(|| {
                let mut u = 0usize;
                for q in &w.queries {
                    u += two_threaded_psi(&g, q, &opts).unresolved;
                }
                u
            });
            let (_, t_smart) = time(|| {
                for q in &w.queries {
                    let _ = smart.evaluate_parallel(q, 2);
                }
            });
            table.row(vec![
                d.name().into(),
                size.to_string(),
                t_two.as_millis().to_string(),
                t_smart.as_millis().to_string(),
                unresolved.to_string(),
            ]);
            xs.push(format!("query size {size}"));
            series[0].values.push(Some(t_two.as_millis() as f64));
            series[1].values.push(Some(t_smart.as_millis() as f64));
            eprintln!("[fig9] {} size {size} done", d.name());
        }
        println!("{}", render_grouped_bars(&format!("Figure 9({}): total ms per workload", d.name()), &xs, &series, 48));
    }
    println!(
        "\nFigure 9: SmartPSI (2 threads) vs. two-threaded baseline ({} queries/size)",
        env.queries_per_size
    );
    table.finish();
}
