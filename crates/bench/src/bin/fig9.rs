//! Figure 9 — parallel SmartPSI vs. the two-threaded baseline on
//! YouTube and Twitter, query sizes 4–8, plus the parallel-executor
//! scaling study (`BENCH_parallel.json`).
//!
//! For fairness (as in the paper) SmartPSI also gets two concurrent
//! threads in the headline comparison, each evaluating different
//! candidate nodes, while the baseline spends its two threads racing
//! the optimistic and pessimistic methods on the *same* node. SmartPSI
//! appears twice: the historical static-chunk driver (one candidate
//! chunk per thread, each with its own training run and cache) and the
//! work-stealing pool (train once, shared queue, shared prediction
//! cache).
//!
//! Paper's claims to reproduce: the baseline can win on the smallest
//! queries (no training overhead), but grows much faster with query
//! size and eventually times out where SmartPSI keeps finishing.
//!
//! The scaling study then drops the baseline and compares static
//! chunking against work stealing at 2/4/8 workers on a skewed
//! single-label workload (see [`scaling_study`] for why the paper
//! datasets cannot exercise the prediction cache), also counting how
//! often the shared cache serves a prediction versus per-worker
//! private caches, and reporting the batch's pool spawn/join bill
//! (`pool_spawn_ms`) as its own column — every `run` re-spawns the
//! pool, and that is exactly the setup cost the persistent service in
//! `BENCH_serve.json` amortizes. Results land in
//! `BENCH_parallel.json` next to the CSVs.

use std::fmt::Write as _;
use std::sync::Arc;

use psi_bench::{render_grouped_bars, repro_dir, time, ExperimentEnv, ResultTable, Series};
use psi_core::single::RunOptions;
use psi_core::twothread::two_threaded_psi;
use psi_core::obs::{Counter, MetricsRecorder, Phase};
use psi_core::{EvalLimits, PsiResult, RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::PaperDataset;

/// Timing rounds per scaling-study arm; the minimum is recorded.
const STUDY_ROUNDS: usize = 3;

fn main() {
    let env = ExperimentEnv::from_env();
    // The paper evaluates 100 queries here ("evaluating 1000 queries
    // takes too much time for the two-threaded approach") — we default
    // to the harness-wide count.
    let cap: u64 = std::env::var("PSI_REPRO_STEP_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000_000);
    let mut table = ResultTable::new(
        "fig9",
        &[
            "dataset",
            "size",
            "two_threaded_ms",
            "smartpsi2_static_ms",
            "smartpsi2_ws_ms",
            "baseline_unresolved",
        ],
    );

    for d in [PaperDataset::Youtube, PaperDataset::Twitter] {
        let g = env.dataset(d);
        eprintln!("[fig9] {}: |V|={} |E|={}", d.name(), g.node_count(), g.edge_count());
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::web_scale());
        let mut xs: Vec<String> = Vec::new();
        let mut series = vec![
            Series { name: "two-threaded".into(), values: Vec::new() },
            Series { name: "SmartPSI static (2t)".into(), values: Vec::new() },
            Series { name: "SmartPSI stealing (2t)".into(), values: Vec::new() },
        ];
        for size in 4..=8 {
            let Some(w) = env.workload(&g, size) else { continue };
            let opts = RunOptions {
                limits: EvalLimits::steps(cap),
                ..RunOptions::default()
            };
            let (unresolved, t_two) = time(|| {
                let mut u = 0usize;
                for q in &w.queries {
                    u += two_threaded_psi(&g, q, &opts).unresolved;
                }
                u
            });
            let static2 = RunSpec::new().static_chunks(2);
            let (_, t_static) = time(|| {
                for q in &w.queries {
                    let _ = smart.run(q, &static2);
                }
            });
            let ws2 = RunSpec::new().threads(2);
            let (_, t_ws) = time(|| {
                for q in &w.queries {
                    let _ = smart.run(q, &ws2);
                }
            });
            table.row(vec![
                d.name().into(),
                size.to_string(),
                t_two.as_millis().to_string(),
                t_static.as_millis().to_string(),
                t_ws.as_millis().to_string(),
                unresolved.to_string(),
            ]);
            xs.push(format!("query size {size}"));
            series[0].values.push(Some(t_two.as_millis() as f64));
            series[1].values.push(Some(t_static.as_millis() as f64));
            series[2].values.push(Some(t_ws.as_millis() as f64));
            eprintln!("[fig9] {} size {size} done", d.name());
        }
        println!("{}", render_grouped_bars(&format!("Figure 9({}): total ms per workload", d.name()), &xs, &series, 48));
    }
    println!(
        "\nFigure 9: parallel SmartPSI vs. two-threaded baseline ({} queries/size)",
        env.queries_per_size
    );
    table.finish();

    scaling_study();
}

/// Static chunking vs. work stealing at increasing worker counts,
/// plus shared-vs-private cache hit counts. Writes
/// `BENCH_parallel.json`.
///
/// The study runs on a dense single-label graph rather than the paper
/// datasets, for two reasons. First, with many labels every
/// candidate's signature row is distinctive — on YouTube and Twitter
/// not a single pair of candidates shares an exact signature, so the
/// prediction cache can never hit and the shared-vs-private ablation
/// is vacuous. With one label, 50–75% of candidates are exact
/// duplicates and the cache carries real traffic. Second, the
/// single-label candidate set is every node in the graph, so the
/// training cap binds globally but not per chunk: static chunking
/// pays for `threads ×` as many ground-truth runs (expensive
/// exhaustive searches on a dense graph) while the pool trains once —
/// the redundancy that grows with the worker count is exactly what
/// the study is after. Each arm is timed as the best of
/// [`STUDY_ROUNDS`] rounds to damp scheduler noise.
fn scaling_study() {
    let g = psi_datasets::generators::erdos_renyi(6_000, 36_000, 1, 31);
    let cfg = SmartPsiConfig {
        // The default fraction with a web-scale cap: 120 « 0.10 × 6000
        // binds for the pool's single training run, while static's
        // per-chunk fractions stay under it (e.g. 0.10 × 750 at 8
        // threads), so chunking re-trains in full per worker.
        train_fraction: 0.10,
        max_train_nodes: 120,
        ..SmartPsiConfig::default()
    };
    let smart = SmartPsi::new(g.clone(), cfg);
    // Size-mixed (skewed) workload: small queries are cheap, large
    // ones expensive, so contiguous chunks get uneven work.
    let mut queries = Vec::new();
    for size in 4..=6usize {
        if let Some(w) = psi_datasets::QueryWorkload::extract(&g, size, 5, 48 + size as u64) {
            queries.extend(w.queries);
        }
    }
    eprintln!(
        "[fig9] scaling study: |V|={} |E|={} single-label, {} queries",
        g.node_count(),
        g.edge_count(),
        queries.len()
    );

    let mut table = ResultTable::new(
        "parallel_scaling",
        &["threads", "static_ms", "ws_ms", "pool_spawn_ms", "speedup", "shared_hits", "private_hits"],
    );
    let mut json_rows = String::new();
    for &threads in &[2usize, 4, 8] {
        let mut t_static = f64::MAX;
        let mut t_ws = f64::MAX;
        let mut t_private = f64::MAX;
        let mut shared_hits = 0usize;
        let mut private_hits = 0usize;
        let static_spec = RunSpec::new().static_chunks(threads);
        let ws_spec = RunSpec::new().threads(threads);
        let private_spec = RunSpec::new().threads(threads).shared_cache(false);
        for _ in 0..STUDY_ROUNDS {
            let (_, t) = time(|| {
                for q in &queries {
                    let _ = smart.run(q, &static_spec);
                }
            });
            t_static = t_static.min(t.as_secs_f64() * 1e3);
            let (hits, t) = time(|| {
                let mut hits = 0usize;
                for q in &queries {
                    hits += cache_hits(&smart.run(q, &ws_spec));
                }
                hits
            });
            t_ws = t_ws.min(t.as_secs_f64() * 1e3);
            shared_hits = hits;
            // Ablation: same pool, but each worker keeps a private
            // cache and learns nothing from the others.
            let (hits, t) = time(|| {
                let mut hits = 0usize;
                for q in &queries {
                    hits += cache_hits(&smart.run(q, &private_spec));
                }
                hits
            });
            t_private = t_private.min(t.as_secs_f64() * 1e3);
            private_hits = hits;
        }
        let speedup = t_static / t_ws.max(1e-9);
        // The timed loops above fold pool spawn/join into evaluation
        // time (every `smart.run` re-spawns the pool). Measure that
        // setup cost separately with one recorded pass: each worker
        // logs a `Phase::PoolSpawn` span, and the per-query sums add
        // up to the batch's total spawn bill. This is the figure
        // `BENCH_serve.json` amortizes away with a persistent service.
        // (A profile absorbs its recorder without draining it, so each
        // run gets a fresh one — reuse would double-count spans.)
        let spawn_ns: u64 = queries
            .iter()
            .map(|q| {
                let recorded = RunSpec::new()
                    .threads(threads)
                    .recorder(Arc::new(MetricsRecorder::new()));
                let r = smart.run(q, &recorded);
                r.profile.as_ref().map_or(0, |p| p.span(Phase::PoolSpawn).as_nanos() as u64)
            })
            .sum();
        let pool_spawn_ms = spawn_ns as f64 / 1e6;
        table.row(vec![
            threads.to_string(),
            format!("{t_static:.1}"),
            format!("{t_ws:.1}"),
            format!("{pool_spawn_ms:.2}"),
            format!("{speedup:.2}"),
            shared_hits.to_string(),
            private_hits.to_string(),
        ]);
        let _ = writeln!(
            json_rows,
            "    {{\"threads\": {threads}, \"static_ms\": {t_static:.1}, \
             \"work_stealing_ms\": {t_ws:.1}, \"work_stealing_private_cache_ms\": {t_private:.1}, \
             \"pool_spawn_ms\": {pool_spawn_ms:.2}, \
             \"speedup_vs_static\": {speedup:.3}, \"shared_cache_hits\": {shared_hits}, \
             \"private_cache_hits\": {private_hits}}},",
        );
        eprintln!("[fig9] scaling study at {threads} threads done");
    }
    table.finish();

    let json = format!(
        "{{\n  \"experiment\": \"fig9 parallel scaling (dense single-label skewed workload, \
         best of {STUDY_ROUNDS} rounds)\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.trim_end().trim_end_matches(','),
    );
    let path = repro_dir().join("BENCH_parallel.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    // Also drop a copy at the workspace root for discoverability.
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_parallel.json", &json);
    }
    println!("[json] {}", path.display());
}

/// Prediction-cache hits served during `r`'s evaluation, read back
/// from the attached [`psi_core::obs::QueryProfile`].
fn cache_hits(r: &PsiResult) -> usize {
    r.profile.as_ref().map_or(0, |p| p.counter(Counter::CacheHits) as usize)
}
