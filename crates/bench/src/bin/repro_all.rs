//! Run every reproduction binary in sequence (Table 1, Table 2,
//! Figures 7–12, Table 4, the §5.4 model comparison) by invoking their
//! entry points in-process would duplicate their `main`s; instead this
//! driver shells out to the sibling binaries, inheriting the
//! environment, and summarizes which CSVs were produced.
//!
//! Usage: `cargo run --release -p psi-bench --bin repro_all`
//! Honors `PSI_REPRO_SCALE`, `PSI_REPRO_QUERIES`, `PSI_REPRO_SEED`.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "table4", "models", "fig12",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n=== {name} ===");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        if !status.success() {
            eprintln!("[repro_all] {name} FAILED with {status}");
            failures.push(*name);
        }
    }
    println!("\n=== summary ===");
    let out = psi_bench::repro_dir();
    if let Ok(entries) = std::fs::read_dir(&out) {
        for e in entries.flatten() {
            println!("  {}", e.path().display());
        }
    }
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
