//! Table 4 — the overhead of model training and prediction relative to
//! total SmartPSI time, on Human, YouTube and Twitter, sizes 4–8.
//!
//! Paper's claims to reproduce: on the small (fast-to-evaluate) Human
//! graph the overhead share is large at small sizes and shrinks as
//! queries grow; on the big graphs it is a few percent throughout.

use psi_bench::{ExperimentEnv, ResultTable};
use psi_core::{RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::PaperDataset;

fn main() {
    let env = ExperimentEnv::from_env();
    let mut table = ResultTable::new("table4", &["dataset", "q4", "q5", "q6", "q7", "q8"]);
    for d in [PaperDataset::Human, PaperDataset::Youtube, PaperDataset::Twitter] {
        let g = env.dataset(d);
        // The web-scale preset restores the paper's effective
        // training ratio on the scaled-down big graphs (see the
        // SmartPsiConfig::web_scale docs); Human keeps the default.
        let cfg = if d == PaperDataset::Human {
            SmartPsiConfig {
                min_candidates_for_ml: 20,
                ..SmartPsiConfig::default()
            }
        } else {
            SmartPsiConfig {
                min_candidates_for_ml: 20,
                ..SmartPsiConfig::web_scale()
            }
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let mut row = vec![d.name().to_string()];
        for size in 4..=8 {
            let Some(w) = env.workload(&g, size) else {
                row.push("-".into());
                continue;
            };
            let mut overhead = std::time::Duration::ZERO;
            let mut total = std::time::Duration::ZERO;
            for q in &w.queries {
                let r = smart.run(q, &RunSpec::new());
                if let Some(p) = &r.profile {
                    overhead += std::time::Duration::from_nanos(p.train_ns);
                    total += std::time::Duration::from_nanos(p.train_ns + p.evaluation_ns);
                }
            }
            row.push(if total.is_zero() {
                "-".into()
            } else {
                format!("{:.2}%", 100.0 * overhead.as_secs_f64() / total.as_secs_f64())
            });
            eprintln!("[table4] {} size {size} done", d.name());
        }
        table.row(row);
    }
    println!(
        "\nTable 4: training+prediction overhead as % of total SmartPSI time ({} queries/size)",
        env.queries_per_size
    );
    table.finish();
}
