//! Table 1 — number of PSI results vs. number of isomorphic subgraphs,
//! per dataset and query size.
//!
//! For each dataset (Yeast, Cora, Human) and query size 4–10, sums over
//! the query workload: (a) the count of distinct pivot bindings (PSI)
//! and (b) the count of *all* embeddings (subgraph isomorphism).
//! Embedding counting is capped by a step budget — the stand-in for the
//! paper's "NA" cells, rendered as `>=` lower bounds.
//!
//! Paper's claim to reproduce: embeddings grow exponentially with the
//! query size while PSI results stay flat or shrink — several orders of
//! magnitude apart already at small sizes.

use psi_bench::{fmt_sci, ExperimentEnv, ResultTable};
use psi_core::{RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::PaperDataset;
use psi_match::{count_embeddings, BudgetOutcome, SearchBudget};

fn main() {
    let env = ExperimentEnv::from_env();
    let budget_steps: u64 = std::env::var("PSI_REPRO_TABLE1_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000_000);
    let mut table = ResultTable::new(
        "table1",
        &["dataset", "metric", "q4", "q5", "q6", "q7", "q8", "q9", "q10"],
    );

    for d in PaperDataset::SMALL {
        let g = env.dataset(d);
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
        let mut psi_row = vec![d.name().to_string(), "PSI".to_string()];
        let mut iso_row = vec![d.name().to_string(), "SubgraphIso".to_string()];
        for size in 4..=10 {
            let Some(w) = env.workload(&g, size) else {
                psi_row.push("-".into());
                iso_row.push("-".into());
                continue;
            };
            let mut psi_total = 0u64;
            let mut iso_total = 0u64;
            let mut censored = false;
            for q in &w.queries {
                psi_total += smart.run(q, &RunSpec::new()).count() as u64;
                let (n, stats) =
                    count_embeddings(&g, q.graph(), &SearchBudget::steps(budget_steps / w.queries.len() as u64));
                iso_total += n;
                censored |= stats.outcome == BudgetOutcome::Exhausted;
            }
            psi_row.push(fmt_sci(psi_total as f64));
            iso_row.push(format!(
                "{}{}",
                if censored { ">=" } else { "" },
                fmt_sci(iso_total as f64)
            ));
        }
        table.row(psi_row);
        table.row(iso_row);
        eprintln!("[table1] {} done", d.name());
    }
    println!("\nTable 1: PSI results vs. isomorphic subgraphs (sums over {} queries/size)", env.queries_per_size);
    table.finish();
}
