//! Shard bench — scatter-gather [`ShardedService`] vs. one
//! single-context [`PsiService`] with the same total worker count on a
//! generated 500k-node graph. Writes `BENCH_shard.json`.
//!
//! PR 6's serving claim is about *memory locality*, not raw speed: a
//! range shard only materializes its owned range plus a depth-`D` halo,
//! so each shard's signature slab is a fraction of the full matrix —
//! the property that lets a deployment place shards on machines that
//! cannot hold the whole graph. The bench measures and asserts:
//!
//! * **throughput** — the sharded deployment (S shards × W workers)
//!   must stay within `PSI_SHARD_SLACK` (default 1.5, CI uses 2.0) of
//!   a single-context service with `S × W` workers on the same job
//!   stream. Scatter-gather pays per-shard training and a merge step,
//!   so parity is the bar, not speedup.
//! * **memory** — the *peak per-shard* slab (residents × labels × 4
//!   bytes) must undercut half the full matrix on the 4-shard cut
//!   (owned quarter + halo); the ratio is recorded in the JSON. This
//!   is deterministic, no slack needed. The bench graph is a
//!   locality-ordered ring-with-chords (see [`locality_graph`]) —
//!   range cuts only buy memory when node order has locality.
//! * **correctness** — every sharded answer projection (valid set,
//!   candidate count, unresolved, failure nodes) must equal the
//!   single-context service's. A locality win with wrong answers is
//!   no win.
//!
//! [`ShardedService`]: psi_core::ShardedService
//! [`PsiService`]: psi_core::PsiService

use std::fmt::Write as _;

use psi_bench::{repro_dir, time, ResultTable};
use psi_core::obs::Counter;
use psi_core::{DeploymentSpec, PsiResult, RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::QueryWorkload;
use psi_graph::{Graph, GraphBuilder};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Timing rounds per arm; the minimum is recorded.
const ROUNDS: usize = 2;
/// Range shards in the sharded arm.
const SHARDS: usize = 4;
/// Workers per shard; the single-context arm gets `SHARDS * WORKERS`.
const WORKERS: usize = 2;
/// Bench graph: 500k nodes, ~1M edges. A wide label alphabet keeps
/// per-query candidate sets (≈ |V| / labels) in the thousands, so the
/// stream is a serving workload rather than one giant scan.
const NODES: usize = 500_000;
const LABELS: u16 = 48;
/// Chord reach of the locality generator, in id distance.
const WINDOW: u32 = 64;

/// A ring with one random short-range chord per node: every edge spans
/// at most [`WINDOW`] ids, so node order has real locality — the
/// regime a range-sharded deployment is built for (graphs renumbered
/// by BFS/community order, road networks, event streams). On an
/// expander like Erdős–Rényi a depth-D halo ball is nearly the whole
/// graph and *no* range cut can be memory-local; that is a property of
/// the ordering, not of the scatter-gather machinery.
fn locality_graph(nodes: usize, labels: u16, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(nodes, nodes * 2);
    for _ in 0..nodes {
        b.add_node(rng.gen_range(0..labels));
    }
    let n = nodes as u32;
    for i in 0..n {
        if i + 1 < n {
            b.add_edge(i, i + 1);
        }
        let j = rng.gen_range(i.saturating_sub(WINDOW)..=(i + WINDOW).min(n - 1));
        if j != i {
            b.add_edge(i, j);
        }
    }
    b.build().expect("valid bench graph")
}

/// The answer-projection two deployments must agree on. Steps and
/// profile counters legitimately differ: each shard trains on its own
/// candidate sample, and training changes cost, never verdicts.
fn projection(r: &PsiResult) -> (Vec<u32>, usize, usize, Vec<u32>) {
    (
        r.valid.clone(),
        r.candidates,
        r.unresolved,
        r.failures.nodes.iter().map(|f| f.node).collect(),
    )
}

fn main() {
    let slack: f64 = std::env::var("PSI_SHARD_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);

    let (g, t_gen) = time(|| locality_graph(NODES, LABELS, 23));
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    };
    let (smart, t_sigs) = time(|| SmartPsi::new(g, cfg));
    let g = smart.graph();

    let queries = QueryWorkload::extract(g, 4, 8, 501)
        .expect("workload extraction on the bench graph")
        .queries;
    assert!(queries.len() >= 6, "need a real job stream, got {}", queries.len());
    eprintln!(
        "[shard] |V|={} |E|={} labels={} generated in {:.2?}, signatures in {:.2?}, {} jobs",
        g.node_count(),
        g.edge_count(),
        g.label_count(),
        t_gen,
        t_sigs,
        queries.len()
    );

    let (sharded, t_cut) = time(|| {
        smart
            .deploy(&DeploymentSpec::new().shards(SHARDS).workers(WORKERS))
            .into_sharded()
    });
    eprintln!("[shard] {SHARDS} shards × {WORKERS} workers cut in {t_cut:.2?}");

    // Peak per-shard slab vs. the full matrix — the locality claim.
    let label_count = g.label_count();
    let full_slab_bytes = g.node_count() * label_count * 4;
    let peak_shard_slab_bytes = (0..SHARDS)
        .map(|s| sharded.resident_nodes(s).len() * label_count * 4)
        .max()
        .unwrap_or(0);
    assert!(
        peak_shard_slab_bytes * 2 < full_slab_bytes,
        "a range shard of a locality-ordered graph must undercut half the full matrix: \
         {peak_shard_slab_bytes} B vs {full_slab_bytes} B"
    );
    let slab_ratio = peak_shard_slab_bytes as f64 / full_slab_bytes as f64;

    let mut t_single = f64::MAX;
    let mut t_sharded = f64::MAX;
    for _ in 0..ROUNDS {
        let (_, t) = time(|| {
            let service = smart
                .deploy(&DeploymentSpec::new().workers(SHARDS * WORKERS))
                .into_service();
            let handles: Vec<_> = queries
                .iter()
                .map(|q| service.submit(q.clone(), RunSpec::new()))
                .collect();
            for h in handles {
                let _ = h.wait();
            }
            drop(service);
        });
        t_single = t_single.min(t.as_secs_f64() * 1e3);

        let (_, t) = time(|| {
            let handles: Vec<_> = queries
                .iter()
                .map(|q| sharded.submit(q.clone(), RunSpec::new()).expect("within halo"))
                .collect();
            for h in handles {
                let _ = h.wait();
            }
        });
        t_sharded = t_sharded.min(t.as_secs_f64() * 1e3);
    }

    // Untimed differential pass: sharded answers against a
    // single-context service, projection-compared.
    let service = smart
        .deploy(&DeploymentSpec::new().workers(SHARDS * WORKERS))
        .into_service();
    let truth: Vec<_> = queries
        .iter()
        .map(|q| service.submit(q.clone(), RunSpec::new()))
        .collect();
    let merged: Vec<_> = queries
        .iter()
        .map(|q| sharded.submit(q.clone(), RunSpec::new()).expect("within halo"))
        .collect();
    for (i, (t, m)) in truth.into_iter().zip(merged).enumerate() {
        assert_eq!(
            projection(&t.wait()),
            projection(&m.wait()),
            "sharded answer diverged from single-context on query {i}"
        );
    }
    drop(service);
    let fanout = sharded.metrics().counter(Counter::ShardFanout);

    let ratio = t_sharded / t_single.max(1e-9);
    assert!(
        ratio <= slack,
        "sharded serving fell behind the single-context service: {t_sharded:.1} ms vs \
         {t_single:.1} ms ({ratio:.2}x > slack {slack})"
    );

    let mut table = ResultTable::new("shard", &["arm", "total_ms", "peak_slab_mb"]);
    table.row(vec![
        format!("single ({} workers)", SHARDS * WORKERS),
        format!("{t_single:.1}"),
        format!("{:.1}", full_slab_bytes as f64 / 1e6),
    ]);
    table.row(vec![
        format!("sharded ({SHARDS}x{WORKERS})"),
        format!("{t_sharded:.1}"),
        format!("{:.1}", peak_shard_slab_bytes as f64 / 1e6),
    ]);
    table.finish();
    println!(
        "sharded vs single-context: {ratio:.2}x wall, {:.0}% peak slab, halo depth {}",
        slab_ratio * 100.0,
        sharded.halo_depth()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"experiment\": \"sharded scatter-gather vs single-context service \
         ({NODES} nodes, {} jobs, best of {ROUNDS} rounds)\",",
        queries.len()
    );
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"workers_per_shard\": {WORKERS},");
    let _ = writeln!(json, "  \"halo_depth\": {},", sharded.halo_depth());
    let _ = writeln!(json, "  \"jobs\": {},", queries.len());
    let _ = writeln!(json, "  \"single_ms\": {t_single:.1},");
    let _ = writeln!(json, "  \"sharded_ms\": {t_sharded:.1},");
    let _ = writeln!(json, "  \"sharded_over_single\": {ratio:.3},");
    let _ = writeln!(json, "  \"shard_fanout\": {fanout},");
    let _ = writeln!(json, "  \"full_slab_bytes\": {full_slab_bytes},");
    let _ = writeln!(json, "  \"peak_shard_slab_bytes\": {peak_shard_slab_bytes},");
    let _ = writeln!(json, "  \"peak_shard_slab_ratio\": {slab_ratio:.3},");
    let _ = writeln!(json, "  \"slack\": {slack}");
    let _ = writeln!(json, "}}");
    let path = repro_dir().join("BENCH_shard.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_shard.json");
    // Also drop a copy at the workspace root for discoverability.
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_shard.json", &json);
    }
    println!("[json] {}", path.display());
}
