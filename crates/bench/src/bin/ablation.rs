//! Ablation study over SmartPSI's design choices (beyond the paper's
//! own figures): which components buy what.
//!
//! Dimensions ablated:
//! * Model β (learned plans) on/off,
//! * prediction cache on/off,
//! * preemptive recovery on/off,
//! * super-optimistic candidate cap ∈ {off, 5, 10, 25},
//! * signature depth D ∈ {1, 2, 3} (affects pruning power and
//!   signature cost).
//!
//! All variants answer the same workload; the table reports wall time,
//! total steps, and the recovery counters. Answers are asserted equal
//! across variants (ablations must never change results).

use psi_bench::{time, ExperimentEnv, ResultTable};
use psi_core::obs::Counter;
use psi_core::{RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::PaperDataset;

fn main() {
    let env = ExperimentEnv::from_env();
    let g = env.dataset(PaperDataset::Youtube);
    eprintln!("[ablation] graph: |V|={} |E|={}", g.node_count(), g.edge_count());
    let Some(w) = env.workload(&g, 6) else {
        eprintln!("[ablation] cannot extract workload");
        return;
    };

    let base = SmartPsiConfig {
        min_candidates_for_ml: 20,
        ..SmartPsiConfig::web_scale()
    };
    let variants: Vec<(&str, SmartPsiConfig)> = vec![
        ("full", base.clone()),
        ("no-beta", SmartPsiConfig { enable_beta: false, ..base.clone() }),
        ("no-cache", SmartPsiConfig { enable_cache: false, ..base.clone() }),
        ("no-recovery", SmartPsiConfig { enable_recovery: false, ..base.clone() }),
        ("supercap-off", SmartPsiConfig { super_cap: usize::MAX, ..base.clone() }),
        ("supercap-5", SmartPsiConfig { super_cap: 5, ..base.clone() }),
        ("supercap-25", SmartPsiConfig { super_cap: 25, ..base.clone() }),
        ("depth-1", SmartPsiConfig { depth: 1, ..base.clone() }),
        ("depth-3", SmartPsiConfig { depth: 3, ..base.clone() }),
    ];

    let mut table = ResultTable::new(
        "ablation",
        &["variant", "wall_ms", "steps", "stage2", "stage3", "cache_hits"],
    );
    let mut reference: Option<Vec<Vec<u32>>> = None;
    for (name, cfg) in variants {
        let smart = SmartPsi::new(g.clone(), cfg);
        let mut steps = 0u64;
        let (answers, wall) = time(|| {
            let mut answers = Vec::new();
            let (mut s2, mut s3, mut hits) = (0usize, 0usize, 0usize);
            for q in &w.queries {
                let r = smart.run(q, &RunSpec::new());
                steps += r.steps;
                if let Some(p) = &r.profile {
                    s2 += p.counter(Counter::RecoveredS2) as usize;
                    s3 += p.counter(Counter::RecoveredS3) as usize;
                    hits += p.counter(Counter::CacheHits) as usize;
                }
                answers.push(r.valid);
            }
            (answers, s2, s3, hits)
        });
        let (answers, s2, s3, hits) = answers;
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(r, &answers, "{name} changed answers!"),
        }
        table.row(vec![
            name.into(),
            wall.as_millis().to_string(),
            steps.to_string(),
            s2.to_string(),
            s3.to_string(),
            hits.to_string(),
        ]);
        eprintln!("[ablation] {name} done");
    }
    println!(
        "\nAblation: SmartPSI component toggles on YouTube, size-6 queries ({} queries)",
        w.queries.len()
    );
    table.finish();
}
