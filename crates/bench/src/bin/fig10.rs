//! Figure 10 — SmartPSI vs. Optimistic-only vs. Pessimistic-only on the
//! Twitter dataset (10 queries per size in the paper).
//!
//! Paper's claims to reproduce: the fixed-strategy runners (which also
//! use only the heuristic plan) lose to SmartPSI and blow past the
//! limit at size 8, because each of them pays the wrong cost on half
//! the node population — the optimist on invalid nodes, the pessimist
//! on valid ones — while SmartPSI routes each node to the right method
//! and plan.

use psi_bench::{time, ExperimentEnv, ResultTable};
use psi_core::single::{psi_with_strategy_presig, RunOptions};
use psi_core::{EvalLimits, RunSpec, SmartPsi, SmartPsiConfig, Strategy};
use psi_datasets::PaperDataset;
use psi_signature::matrix_signatures;

fn main() {
    let env = ExperimentEnv::from_env();
    let queries = env.queries_per_size.min(10); // the paper uses 10 here
    let cap: u64 = std::env::var("PSI_REPRO_STEP_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000_000);
    let g = env.dataset(PaperDataset::Twitter);
    let sigs = matrix_signatures(&g, 2);
    let smart = SmartPsi::new(g.clone(), SmartPsiConfig::web_scale());
    let mut table = ResultTable::new(
        "fig10",
        &["size", "optimistic_ms", "pessimistic_ms", "smartpsi_ms", "opt_unresolved", "pes_unresolved"],
    );

    for size in 4..=8 {
        let Some(w) = psi_datasets::QueryWorkload::extract(&g, size, queries, env.seed + size as u64)
        else {
            continue;
        };
        let opts = RunOptions {
            limits: EvalLimits::steps(cap),
            ..RunOptions::default()
        };
        let (opt_unres, t_opt) = time(|| {
            let mut u = 0;
            for q in &w.queries {
                u += psi_with_strategy_presig(&g, &sigs, q, Strategy::optimistic(), &opts).unresolved;
            }
            u
        });
        let (pes_unres, t_pes) = time(|| {
            let mut u = 0;
            for q in &w.queries {
                u += psi_with_strategy_presig(&g, &sigs, q, Strategy::pessimistic(), &opts).unresolved;
            }
            u
        });
        let (_, t_smart) = time(|| {
            for q in &w.queries {
                let _ = smart.run(q, &RunSpec::new());
            }
        });
        table.row(vec![
            size.to_string(),
            t_opt.as_millis().to_string(),
            t_pes.as_millis().to_string(),
            t_smart.as_millis().to_string(),
            opt_unres.to_string(),
            pes_unres.to_string(),
        ]);
        eprintln!("[fig10] size {size} done");
    }
    println!("\nFigure 10: SmartPSI vs. fixed strategies on Twitter ({queries} queries/size)");
    table.finish();
}
