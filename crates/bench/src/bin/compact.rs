//! Compact-store bench — quantized [`SigStoreKind::Compact`] index vs.
//! the dense f32 matrix on a generated multi-million-node graph.
//! Writes `BENCH_compact.json`.
//!
//! PR 8's storage claim: on a wide label alphabet the u8-count +
//! presence-bitset store holds the *same* stage-1/2/3 pruning power in
//! a third of the dense matrix's bytes, and — because quantization is
//! monotone and saturation only ever *weakens* the filter — the final
//! valid sets are identical. The bench measures and asserts:
//!
//! * **memory** — `compact_bytes * 3 <= dense_bytes` on the 64-label
//!   bench graph (`|V| * (L + 8·⌈L/64⌉)` vs `|V| * 4L` bytes). This is
//!   deterministic, no slack needed. The ≤1/3 bound is a wide-alphabet
//!   property: a few-label graph pays the fixed 8-byte presence word
//!   per row and only beats dense, not a third of it.
//! * **throughput** — the compact engine's query wall over the job
//!   stream must stay within `PSI_COMPACT_SLACK` (default 1.5, CI uses
//!   2.0) of the dense engine's. Row dequantization costs a multiply
//!   per label, so parity is the bar, not speedup.
//! * **correctness** — every compact answer projection (valid set,
//!   candidate count, unresolved, failure nodes) must equal the dense
//!   engine's. A memory win with wrong answers is no win.
//!
//! `PSI_COMPACT_NODES` overrides the graph size (default 5,000,000)
//! for local smoke runs; the CI gate runs the default.
//!
//! [`SigStoreKind::Compact`]: psi_signature::SigStoreKind::Compact

use std::fmt::Write as _;

use psi_bench::{repro_dir, time, ResultTable};
use psi_core::{PsiResult, RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::QueryWorkload;
use psi_graph::{Graph, GraphBuilder};
use psi_signature::SigStoreKind;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Timing rounds per arm; the minimum is recorded.
const ROUNDS: usize = 2;
/// Bench graph: 5M nodes, ~10M edges. A wide alphabet is what the
/// compact store is built for — at 64 labels a row is 64 count bytes
/// plus exactly one presence word, 28% of the 256-byte f32 row — and
/// it keeps per-query candidate sets (≈ |V| / labels) bounded so the
/// stream is a serving workload rather than one giant scan.
const NODES: usize = 5_000_000;
const LABELS: u16 = 64;
/// Chord reach of the locality generator, in id distance.
const WINDOW: u32 = 64;

/// Same ring-with-chords generator as the shard bench: one random
/// short-range chord per node over a ring. Degrees stay small (~4), so
/// depth-2 signature weights sit far below the u8 saturation cap and
/// the quantized index is lossless — the regime where dense and
/// compact engines agree not just on verdicts but on every step.
fn locality_graph(nodes: usize, labels: u16, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(nodes, nodes * 2);
    for _ in 0..nodes {
        b.add_node(rng.gen_range(0..labels));
    }
    let n = nodes as u32;
    for i in 0..n {
        if i + 1 < n {
            b.add_edge(i, i + 1);
        }
        let j = rng.gen_range(i.saturating_sub(WINDOW)..=(i + WINDOW).min(n - 1));
        if j != i {
            b.add_edge(i, j);
        }
    }
    b.build().expect("valid bench graph")
}

/// The answer-projection both engines must agree on. Model training is
/// per-engine, and training changes cost, never verdicts — but on this
/// graph the quantized rows dequantize bit-exactly, so even the cost
/// side matches in practice.
fn projection(r: &PsiResult) -> (Vec<u32>, usize, usize, Vec<u32>) {
    (
        r.valid.clone(),
        r.candidates,
        r.unresolved,
        r.failures.nodes.iter().map(|f| f.node).collect(),
    )
}

fn main() {
    let slack: f64 = std::env::var("PSI_COMPACT_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);
    let nodes: usize = std::env::var("PSI_COMPACT_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(NODES);

    let (g, t_gen) = time(|| locality_graph(nodes, LABELS, 23));
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    };

    let (dense, t_dense_build) = time(|| SmartPsi::new(g.clone(), cfg.clone()));
    let (compact, t_compact_build) = time(|| {
        SmartPsi::new(
            g,
            SmartPsiConfig {
                sig_store: SigStoreKind::Compact,
                ..cfg
            },
        )
    });
    let g = dense.graph();

    let dense_bytes = dense.signatures().index_bytes();
    let compact_bytes = compact.signatures().index_bytes();
    assert!(
        compact_bytes * 3 <= dense_bytes,
        "the compact index must fit in a third of the dense matrix on a \
         {LABELS}-label graph: {compact_bytes} B vs {dense_bytes} B"
    );
    let bytes_ratio = compact_bytes as f64 / dense_bytes as f64;

    let queries = QueryWorkload::extract(g, 4, 8, 701)
        .expect("workload extraction on the bench graph")
        .queries;
    assert!(queries.len() >= 6, "need a real job stream, got {}", queries.len());
    eprintln!(
        "[compact] |V|={} |E|={} labels={} generated in {:.2?}; dense build {:.2?} \
         ({dense_bytes} B), compact build {:.2?} ({compact_bytes} B, {:.0}%), {} jobs",
        g.node_count(),
        g.edge_count(),
        g.label_count(),
        t_gen,
        t_dense_build,
        t_compact_build,
        bytes_ratio * 100.0,
        queries.len()
    );

    let mut t_dense = f64::MAX;
    let mut t_compact = f64::MAX;
    for _ in 0..ROUNDS {
        let (_, t) = time(|| {
            for q in &queries {
                let _ = dense.run(q, &RunSpec::new());
            }
        });
        t_dense = t_dense.min(t.as_secs_f64() * 1e3);

        let (_, t) = time(|| {
            for q in &queries {
                let _ = compact.run(q, &RunSpec::new());
            }
        });
        t_compact = t_compact.min(t.as_secs_f64() * 1e3);
    }

    // Untimed differential pass: compact answers against dense,
    // projection-compared.
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            projection(&dense.run(q, &RunSpec::new())),
            projection(&compact.run(q, &RunSpec::new())),
            "compact answer diverged from dense on query {i}"
        );
    }

    let ratio = t_compact / t_dense.max(1e-9);
    assert!(
        ratio <= slack,
        "the compact store fell behind the dense matrix: {t_compact:.1} ms vs \
         {t_dense:.1} ms ({ratio:.2}x > slack {slack})"
    );

    let mut table = ResultTable::new("compact", &["arm", "index_mb", "build_ms", "query_ms"]);
    table.row(vec![
        "dense f32".to_string(),
        format!("{:.1}", dense_bytes as f64 / 1e6),
        format!("{:.0}", t_dense_build.as_secs_f64() * 1e3),
        format!("{t_dense:.1}"),
    ]);
    table.row(vec![
        "compact u8+bitset".to_string(),
        format!("{:.1}", compact_bytes as f64 / 1e6),
        format!("{:.0}", t_compact_build.as_secs_f64() * 1e3),
        format!("{t_compact:.1}"),
    ]);
    table.finish();
    println!(
        "compact vs dense: {:.0}% index bytes, {ratio:.2}x query wall, answers identical",
        bytes_ratio * 100.0
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"experiment\": \"quantized compact signature store vs dense f32 matrix \
         ({nodes} nodes, {LABELS} labels, {} jobs, best of {ROUNDS} rounds)\",",
        queries.len()
    );
    let _ = writeln!(json, "  \"nodes\": {nodes},");
    let _ = writeln!(json, "  \"labels\": {LABELS},");
    let _ = writeln!(json, "  \"jobs\": {},", queries.len());
    let _ = writeln!(json, "  \"dense_index_bytes\": {dense_bytes},");
    let _ = writeln!(json, "  \"compact_index_bytes\": {compact_bytes},");
    let _ = writeln!(json, "  \"compact_over_dense_bytes\": {bytes_ratio:.3},");
    let _ = writeln!(json, "  \"dense_build_ms\": {:.1},", t_dense_build.as_secs_f64() * 1e3);
    let _ = writeln!(
        json,
        "  \"compact_build_ms\": {:.1},",
        t_compact_build.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "  \"dense_query_ms\": {t_dense:.1},");
    let _ = writeln!(json, "  \"compact_query_ms\": {t_compact:.1},");
    let _ = writeln!(json, "  \"compact_over_dense_wall\": {ratio:.3},");
    let _ = writeln!(json, "  \"answers_identical\": true,");
    let _ = writeln!(json, "  \"slack\": {slack}");
    let _ = writeln!(json, "}}");
    let path = repro_dir().join("BENCH_compact.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_compact.json");
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_compact.json", &json);
    }
    println!("[json] {}", path.display());
}
