//! Table 2 — TurboIso vs. TurboIso⁺ vs. SmartPSI on the Human dataset,
//! query sizes 4–7 (wall-clock per workload).
//!
//! Paper's claim to reproduce: TurboIso (full enumeration) is orders of
//! magnitude slower than TurboIso⁺ (pivot-seeded early stop), which is
//! in turn well behind SmartPSI.

use psi_bench::{fmt_duration, time, ExperimentEnv, ResultTable};
use psi_core::{RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::PaperDataset;
use psi_match::{psi_by_enumeration, turboiso::turboiso_plus_psi, Engine, SearchBudget};

fn main() {
    let env = ExperimentEnv::from_env();
    let cap: u64 = std::env::var("PSI_REPRO_STEP_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000_000); // per-query stand-in for the 24h limit
    let g = env.dataset(PaperDataset::Human);
    let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());

    let mut table = ResultTable::new("table2", &["system", "q4", "q5", "q6", "q7"]);
    let mut rows: Vec<Vec<String>> = vec![
        vec!["TurboIso".into()],
        vec!["TurboIso+".into()],
        vec!["SmartPSI".into()],
    ];

    for size in 4..=7 {
        let Some(w) = env.workload(&g, size) else {
            for r in rows.iter_mut() {
                r.push("-".into());
            }
            continue;
        };
        // TurboIso: full enumeration, then project.
        let (censored, t_turbo) = time(|| {
            let mut c = false;
            for q in &w.queries {
                let a = psi_by_enumeration(&Engine::TurboIso, &g, q, &SearchBudget::steps(cap));
                c |= a.outcome == psi_match::BudgetOutcome::Exhausted;
            }
            c
        });
        rows[0].push(format!(
            "{}{}",
            fmt_duration(t_turbo),
            if censored { " (capped)" } else { "" }
        ));
        // TurboIso⁺.
        let (_, t_plus) = time(|| {
            for q in &w.queries {
                let _ = turboiso_plus_psi(&g, q, &SearchBudget::unlimited());
            }
        });
        rows[1].push(fmt_duration(t_plus));
        // SmartPSI.
        let (_, t_smart) = time(|| {
            for q in &w.queries {
                let _ = smart.run(q, &RunSpec::new());
            }
        });
        rows[2].push(fmt_duration(t_smart));
        eprintln!("[table2] size {size} done");
    }
    for r in rows {
        table.row(r);
    }
    println!(
        "\nTable 2: PSI solutions on Human ({} queries/size; 'capped' = enumeration hit the step cap, like the paper's >24h cells)",
        env.queries_per_size
    );
    table.finish();
}
