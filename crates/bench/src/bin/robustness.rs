//! Robustness guard — the cost and the payoff of the fault-tolerance
//! layer (`BENCH_robustness.json`).
//!
//! Two questions, answered on the same synthetic workload:
//!
//! 1. **What does panic isolation cost when nothing goes wrong?** The
//!    `catch_unwind` boundary wraps every per-node evaluation, so it
//!    sits on the hottest loop in the engine. We time SmartPSI and the
//!    single-strategy pessimistic runner with isolation on and off
//!    (best of [`ROUNDS`] rounds each) and report the relative
//!    overhead. The budget is **< 5%**; the run prints a loud warning
//!    when an arm exceeds it.
//! 2. **What does the layer buy under faults?** A chaos arm re-runs
//!    the workload with a seeded [`FaultPlan`] (panics, spurious
//!    interrupts and budget burns at 5% each) and checks the valid
//!    sets against the clean run, recording how many faults were
//!    absorbed on the way to the identical answer.
//!
//! Results land in `BENCH_robustness.json` (in `target/repro/` and at
//! the workspace root), keyed so CI or a reviewer can diff them
//! against a previous run.

use std::fmt::Write as _;
use std::sync::Arc;

use psi_bench::{repro_dir, time, ResultTable};
use psi_core::single::{psi_with_strategy_presig, RunOptions};
use psi_core::{install_quiet_panic_hook, FaultPlan, RunSpec, SmartPsi, SmartPsiConfig, Strategy};
use psi_datasets::QueryWorkload;

/// Timing rounds per arm; the minimum is recorded.
const ROUNDS: usize = 5;

/// Relative clean-path overhead budget for panic isolation.
const OVERHEAD_TARGET_PCT: f64 = 5.0;

fn main() {
    // Dense enough that per-node evaluation dominates, small enough
    // that five rounds of every arm stay in seconds.
    let g = psi_datasets::generators::erdos_renyi(2_000, 9_000, 3, 17);
    let sigs = psi_signature::matrix_signatures(&g, 2);
    let mut queries = Vec::new();
    for size in 4..=6usize {
        if let Some(w) = QueryWorkload::extract(&g, size, 5, 90 + size as u64) {
            queries.extend(w.queries);
        }
    }
    eprintln!(
        "[robustness] |V|={} |E|={} labels=3, {} queries",
        g.node_count(),
        g.edge_count(),
        queries.len()
    );

    let mut table = ResultTable::new(
        "robustness_overhead",
        &["arm", "isolation_off_ms", "isolation_on_ms", "overhead_pct"],
    );
    let mut json_rows = String::new();

    // --- Arm 1a: single-strategy pessimistic runner -----------------
    // The leanest loop in the engine: signatures precomputed, no
    // training, one catch_unwind per candidate node when isolation is
    // on. This is the worst case for the boundary's relative cost.
    let run_single = |isolate: bool| {
        let opts = RunOptions {
            panic_isolation: isolate,
            ..RunOptions::default()
        };
        let mut total_valid = 0usize;
        for q in &queries {
            total_valid +=
                psi_with_strategy_presig(&g, &sigs, q, Strategy::pessimistic(), &opts)
                    .valid
                    .len();
        }
        total_valid
    };
    let (t_off, t_on, check) = best_of(ROUNDS, &run_single);
    push_arm(&mut table, &mut json_rows, "single_pessimistic", t_off, t_on);
    assert!(check > 0, "workload produced no valid bindings");

    // --- Arm 1b: SmartPSI sequential -------------------------------
    // Training + prediction amortize the boundary, so the overhead
    // here is what a deployment actually sees.
    let smart_off = SmartPsi::new(
        g.clone(),
        SmartPsiConfig {
            panic_isolation: false,
            ..SmartPsiConfig::default()
        },
    );
    let smart_on = SmartPsi::new(g.clone(), SmartPsiConfig::default());
    let run_smart = |isolate: bool| {
        let smart = if isolate { &smart_on } else { &smart_off };
        let mut total_valid = 0usize;
        for q in &queries {
            total_valid += smart.run(q, &RunSpec::new()).valid.len();
        }
        total_valid
    };
    let (t_off, t_on, _) = best_of(ROUNDS, &run_smart);
    push_arm(&mut table, &mut json_rows, "smartpsi", t_off, t_on);
    table.finish();

    // --- Arm 2: chaos run -------------------------------------------
    // Same workload, seeded fault plan. The answer must not move.
    install_quiet_panic_hook();
    let clean: Vec<_> = queries.iter().map(|q| smart_on.run(q, &RunSpec::new())).collect();
    let chaotic = SmartPsi::new(
        g.clone(),
        SmartPsiConfig {
            fault: Some(Arc::new(FaultPlan::seeded(7, 0.05, 0.05, 0.05))),
            ..SmartPsiConfig::default()
        },
    );
    let mut mismatches = 0usize;
    let mut panics = 0u64;
    let mut escalations = 0u64;
    let mut failed_nodes = 0usize;
    let mut unresolved = 0usize;
    let (_, t_chaos) = time(|| {
        for (q, base) in queries.iter().zip(&clean) {
            let r = chaotic.run(q, &RunSpec::new());
            if r.valid != base.valid {
                mismatches += 1;
            }
            panics += r.failures.panics_recovered;
            escalations += r.failures.escalations;
            failed_nodes += r.failures.len();
            unresolved += r.unresolved;
        }
    });
    println!(
        "chaos: {} queries, {} panics recovered, {} escalations, {} failed nodes, \
         {} unresolved, {} answer mismatches, {:.1} ms",
        queries.len(),
        panics,
        escalations,
        failed_nodes,
        unresolved,
        mismatches,
        t_chaos.as_secs_f64() * 1e3
    );
    assert_eq!(mismatches, 0, "chaos run changed a valid set");
    assert_eq!(failed_nodes, 0, "recoverable faults left failed nodes");
    assert_eq!(unresolved, 0, "chaos run left unresolved candidates");
    assert!(panics + escalations > 0, "fault plan injected nothing");

    let json = format!(
        "{{\n  \"experiment\": \"robustness guard (panic-isolation overhead, best of \
         {ROUNDS} rounds; seeded chaos run)\",\n  \
         \"overhead_target_pct\": {OVERHEAD_TARGET_PCT},\n  \
         \"overhead\": [\n{}\n  ],\n  \
         \"chaos\": {{\"seed\": 7, \"rates\": 0.05, \"queries\": {}, \
         \"panics_recovered\": {panics}, \"budget_escalations\": {escalations}, \
         \"failed_nodes\": {failed_nodes}, \"unresolved\": {unresolved}, \
         \"answer_mismatches\": {mismatches}, \"total_ms\": {:.1}}}\n}}\n",
        json_rows.trim_end().trim_end_matches(','),
        queries.len(),
        t_chaos.as_secs_f64() * 1e3,
    );
    let path = repro_dir().join("BENCH_robustness.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_robustness.json");
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_robustness.json", &json);
    }
    println!("[json] {}", path.display());
}

/// Run `f(false)` and `f(true)` `rounds` times interleaved, returning
/// the best wall-clock for each plus `f`'s (arm-independent) result.
fn best_of(rounds: usize, f: &dyn Fn(bool) -> usize) -> (f64, f64, usize) {
    let mut t_off = f64::MAX;
    let mut t_on = f64::MAX;
    let mut out = 0usize;
    for _ in 0..rounds {
        let (a, t) = time(|| f(false));
        t_off = t_off.min(t.as_secs_f64() * 1e3);
        let (b, t) = time(|| f(true));
        t_on = t_on.min(t.as_secs_f64() * 1e3);
        assert_eq!(a, b, "panic isolation changed a clean-path answer");
        out = b;
    }
    (t_off, t_on, out)
}

fn push_arm(table: &mut ResultTable, json_rows: &mut String, arm: &str, t_off: f64, t_on: f64) {
    let overhead = (t_on - t_off) / t_off.max(1e-9) * 100.0;
    table.row(vec![
        arm.into(),
        format!("{t_off:.1}"),
        format!("{t_on:.1}"),
        format!("{overhead:+.2}"),
    ]);
    let _ = writeln!(
        json_rows,
        "    {{\"arm\": \"{arm}\", \"isolation_off_ms\": {t_off:.1}, \
         \"isolation_on_ms\": {t_on:.1}, \"overhead_pct\": {overhead:.2}}},",
    );
    if overhead > OVERHEAD_TARGET_PCT {
        eprintln!(
            "[robustness] WARNING: {arm} isolation overhead {overhead:.2}% exceeds \
             the {OVERHEAD_TARGET_PCT}% budget"
        );
    }
}
