//! Observability overhead guard — what the PR-3 instrumentation layer
//! costs (`BENCH_profile.json`).
//!
//! The [`psi_core::obs::Recorder`] seam sits on every phase of every
//! executor: the training loop, each per-node match attempt, the
//! merge. Its contract is that the default no-op recorder compiles
//! away — `enabled()` is `false`, so no clock is read and no counter
//! is touched — and costs **< 3%** against the pre-instrumentation
//! engine. That baseline binary no longer exists (every entry point
//! now routes through the seam), so the guard measures the seam
//! itself: a spin workload calibrated to the engine's *measured* mean
//! per-node cost is run bare, then wrapped in the exact per-node
//! instrumentation pattern (three [`timed`] spans, six counter bumps,
//! one histogram sample) on a [`NoopRecorder`]. The difference is the
//! seam's whole contribution to the clean path, and it is asserted
//! under the 3% budget.
//!
//! Attaching a [`MetricsRecorder`] is *opt-in per query* and pays for
//! real clock reads and atomics; the guard measures that too at the
//! engine level and reports it in the JSON (informational — the
//! budget applies to the clean path).
//!
//! The run also writes the last query's full [`QueryProfile`] into
//! the JSON and pretty-prints its phase table, so the artifact
//! doubles as a living example of the profiling output.

use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;

use psi_bench::{repro_dir, time, ResultTable};
use psi_core::obs::{timed, Counter, Histogram, MetricsRecorder, NoopRecorder, Phase, QueryProfile, Recorder};
use psi_core::{RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::QueryWorkload;

/// Timing rounds per arm; the minimum is recorded.
const ROUNDS: usize = 8;

/// Relative overhead budget for the no-op recorder seam on the clean
/// path (ISSUE 3 acceptance criterion).
const OVERHEAD_TARGET_PCT: f64 = 3.0;

/// Deterministic integer spin — stands in for one node's match work.
fn spin(iters: u64) -> u64 {
    let mut x = 0u64;
    for i in 0..black_box(iters) {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    black_box(x)
}

/// One node's worth of seam traffic around `iters` of work: the
/// pattern the engine emits per candidate (predict span + stage-1
/// span + a stage-2 retry, counter bumps, one histogram sample).
fn spin_with_seam(rec: &dyn Recorder, iters: u64) -> u64 {
    let a = timed(rec, Phase::Predict, || spin(iters / 3));
    let b = timed(rec, Phase::MatchS1, || spin(iters / 3));
    let c = timed(rec, Phase::MatchS2, || spin(iters - 2 * (iters / 3)));
    rec.add(Counter::Candidates, 1);
    rec.add(Counter::ResolvedS1, 1);
    rec.add(Counter::Steps, iters);
    rec.add(Counter::CacheHits, 1);
    rec.add(Counter::MlInferences, 2);
    rec.add(Counter::PredictedValid, 1);
    rec.observe(Histogram::StepsPerNode, iters);
    a ^ b ^ c
}

fn main() {
    // Same shape as the robustness guard: dense enough that per-node
    // evaluation dominates, small enough that all rounds stay in
    // seconds.
    let g = psi_datasets::generators::erdos_renyi(2_000, 12_000, 3, 17);
    let mut queries = Vec::new();
    for size in 5..=7usize {
        if let Some(w) = QueryWorkload::extract(&g, size, 5, 90 + size as u64) {
            queries.extend(w.queries);
        }
    }
    eprintln!(
        "[profile] |V|={} |E|={} labels=3, {} queries",
        g.node_count(),
        g.edge_count(),
        queries.len()
    );
    let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());

    // ------------------------------------------------------------------
    // Engine-level measurement: clean path (no recorder) vs a live
    // MetricsRecorder per query. This prices *opt-in profiling*, and
    // yields the mean per-node cost that calibrates the seam bench.
    // ------------------------------------------------------------------
    let noop_spec = RunSpec::new();
    let mut last_profile: Option<QueryProfile> = None;
    let mut t_clean = f64::MAX;
    let mut t_profiled = f64::MAX;
    let mut candidates_total = 0usize;
    let mut check = (0usize, 0usize);
    for _ in 0..ROUNDS {
        // Interleave the arms so drift (thermal, scheduler) hits both.
        let (a, t) = time(|| {
            let mut total = 0usize;
            for q in &queries {
                let r = smart.run(q, &noop_spec);
                candidates_total += r.candidates;
                total += r.count();
            }
            total
        });
        t_clean = t_clean.min(t.as_secs_f64() * 1e3);
        let (b, t) = time(|| {
            let mut total = 0usize;
            for q in &queries {
                let spec = RunSpec::new().recorder(Arc::new(MetricsRecorder::new()));
                let r = smart.run(q, &spec);
                total += r.count();
                if let Some(p) = r.profile {
                    last_profile = Some(*p);
                }
            }
            total
        });
        t_profiled = t_profiled.min(t.as_secs_f64() * 1e3);
        check = (a, b);
    }
    assert_eq!(check.0, check.1, "profiling changed an answer");
    assert!(check.0 > 0, "workload produced no valid bindings");
    candidates_total /= ROUNDS;
    let profiled_overhead = (t_profiled - t_clean) / t_clean.max(1e-9) * 100.0;

    // ------------------------------------------------------------------
    // Seam measurement: the same per-node seam traffic the engine
    // emits, on a NoopRecorder, around work calibrated to the mean
    // per-node cost just measured. The difference vs the bare spin is
    // everything the clean path pays for being instrumented.
    // ------------------------------------------------------------------
    let node_ns = t_clean * 1e6 / candidates_total.max(1) as f64;
    // Calibrate spin iterations to one node's worth of nanoseconds.
    let (_, probe) = time(|| spin(1 << 22));
    let ns_per_iter = probe.as_secs_f64() * 1e9 / (1 << 22) as f64;
    let iters = ((node_ns / ns_per_iter) as u64).max(64);
    let reps = (40_000_000.0 / node_ns.max(1.0)) as u64; // ~40ms per arm
    eprintln!(
        "[profile] seam bench: {node_ns:.0}ns/node -> {iters} spin iters x {reps} reps"
    );
    let noop = NoopRecorder;
    let mut t_bare = f64::MAX;
    let mut t_seam = f64::MAX;
    for _ in 0..ROUNDS {
        let (_, t) = time(|| {
            let mut acc = 0u64;
            for _ in 0..reps {
                acc ^= spin(iters);
            }
            acc
        });
        t_bare = t_bare.min(t.as_secs_f64() * 1e3);
        let (_, t) = time(|| {
            let mut acc = 0u64;
            for _ in 0..reps {
                acc ^= spin_with_seam(&noop, iters);
            }
            acc
        });
        t_seam = t_seam.min(t.as_secs_f64() * 1e3);
    }
    let seam_overhead = (t_seam - t_bare) / t_bare.max(1e-9) * 100.0;

    let mut table = ResultTable::new(
        "profile_overhead",
        &["arm", "best_ms", "overhead_pct"],
    );
    table.row(vec!["bare_node_work".into(), format!("{t_bare:.1}"), "0.00".into()]);
    table.row(vec![
        "noop_seam".into(),
        format!("{t_seam:.1}"),
        format!("{seam_overhead:+.2}"),
    ]);
    table.row(vec!["engine_clean".into(), format!("{t_clean:.1}"), "0.00".into()]);
    table.row(vec![
        "engine_profiled".into(),
        format!("{t_profiled:.1}"),
        format!("{profiled_overhead:+.2}"),
    ]);
    table.finish();

    let sample = last_profile.expect("profiled arm attaches a profile to every result");
    assert!(sample.reconciles(), "sample profile violates the accounting identity");
    println!("\nlast query's phase table:\n{sample}");

    let mut json = String::new();
    let _ = writeln!(
        json,
        "{{\n  \"experiment\": \"observability overhead guard (no-op seam asserted < {OVERHEAD_TARGET_PCT}%; \
         enabled MetricsRecorder priced for reference; best of {ROUNDS} interleaved rounds)\",\n  \
         \"overhead_target_pct\": {OVERHEAD_TARGET_PCT},\n  \
         \"noop_seam_overhead_pct\": {seam_overhead:.2},\n  \
         \"bare_ms\": {t_bare:.1},\n  \
         \"noop_seam_ms\": {t_seam:.1},\n  \
         \"engine_clean_ms\": {t_clean:.1},\n  \
         \"engine_profiled_ms\": {t_profiled:.1},\n  \
         \"profiled_overhead_pct\": {profiled_overhead:.2},\n  \
         \"mean_node_ns\": {node_ns:.0},\n  \
         \"queries\": {},\n  \
         \"sample_profile\": {}\n}}",
        queries.len(),
        sample.to_json(),
    );
    let path = repro_dir().join("BENCH_profile.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_profile.json");
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_profile.json", &json);
    }
    println!("[json] {}", path.display());

    assert!(
        seam_overhead < OVERHEAD_TARGET_PCT,
        "no-op seam overhead {seam_overhead:.2}% exceeds the {OVERHEAD_TARGET_PCT}% budget"
    );
    println!(
        "[profile] no-op seam {seam_overhead:+.2}% is within the {OVERHEAD_TARGET_PCT}% budget \
         (enabled recorder: {profiled_overhead:+.2}%, opt-in per query)"
    );
}
