//! Figure 8 — exploration-based vs. matrix-based neighborhood-signature
//! construction time on all six datasets.
//!
//! Paper's claim to reproduce: both costs grow with graph size, but the
//! exploration method (per-node BFS, `O(|N|·|L|·d^D)`) blows up on the
//! large dense graphs while the matrix method (`O(|N|·|L|·d·D)`) stays
//! orders of magnitude cheaper — in the paper, exploration cannot even
//! finish Twitter within 24 hours.

use psi_bench::{fmt_duration, time, ExperimentEnv, ResultTable};
use psi_datasets::PaperDataset;
use psi_signature::{exploration_signatures, matrix_signatures, DEFAULT_DEPTH};

fn main() {
    let env = ExperimentEnv::from_env();
    let mut table = ResultTable::new(
        "fig8",
        &["dataset", "nodes", "edges", "exploration_ms", "matrix_ms", "speedup"],
    );
    for d in PaperDataset::ALL {
        let g = env.dataset(d);
        let (ex, t_ex) = time(|| exploration_signatures(&g, DEFAULT_DEPTH));
        let (mx, t_mx) = time(|| matrix_signatures(&g, DEFAULT_DEPTH));
        assert_eq!(ex.node_count(), mx.node_count());
        table.row(vec![
            d.name().into(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            t_ex.as_millis().to_string(),
            t_mx.as_millis().to_string(),
            format!("{:.1}x", t_ex.as_secs_f64() / t_mx.as_secs_f64().max(1e-9)),
        ]);
        eprintln!(
            "[fig8] {}: exploration {}, matrix {}",
            d.name(),
            fmt_duration(t_ex),
            fmt_duration(t_mx)
        );
    }
    println!("\nFigure 8: signature construction time per dataset (D = {DEFAULT_DEPTH})");
    table.finish();
}
