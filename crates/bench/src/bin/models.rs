//! §5.4 "Machine Learning Models" — Random Forest vs. SVM vs. Neural
//! Network on the node-type classification task.
//!
//! Builds the real Model-α training problem: for a batch of queries on
//! a Human-like graph, label every candidate node valid/invalid by
//! exact PSI evaluation, use the node's neighborhood signature as its
//! feature vector, and compare the three model families on held-out
//! accuracy and model build+predict time.
//!
//! Paper's claims to reproduce: RF is the most accurate (≈95% vs. ≈90%
//! SVM and ≈92% NN on Human) and about 2× faster to build/predict.

use psi_bench::{time, ExperimentEnv, ResultTable};
use psi_core::evaluator::{NodeEvaluator, QueryContext};
use psi_core::plan::heuristic_plan;
use psi_core::single::pivot_candidates;
use psi_core::{EvalLimits, Strategy, Verdict};
use psi_datasets::PaperDataset;
use psi_ml::forest::RandomForest;
use psi_ml::mlp::Mlp;
use psi_ml::svm::LinearSvm;
use psi_ml::{accuracy, Classifier, Dataset};
use psi_signature::matrix_signatures;

fn main() {
    let env = ExperimentEnv::from_env();
    let g = env.dataset(PaperDataset::Human);
    let sigs = matrix_signatures(&g, 2);
    let mut ev = NodeEvaluator::new(&g, &sigs);

    // Assemble the labeled dataset over several queries.
    let mut ds = Dataset::new(sigs.label_count());
    for size in 4..=6usize {
        let Some(w) = env.workload(&g, size) else { continue };
        for q in w.queries.iter().take(4) {
            let ctx = QueryContext::new(q.clone(), 2);
            let plan = ctx.compile(&heuristic_plan(&g, q));
            for u in pivot_candidates(&g, q).into_iter().take(800) {
                let (v, _) =
                    ev.evaluate(&ctx, &plan, u, Strategy::pessimistic(), &EvalLimits::unlimited());
                ds.push(sigs.row(u), (v == Verdict::Valid) as usize);
            }
        }
    }
    let hist = ds.class_histogram();
    println!(
        "node-type dataset: {} rows, {} features, class balance {:?}",
        ds.len(),
        ds.dim(),
        hist
    );
    let (train, test) = ds.split(0.3, env.seed);

    let mut table = ResultTable::new(
        "models",
        &["model", "accuracy", "fit_ms", "predict_ms"],
    );
    let mut bench = |name: &str, model: &mut dyn Classifier| {
        let (_, t_fit) = time(|| model.fit(&train, env.seed));
        let (preds, t_pred) = time(|| {
            (0..test.len())
                .map(|i| model.predict(test.row(i)))
                .collect::<Vec<_>>()
        });
        let acc = accuracy(&preds, test.labels());
        table.row(vec![
            name.into(),
            format!("{:.1}%", acc * 100.0),
            t_fit.as_millis().to_string(),
            t_pred.as_millis().to_string(),
        ]);
        eprintln!("[models] {name}: {:.1}%", acc * 100.0);
    };

    bench("RandomForest", &mut RandomForest::default());
    bench("LinearSVM", &mut LinearSvm::default());
    bench("NeuralNet(MLP)", &mut Mlp::default());

    println!("\n§5.4: model comparison on the Model-α task (Human-like graph)");
    table.finish();
}
