//! Figure 7 — query performance of SmartPSI vs. state-of-the-art
//! subgraph-isomorphism systems (CFL-Match, TurboIso, TurboIso⁺) on
//! Yeast, Cora and Human, query sizes 4–10.
//!
//! Paper's claims to reproduce: (i) on the smallest/easiest setting the
//! enumeration systems can win at size 4; (ii) their cost explodes with
//! query size while SmartPSI stays flat, crossing over by one to two
//! orders of magnitude at large sizes; (iii) on the dense Human graph
//! the enumerators hit the time cap where SmartPSI completes everything.

use psi_bench::{render_grouped_bars, time, ExperimentEnv, ResultTable, Series};
use psi_core::{RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::PaperDataset;
use psi_match::{psi_by_enumeration, turboiso::turboiso_plus_psi, Engine, SearchBudget};

fn main() {
    let env = ExperimentEnv::from_env();
    let cap: u64 = std::env::var("PSI_REPRO_STEP_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000_000);
    let mut table = ResultTable::new(
        "fig7",
        &["dataset", "size", "cflmatch_ms", "turboiso_ms", "turboiso_plus_ms", "smartpsi_ms"],
    );

    for d in PaperDataset::SMALL {
        let g = env.dataset(d);
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
        let mut xs: Vec<String> = Vec::new();
        let mut series = vec![
            Series { name: "CFL-Match".into(), values: Vec::new() },
            Series { name: "TurboIso".into(), values: Vec::new() },
            Series { name: "TurboIso+".into(), values: Vec::new() },
            Series { name: "SmartPSI".into(), values: Vec::new() },
        ];
        for size in 4..=10 {
            let Some(w) = env.workload(&g, size) else { continue };
            let budget = SearchBudget::steps(cap);
            let (_, t_cfl) = time(|| {
                for q in &w.queries {
                    let _ = psi_by_enumeration(&Engine::CflMatch, &g, q, &budget);
                }
            });
            let (_, t_turbo) = time(|| {
                for q in &w.queries {
                    let _ = psi_by_enumeration(&Engine::TurboIso, &g, q, &budget);
                }
            });
            let (_, t_plus) = time(|| {
                for q in &w.queries {
                    let _ = turboiso_plus_psi(&g, q, &budget);
                }
            });
            let (_, t_smart) = time(|| {
                for q in &w.queries {
                    let _ = smart.run(q, &RunSpec::new());
                }
            });
            table.row(vec![
                d.name().into(),
                size.to_string(),
                t_cfl.as_millis().to_string(),
                t_turbo.as_millis().to_string(),
                t_plus.as_millis().to_string(),
                t_smart.as_millis().to_string(),
            ]);
            xs.push(format!("query size {size}"));
            for (s, t) in series.iter_mut().zip([t_cfl, t_turbo, t_plus, t_smart]) {
                s.values.push(Some(t.as_millis() as f64));
            }
            eprintln!("[fig7] {} size {size} done", d.name());
        }
        println!("{}", render_grouped_bars(&format!("Figure 7({}): total ms per workload", d.name()), &xs, &series, 48));
    }
    println!(
        "\nFigure 7: per-workload wall time (ms, {} queries/size; enumerators capped at {} steps/query)",
        env.queries_per_size, cap
    );
    table.finish();
}
