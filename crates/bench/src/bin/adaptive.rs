//! Adaptive serving bench — online α/β adaptation vs a frozen
//! deployment on a drifting query stream. Writes `BENCH_adaptive.json`.
//!
//! PR 10's claim: a serving deployment that feeds per-query outcomes
//! back into pooled α/β refits must beat the frozen convention (fit a
//! tiny per-query sample, serve it, forget it) once the workload
//! drifts. The stream here makes drift literal: mid-stream, an
//! `apply_update` batch grows the graph with a skewed population of
//! new nodes (label shift — the new candidates' validity distribution
//! differs from the population every pre-drift model saw), then the
//! same query shapes keep arriving.
//!
//! Two evolving single-service deployments serve the identical stream
//! serially (submit, wait, repeat — the deterministic regime):
//!
//! * **frozen** — per-query training only, the pre-PR-10 behavior.
//!   `RunSpec::feedback(true)` harvests its rows purely for metrics.
//! * **adaptive** — `DeploymentSpec::adaptive(cadence, ε)`: per-query
//!   feedback accumulates in a bounded reservoir, pooled forests refit
//!   every `cadence` queries, an ε fraction of queries explores the
//!   non-predicted method, and the drift update opens a forced refit
//!   window on the post-drift epoch.
//!
//! Both arms run a deliberately weak per-query fit (web-scale training
//! ratio, 8-node cap) — the regime the adaptation loop exists for:
//! each query alone sees too few labeled nodes, while the pooled
//! reservoir sees thousands of ground-truth rows of the same graph.
//!
//! Post-drift, the run scores each arm's **method-prediction
//! accuracy** — a non-explored row predicts correctly iff
//! `(method == optimistic) == valid`, exactly Model α's objective —
//! and **total steps**. It *asserts* (slack via `PSI_ADAPTIVE_SLACK`,
//! default 1.05) that the adaptive arm beats the frozen arm on both,
//! and that verdicts stay bit-identical between the arms on every
//! query (adaptation moves prediction quality, never exactness).

use std::fmt::Write as _;

use psi_bench::{repro_dir, ResultTable};
use psi_core::{DeploymentSpec, PsiService, RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::{generators, QueryWorkload};
use psi_graph::{GraphUpdate, PivotedQuery, UNLABELED_EDGE};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Queries served before the drift update.
const PRE_DRIFT: usize = 60;
/// Queries served (and scored) after the drift update.
const POST_DRIFT: usize = 150;
/// Nodes the drift batch appends (all one label — the shift).
const DRIFT_NODES: usize = 600;
/// Edges wiring the appended nodes into the graph.
const DRIFT_EDGES: usize = 2_400;
/// Refit cadence of the adaptive arm.
const CADENCE: u64 = 16;
/// Exploration floor of the adaptive arm. Deliberately modest: an
/// explored query forces one uniform method on *every* candidate, and
/// a forced optimist on an invalid-heavy candidate set is the priciest
/// misprediction there is — 2% keeps the feedback unbiased without
/// burning the steps the refits save.
const EPSILON: f64 = 0.02;

/// Post-drift tallies of one arm.
#[derive(Default)]
struct Tally {
    predicted: u64,
    correct: u64,
    steps: u64,
    explored: u64,
}

impl Tally {
    fn accuracy(&self) -> f64 {
        self.correct as f64 / self.predicted.max(1) as f64
    }
}

/// Serve the full drifting stream on one deployment, scoring the
/// post-drift phase. Serial submission keeps the adaptation loop (ε
/// draws, refit points) deterministic.
fn run_stream(
    service: &PsiService,
    queries: &[PivotedQuery],
    order: &[usize],
    drift: &[GraphUpdate],
) -> (Tally, Vec<Vec<u32>>) {
    let spec = RunSpec::new().feedback(true);
    for &i in &order[..PRE_DRIFT] {
        let _ = service.submit(queries[i].clone(), spec.clone()).wait();
    }
    service.apply_update(drift).expect("evolving deployment");
    let mut tally = Tally::default();
    let mut verdicts = Vec::with_capacity(POST_DRIFT);
    for &i in &order[PRE_DRIFT..] {
        let r = service.submit(queries[i].clone(), spec.clone()).wait();
        tally.steps += r.steps;
        for row in &r.feedback {
            if row.explored {
                tally.explored += 1;
                continue;
            }
            tally.predicted += 1;
            // Model α's objective: optimistic (method 0) iff valid.
            if (row.method == 0) == row.valid {
                tally.correct += 1;
            }
        }
        verdicts.push(r.valid);
    }
    (tally, verdicts)
}

fn main() {
    let slack: f64 = std::env::var("PSI_ADAPTIVE_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.05);

    // A sparse 4-label ER graph keeps the post-drift survivor
    // population near-balanced between valid and invalid candidates,
    // so neither arm's method mix dominates on raw step price and the
    // comparison measures prediction quality, not population skew.
    let g = generators::erdos_renyi(2_000, 6_000, 4, 7);
    // The weak-per-query regime: the paper's web-scale training ratio,
    // capped at 8 labeled nodes per query — each query's own α is
    // noisy, so the pooled refit has something to win.
    let cfg = SmartPsiConfig {
        max_train_nodes: 8,
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::web_scale()
    };
    let smart = SmartPsi::new(g.clone(), cfg);

    // One query size: feedback features carry no query-shape
    // information, so a homogeneous shape population is the workload
    // pooling is designed for (a mixed-size stream would want
    // per-shape reservoirs — out of scope here).
    let queries: Vec<PivotedQuery> = QueryWorkload::extract(&g, 6, 8, 44)
        .map(|w| w.queries)
        .unwrap_or_default();
    assert!(queries.len() >= 6, "need a shape mix, got {}", queries.len());

    // One deterministic stream both arms serve identically.
    let mut rng = StdRng::seed_from_u64(0xad_a9);
    let order: Vec<usize> = (0..PRE_DRIFT + POST_DRIFT)
        .map(|_| rng.gen_range(0..queries.len()))
        .collect();

    // The drift batch: a skewed population of new label-0 nodes wired
    // randomly into old and new nodes. Label 0's candidate set grows
    // ~30% with a degree/signature distribution unlike anything the
    // pre-drift stream produced.
    let n0 = g.node_count() as u32;
    let mut drift: Vec<GraphUpdate> =
        (0..DRIFT_NODES).map(|_| GraphUpdate::AddNode { label: 0 }).collect();
    for _ in 0..DRIFT_EDGES {
        let u = n0 + rng.gen_range(0..DRIFT_NODES as u32);
        let v = rng.gen_range(0..n0 + DRIFT_NODES as u32);
        if u != v {
            drift.push(GraphUpdate::AddEdge { u, v, label: UNLABELED_EDGE });
        }
    }

    eprintln!(
        "[adaptive] |V|={} |E|={}, {} shapes, {} pre-drift + {} post-drift jobs, \
         drift adds {DRIFT_NODES} nodes / ~{DRIFT_EDGES} edges",
        g.node_count(),
        g.edge_count(),
        queries.len(),
        PRE_DRIFT,
        POST_DRIFT
    );

    let frozen = smart
        .deploy(&DeploymentSpec::new().workers(2).evolving(4))
        .into_service();
    let (f, frozen_verdicts) = run_stream(&frozen, &queries, &order, &drift);
    drop(frozen);

    let adaptive = smart
        .deploy(&DeploymentSpec::new().workers(2).evolving(4).adaptive(CADENCE, EPSILON))
        .into_service();
    let (a, adaptive_verdicts) = run_stream(&adaptive, &queries, &order, &drift);
    let stats = adaptive.adaptive_stats().expect("adaptive deployment");
    drop(adaptive);

    // Exactness first: adaptation must never move a verdict.
    assert_eq!(
        frozen_verdicts, adaptive_verdicts,
        "adaptive deployment changed post-drift verdicts"
    );
    assert!(stats.refits > 0, "the stream must trigger refits: {stats:?}");
    assert_eq!(stats.epoch, 1, "one drift epoch: {stats:?}");

    let mut table = ResultTable::new(
        "adaptive",
        &["arm", "post_drift_accuracy", "post_drift_steps", "explored_rows"],
    );
    for (arm, t) in [("frozen", &f), ("adaptive", &a)] {
        table.row(vec![
            arm.into(),
            format!("{:.4}", t.accuracy()),
            format!("{}", t.steps),
            format!("{}", t.explored),
        ]);
    }
    table.finish();
    println!(
        "adaptive vs frozen post-drift: accuracy {:.4} vs {:.4}, steps {} vs {} \
         ({} refits, {} exploration runs, {} pooled rows)",
        a.accuracy(),
        f.accuracy(),
        a.steps,
        f.steps,
        stats.refits,
        stats.exploration_runs,
        stats.feedback_samples
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"experiment\": \"online alpha/beta adaptation vs frozen serving on a drifting \
         stream ({PRE_DRIFT}+{POST_DRIFT} jobs, drift = {DRIFT_NODES} skewed nodes)\","
    );
    let _ = writeln!(json, "  \"cadence\": {CADENCE},");
    let _ = writeln!(json, "  \"epsilon\": {EPSILON},");
    let _ = writeln!(json, "  \"frozen_accuracy\": {:.4},", f.accuracy());
    let _ = writeln!(json, "  \"adaptive_accuracy\": {:.4},", a.accuracy());
    let _ = writeln!(json, "  \"frozen_steps\": {},", f.steps);
    let _ = writeln!(json, "  \"adaptive_steps\": {},", a.steps);
    let _ = writeln!(json, "  \"refits\": {},", stats.refits);
    let _ = writeln!(json, "  \"exploration_runs\": {},", stats.exploration_runs);
    let _ = writeln!(json, "  \"feedback_samples\": {},", stats.feedback_samples);
    let _ = writeln!(json, "  \"slack\": {slack}");
    let _ = writeln!(json, "}}");
    let path = repro_dir().join("BENCH_adaptive.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_adaptive.json");
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_adaptive.json", &json);
    }
    println!("[json] {}", path.display());

    // The CI gates: post-drift, pooled models must predict methods
    // better and spend fewer steps than frozen per-query fits
    // (PSI_ADAPTIVE_SLACK loosens both for noisy machines).
    assert!(
        a.accuracy() * slack >= f.accuracy(),
        "adaptive accuracy {:.4} lost to frozen {:.4} (slack {slack})",
        a.accuracy(),
        f.accuracy()
    );
    assert!(
        a.steps as f64 <= f.steps as f64 * slack,
        "adaptive steps {} regressed past frozen {} (slack {slack})",
        a.steps,
        f.steps
    );
    println!("adaptive: beats frozen post-drift within slack {slack} — PASS");
}
