//! Serve bench — persistent [`PsiService`] vs. per-query scoped pools
//! on a shuffled query stream. Writes `BENCH_serve.json`.
//!
//! PR 4's throughput claim: once the engine layers share an immutable
//! [`GraphContext`], a long-lived worker pool with a submission queue
//! must beat spawning a fresh work-stealing pool inside every
//! `SmartPsi::run` call. Three arms over the same ≥64-job batch
//! (16 distinct query shapes, each submitted several times, order
//! shuffled):
//!
//! * **sequential** — one `RunSpec::new()` run per job, no threads;
//!   the reference answer set and a floor for the comparison.
//! * **scoped pools** — `RunSpec::new().threads(W)` per job: the
//!   pre-PR-4 calling convention, paying pool spawn/join and a cold
//!   prediction cache on every job. The spawn bill is also measured
//!   separately (sum of `Phase::PoolSpawn` spans over a recorded
//!   pass), matching the `pool_spawn_ms` column in
//!   `BENCH_parallel.json`.
//! * **service** — one deployed `PsiService` pool for the whole batch:
//!   spawn once, queue jobs, share a cross-query prediction cache
//!   keyed by query shape.
//!
//! The run *asserts* (with slack for scheduler noise, tunable via
//! `PSI_SERVE_SLACK`) that the service arm is at least as fast as the
//! scoped-pool arm, so `ci.sh` fails if the persistent service ever
//! regresses below the per-query convention it exists to replace. It
//! also cross-checks every service answer against the sequential
//! reference — a throughput win with wrong answers is no win.
//!
//! Setting `PSI_ADAPT_CADENCE` (queries per refit) and/or
//! `PSI_ADAPT_EPSILON` (exploration floor in `[0,1]`) turns the online
//! α/β adaptation loop on for the service arm. Adaptation keeps
//! verdicts exact, so the correctness cross-check still compares valid
//! sets — but costs legitimately drift from the frozen reference, so
//! the bit-identity comparison relaxes to verdict identity.
//!
//! [`PsiService`]: psi_core::PsiService
//! [`GraphContext`]: psi_core::GraphContext

use std::fmt::Write as _;
use std::sync::Arc;

use psi_bench::{repro_dir, time, ResultTable};
use psi_core::obs::{MetricsRecorder, Phase};
use psi_core::{DeploymentSpec, RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::{generators, QueryWorkload};
use psi_graph::PivotedQuery;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Timing rounds per arm; the minimum is recorded.
const ROUNDS: usize = 3;
/// Worker / thread count for both parallel arms.
const WORKERS: usize = 4;
/// Times each distinct query shape appears in the batch.
const REPEATS: usize = 6;

/// Fisher–Yates with the workspace's deterministic RNG (the vendored
/// `rand` has no `SliceRandom`).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

fn main() {
    let slack: f64 = std::env::var("PSI_SERVE_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.15);
    let adapt_cadence: Option<u64> = std::env::var("PSI_ADAPT_CADENCE")
        .ok()
        .and_then(|s| s.parse().ok());
    let adapt_epsilon: Option<f64> = std::env::var("PSI_ADAPT_EPSILON")
        .ok()
        .and_then(|s| s.parse().ok());
    let adaptive = adapt_cadence.is_some() || adapt_epsilon.is_some();
    let deploy_spec = || {
        let spec = DeploymentSpec::new().workers(WORKERS);
        if adaptive {
            spec.adaptive(adapt_cadence.unwrap_or(32), adapt_epsilon.unwrap_or(0.05))
        } else {
            spec
        }
    };

    // A labeled graph keeps individual queries cheap, so per-job pool
    // setup is a real fraction of the bill — the regime a query stream
    // lives in (cf. the scaling study in fig9, which goes single-label
    // to stress the cache instead).
    let g = generators::erdos_renyi(2_000, 8_000, 3, 7);
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    };
    let smart = SmartPsi::new(g.clone(), cfg);

    let mut queries: Vec<PivotedQuery> = Vec::new();
    for size in 4..=6usize {
        if let Some(w) = QueryWorkload::extract(&g, size, 6, 100 + size as u64) {
            queries.extend(w.queries);
        }
    }
    queries.truncate(16);
    assert!(queries.len() >= 11, "need a real shape mix, got {}", queries.len());

    let mut order: Vec<usize> =
        (0..queries.len()).flat_map(|i| std::iter::repeat(i).take(REPEATS)).collect();
    shuffle(&mut order, 0xba7c4);
    assert!(order.len() >= 64, "acceptance requires a ≥64-job batch");
    eprintln!(
        "[serve] |V|={} |E|={}, {} jobs over {} shapes, {} workers",
        g.node_count(),
        g.edge_count(),
        order.len(),
        queries.len(),
        WORKERS
    );

    // Reference answers, and the correctness bar for the service arm.
    let truth: Vec<_> = queries.iter().map(|q| smart.run(q, &RunSpec::new())).collect();

    let seq_spec = RunSpec::new();
    let scoped_spec = RunSpec::new().threads(WORKERS);

    let mut t_seq = f64::MAX;
    let mut t_scoped = f64::MAX;
    let mut t_service = f64::MAX;
    for _ in 0..ROUNDS {
        let (_, t) = time(|| {
            for &i in &order {
                let _ = smart.run(&queries[i], &seq_spec);
            }
        });
        t_seq = t_seq.min(t.as_secs_f64() * 1e3);

        // The historical convention: a fresh pool (and a cold cache)
        // inside every call.
        let (_, t) = time(|| {
            for &i in &order {
                let _ = smart.run(&queries[i], &scoped_spec);
            }
        });
        t_scoped = t_scoped.min(t.as_secs_f64() * 1e3);

        // One pool for the whole batch; spawn, queue drain, and join
        // are all inside the timed region — the service pays its setup
        // once, not per job.
        let (_, t) = time(|| {
            let service = smart.deploy(&deploy_spec()).into_service();
            let handles: Vec<_> = order
                .iter()
                .map(|&i| service.submit(queries[i].clone(), RunSpec::new()))
                .collect();
            for h in handles {
                let _ = h.wait();
            }
            drop(service);
        });
        t_service = t_service.min(t.as_secs_f64() * 1e3);
    }

    // The scoped arm's spawn bill, measured the same way fig9 reports
    // `pool_spawn_ms`: one recorded pass, summing per-worker
    // `Phase::PoolSpawn` spans across the batch. A profile absorbs the
    // recorder without draining it, so each run needs a fresh one.
    let spawn_ns: u64 = order
        .iter()
        .map(|&i| {
            let recorded = scoped_spec.clone().recorder(Arc::new(MetricsRecorder::new()));
            let r = smart.run(&queries[i], &recorded);
            r.profile.as_ref().map_or(0, |p| p.span(Phase::PoolSpawn).as_nanos() as u64)
        })
        .sum();
    let scoped_spawn_ms = spawn_ns as f64 / 1e6;

    // Untimed verification pass: every service answer must be
    // bit-identical to the sequential reference, and the shared cache
    // must actually carry cross-query traffic.
    let service = smart.deploy(&deploy_spec()).into_service();
    let handles: Vec<(usize, _)> = order
        .iter()
        .map(|&i| (i, service.submit(queries[i].clone(), RunSpec::new())))
        .collect();
    for (i, h) in handles {
        let got = h.wait();
        if adaptive {
            // Refit models and ε-exploration change costs, never
            // verdicts.
            assert_eq!(got.valid, truth[i].valid, "adaptive service verdicts diverged on query {i}");
        } else {
            assert_eq!(got, truth[i], "service diverged from sequential on query {i}");
        }
    }
    if let Some(a) = service.adaptive_stats() {
        eprintln!(
            "[serve] adaptive: {} feedback rows, {} refits, {} explorations",
            a.feedback_samples, a.refits, a.exploration_runs
        );
    }
    let stats = service.stats();
    drop(service);
    assert_eq!(stats.queries_served, order.len() as u64);
    assert_eq!(stats.worker_panics, 0);
    assert!(stats.cross_query_cache_hits > 0, "repeated shapes must reuse the cache");

    let speedup = t_scoped / t_service.max(1e-9);
    let jobs_per_sec = order.len() as f64 / (t_service / 1e3).max(1e-9);
    let mut table = ResultTable::new(
        "serve",
        &["arm", "total_ms", "jobs_per_sec"],
    );
    for (arm, ms) in [("sequential", t_seq), ("scoped pools", t_scoped), ("service", t_service)] {
        table.row(vec![
            arm.into(),
            format!("{ms:.1}"),
            format!("{:.0}", order.len() as f64 / (ms / 1e3).max(1e-9)),
        ]);
    }
    table.finish();
    println!(
        "service vs scoped pools: {speedup:.2}x  (scoped spawn bill {scoped_spawn_ms:.2} ms, \
         {} cross-query cache hits over {} shapes)",
        stats.cross_query_cache_hits, stats.distinct_query_shapes
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"experiment\": \"serve throughput: persistent PsiService vs per-query scoped pools \
         ({} jobs, {} shapes, best of {ROUNDS} rounds)\",",
        order.len(),
        queries.len()
    );
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(json, "  \"jobs\": {},", order.len());
    let _ = writeln!(json, "  \"distinct_queries\": {},", queries.len());
    let _ = writeln!(json, "  \"sequential_ms\": {t_seq:.1},");
    let _ = writeln!(json, "  \"scoped_pool_ms\": {t_scoped:.1},");
    let _ = writeln!(json, "  \"scoped_pool_spawn_ms\": {scoped_spawn_ms:.2},");
    let _ = writeln!(json, "  \"service_ms\": {t_service:.1},");
    let _ = writeln!(json, "  \"service_speedup_vs_scoped\": {speedup:.3},");
    let _ = writeln!(json, "  \"service_jobs_per_sec\": {jobs_per_sec:.0},");
    let _ = writeln!(json, "  \"cross_query_cache_hits\": {},", stats.cross_query_cache_hits);
    let _ = writeln!(json, "  \"slack\": {slack}");
    let _ = writeln!(json, "}}");
    let path = repro_dir().join("BENCH_serve.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    // Also drop a copy at the workspace root for discoverability.
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_serve.json", &json);
    }
    println!("[json] {}", path.display());

    // The CI gate: a persistent service that loses to re-spawning a
    // pool per query has no reason to exist.
    assert!(
        t_service <= t_scoped * slack,
        "service arm regressed: {t_service:.1} ms vs scoped {t_scoped:.1} ms (slack {slack})"
    );
    println!("serve: service within {slack}x of scoped pools — PASS");
}
