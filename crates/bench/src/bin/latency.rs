//! Latency bench — the network front door under saturation, overload,
//! and chaos. Writes `BENCH_latency.json`.
//!
//! PR 7's robustness claim: admission control turns overload from a
//! latency catastrophe into bounded-latency service plus fast,
//! actionable sheds. Three phases against a live [`NetServer`] on a
//! loopback socket:
//!
//! 1. **Saturation probe** — closed-loop clients (one outstanding
//!    request each) measure the deployment's ceiling in jobs/sec.
//! 2. **Open-loop offered load** at 0.5×/1×/2× the measured ceiling —
//!    paced senders that do NOT wait for responses, the regime where
//!    an unprotected queue grows without bound. Per level: p50/p99
//!    client-observed latency of *admitted* jobs, jobs/sec answered,
//!    and the shed rate.
//! 3. **Chaos + drain zero-loss run** — seeded clients pipeline a mix
//!    of normal queries, already-expired deadlines, and malformed
//!    lines, then the server is drained mid-stream. In-order response
//!    ids must form an exact prefix of each connection's request ids:
//!    every request the server read got exactly one answer (result or
//!    structured failure) — nothing lost, duplicated, or reordered.
//!
//! The run *asserts* (slack via `PSI_LATENCY_SLACK`, default 3.0)
//! that at 2× saturation the p99 of admitted jobs stays under the
//! queue-depth bound `(max_queue + workers) / saturation_rate` ×
//! slack — the whole point of shedding — that every shed response
//! carries a `retry_after_ms` hint, and that the chaos run loses
//! nothing. `ci.sh` fails if the front door ever regresses into
//! unbounded queueing or silent drops.
//!
//! [`NetServer`]: psi_core::NetServer

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use psi_bench::repro_dir;
use psi_core::{DeploymentSpec, NetServer, NetServerConfig, SmartPsi, SmartPsiConfig};
use psi_datasets::{generators, QueryWorkload};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Worker pool size behind the front door.
const WORKERS: usize = 2;
/// Queue-depth shed ceiling — the latency bound under overload.
const MAX_QUEUE: usize = 32;
/// Closed-loop clients for the saturation probe.
const PROBE_CLIENTS: usize = 8;
/// Open-loop sender connections per load level.
const SENDERS: usize = 4;
/// Seconds of measurement per phase/level.
const LEVEL_SECS: f64 = 1.5;

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// `"id":N` (or `"id":null` → `None`) from a response line.
fn response_id(line: &str) -> Option<u64> {
    let rest = &line[line.find("\"id\":")? + 5..];
    if rest.starts_with("null") {
        return None;
    }
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One wire query line for the i-th shape in the workload.
fn query_line(id: u64, shapes: &[(Vec<u16>, Vec<(u32, u32)>, u32)], i: usize) -> String {
    let (labels, edges, pivot) = &shapes[i % shapes.len()];
    let labels: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
    let edges: Vec<String> = edges.iter().map(|(u, v)| format!("[{u},{v}]")).collect();
    format!(
        "{{\"op\":\"query\",\"id\":{id},\"labels\":[{}],\"edges\":[{}],\"pivot\":{pivot}}}",
        labels.join(","),
        edges.join(",")
    )
}

fn bind_server() -> (NetServer, Vec<(Vec<u16>, Vec<(u32, u32)>, u32)>) {
    let g = generators::erdos_renyi(2_000, 8_000, 3, 7);
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    };
    let mut shapes = Vec::new();
    for size in 4..=5usize {
        if let Some(w) = QueryWorkload::extract(&g, size, 4, 100 + size as u64) {
            for q in &w.queries {
                let qg = q.graph();
                let labels: Vec<u16> = (0..qg.node_count()).map(|n| qg.label(n as u32)).collect();
                let edges: Vec<(u32, u32)> = qg.edges().map(|(u, v, _)| (u, v)).collect();
                shapes.push((labels, edges, q.pivot()));
            }
        }
    }
    assert!(shapes.len() >= 6, "need a shape mix, got {}", shapes.len());
    let capacity = g.label_count();
    let service = SmartPsi::new(g, cfg)
        .deploy(&DeploymentSpec::new().workers(WORKERS).evolving(capacity))
        .into_service();
    let net_cfg = NetServerConfig {
        max_queue: MAX_QUEUE,
        ..NetServerConfig::default()
    };
    let server = NetServer::bind(service, "127.0.0.1:0", net_cfg).expect("bind loopback");
    (server, shapes)
}

fn connect(server: &NetServer) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// Phase 1: closed-loop ceiling in jobs/sec.
fn saturation_probe(server: &NetServer, shapes: &[(Vec<u16>, Vec<(u32, u32)>, u32)]) -> f64 {
    let answered = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(LEVEL_SECS);
    std::thread::scope(|scope| {
        for c in 0..PROBE_CLIENTS {
            let answered = Arc::clone(&answered);
            let (mut stream, mut reader) = connect(server);
            scope.spawn(move || {
                let mut id = 0u64;
                let mut line = String::new();
                while Instant::now() < deadline {
                    let mut req = query_line(id, shapes, c + id as usize);
                    req.push('\n');
                    stream.write_all(req.as_bytes()).expect("write");
                    line.clear();
                    reader.read_line(&mut line).expect("read");
                    assert!(line.contains("\"ok\":true"), "probe shed unexpectedly: {line}");
                    answered.fetch_add(1, Ordering::Relaxed);
                    id += 1;
                }
            });
        }
    });
    answered.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

struct LevelOutcome {
    offered_mult: f64,
    sent: u64,
    admitted: u64,
    shed: u64,
    p50_ms: f64,
    p99_ms: f64,
    answered_per_sec: f64,
}

/// Phase 2: one open-loop level at `mult` × the saturation rate.
fn open_loop_level(
    server: &NetServer,
    shapes: &[(Vec<u16>, Vec<(u32, u32)>, u32)],
    sat_jps: f64,
    mult: f64,
) -> LevelOutcome {
    let per_sender_rate = sat_jps * mult / SENDERS as f64;
    let interval = Duration::from_secs_f64(1.0 / per_sender_rate.max(1.0));
    let latencies = Mutex::new(Vec::<f64>::new());
    let shed = AtomicU64::new(0);
    let sent_total = AtomicU64::new(0);
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for c in 0..SENDERS {
            let (mut stream, mut reader) = connect(server);
            let latencies = &latencies;
            let shed = &shed;
            let sent_total = &sent_total;
            scope.spawn(move || {
                // Sender half: absolute-schedule pacing (bursts catch
                // up, average rate holds); receiver inline after the
                // send window closes would overflow kernel buffers, so
                // responses are drained by a paired thread.
                let send_times = Arc::new(Mutex::new(Vec::<Instant>::new()));
                let stop = Arc::new(AtomicU64::new(0));
                let reader_times = Arc::clone(&send_times);
                let reader_stop = Arc::clone(&stop);
                // A short poll timeout lets the collector re-check the
                // stop target after the sender's final response has
                // already been consumed (otherwise it would park in
                // read_line with nothing left in flight).
                reader
                    .get_ref()
                    .set_read_timeout(Some(Duration::from_millis(100)))
                    .expect("poll timeout");
                let collector = std::thread::spawn({
                    let mut got = 0u64;
                    let mut local_lat = Vec::new();
                    let mut local_shed = 0u64;
                    move || {
                        let mut line = String::new();
                        loop {
                            let target = reader_stop.load(Ordering::Acquire);
                            if target != 0 && got == target {
                                break;
                            }
                            // On a poll timeout any partial bytes stay
                            // in `line` and the next read_line call
                            // appends the rest of the response.
                            match reader.read_line(&mut line) {
                                Ok(0) => panic!("server closed mid-level"),
                                Ok(_) => {}
                                Err(e)
                                    if e.kind() == std::io::ErrorKind::WouldBlock
                                        || e.kind() == std::io::ErrorKind::TimedOut =>
                                {
                                    continue;
                                }
                                Err(e) => panic!("read failed: {e}"),
                            }
                            let now = Instant::now();
                            let id = response_id(&line).expect("response id") as usize;
                            let sent_at = reader_times.lock().unwrap()[id];
                            if line.contains("\"ok\":true") {
                                local_lat.push((now - sent_at).as_secs_f64() * 1e3);
                            } else {
                                assert!(
                                    line.contains("\"error\":\"shed\""),
                                    "unexpected failure: {line}"
                                );
                                assert!(
                                    line.contains("\"retry_after_ms\":"),
                                    "shed without retry hint: {line}"
                                );
                                local_shed += 1;
                            }
                            line.clear();
                            got += 1;
                        }
                        (local_lat, local_shed)
                    }
                });

                let level_end = t0 + Duration::from_secs_f64(LEVEL_SECS);
                let mut next = Instant::now();
                let mut id = 0u64;
                while Instant::now() < level_end {
                    let mut req = query_line(id, shapes, c + id as usize);
                    req.push('\n');
                    send_times.lock().unwrap().push(Instant::now());
                    stream.write_all(req.as_bytes()).expect("write");
                    id += 1;
                    next += interval;
                    let now = Instant::now();
                    if next > now {
                        std::thread::sleep(next - now);
                    }
                }
                assert!(id > 0, "the level window always fits one send");
                sent_total.fetch_add(id, Ordering::Relaxed);
                stop.store(id, Ordering::Release);
                let (local_lat, local_shed) = collector.join().expect("collector");
                latencies.lock().unwrap().extend(local_lat);
                shed.fetch_add(local_shed, Ordering::Relaxed);
            });
        }
    });

    let elapsed = t0.elapsed().as_secs_f64();
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let shed = shed.into_inner();
    let sent = sent_total.into_inner();
    LevelOutcome {
        offered_mult: mult,
        sent,
        admitted: lat.len() as u64,
        shed,
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        answered_per_sec: (lat.len() as u64 + shed) as f64 / elapsed,
    }
}

/// Phase 3: seeded chaos + mid-stream drain; returns
/// `(requests_answered, aborted_like_failures)` after proving the
/// prefix property on every connection.
fn chaos_drain_zero_loss(seed: u64) -> (u64, u64) {
    let (mut server, shapes) = bind_server();
    const CONNS: usize = 4;
    const REQS: usize = 120;

    let answered = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..CONNS {
            let (mut stream, mut reader) = connect(&server);
            let shapes = &shapes;
            let answered = &answered;
            let failures = &failures;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ c as u64);
                // Expected in-order response ids: Some(id) for real
                // requests, None for garbage lines (answered with
                // "id":null).
                let mut expected: Vec<Option<u64>> = Vec::new();
                for id in 0..REQS as u64 {
                    let roll: f64 = rng.gen();
                    let line = if roll < 0.70 {
                        expected.push(Some(id));
                        query_line(id, shapes, c + id as usize)
                    } else if roll < 0.80 {
                        expected.push(Some(id));
                        let mut q = query_line(id, shapes, c + id as usize);
                        q.truncate(q.len() - 1);
                        q.push_str(",\"deadline_ms\":0}");
                        q
                    } else if roll < 0.90 {
                        expected.push(None);
                        format!("chaff {} not json", rng.gen::<u32>())
                    } else {
                        expected.push(Some(id));
                        format!("{{\"op\":\"stats\",\"id\":{id}}}")
                    };
                    // Writes may start failing once the drain lands;
                    // anything unread by the server was never accepted.
                    let mut line = line;
                    line.push('\n');
                    if stream.write_all(line.as_bytes()).is_err() {
                        expected.pop();
                        break;
                    }
                }
                let _ = stream.flush();

                // The zero-loss proof: responses arrive in order, one
                // per read request, forming an exact prefix.
                let mut got = 0usize;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                    assert!(got < expected.len(), "conn {c}: extra response {line}");
                    assert_eq!(
                        response_id(&line),
                        expected[got],
                        "conn {c}: response {got} out of order: {line}"
                    );
                    if line.contains("\"ok\":true") {
                        answered.fetch_add(1, Ordering::Relaxed);
                    } else {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                    got += 1;
                }
            });
        }

        // Let the streams collide with the drain mid-flight.
        std::thread::sleep(Duration::from_millis(30));
        let (mut ctl, mut ctl_reader) = connect(&server);
        ctl.write_all(b"{\"op\":\"shutdown\",\"id\":9000,\"grace_ms\":2000}\n")
            .expect("shutdown write");
        let mut line = String::new();
        ctl_reader.read_line(&mut line).expect("drain report");
        assert!(line.contains("\"drained\":"), "{line}");
    });

    let report = server.wait();
    eprintln!(
        "[latency] chaos drain: {} ok, {} structured failures, report {report:?}",
        answered.load(Ordering::Relaxed),
        failures.load(Ordering::Relaxed)
    );
    (
        answered.load(Ordering::Relaxed),
        failures.load(Ordering::Relaxed),
    )
}

fn main() {
    let slack: f64 = std::env::var("PSI_LATENCY_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0);

    let (mut server, shapes) = bind_server();
    eprintln!(
        "[latency] front door on {} ({} workers, queue cap {})",
        server.local_addr(),
        WORKERS,
        MAX_QUEUE
    );

    // First pass warms the cross-query prediction cache (service time
    // keeps dropping until repeated shapes hit it), second pass is the
    // steady-state ceiling the offered-load levels are scaled from.
    let cold_jps = saturation_probe(&server, &shapes);
    let sat_jps = saturation_probe(&server, &shapes);
    eprintln!(
        "[latency] saturation ≈ {sat_jps:.0} jobs/s steady state ({cold_jps:.0} cold, \
         closed loop, {PROBE_CLIENTS} clients)"
    );
    assert!(sat_jps > 50.0, "deployment too slow to bench: {sat_jps:.0} jobs/s");

    let mut levels = Vec::new();
    for mult in [0.5, 1.0, 2.0] {
        let lvl = open_loop_level(&server, &shapes, sat_jps, mult);
        eprintln!(
            "[latency] {:.1}x offered: {} sent, {} admitted (p50 {:.2} ms, p99 {:.2} ms), \
             {} shed ({:.0}% of answered), {:.0} answered/s",
            lvl.offered_mult,
            lvl.sent,
            lvl.admitted,
            lvl.p50_ms,
            lvl.p99_ms,
            lvl.shed,
            100.0 * lvl.shed as f64 / (lvl.admitted + lvl.shed).max(1) as f64,
            lvl.answered_per_sec
        );
        levels.push(lvl);
    }
    let shed_counter = server.metrics().counter(psi_core::obs::Counter::Shed);
    let drain = server.shutdown(Duration::from_secs(30));
    assert_eq!(drain.aborted, 0, "a 30s grace drains the bench queue: {drain:?}");

    let (chaos_ok, chaos_failures) = chaos_drain_zero_loss(0x1a7e);

    // ---- gates --------------------------------------------------
    // The latency SLO is the queue-depth bound the admission ladder
    // enforces: a newly admitted job sits behind at most max_queue
    // jobs spread over the workers, so its wait is bounded by
    // (max_queue + workers) / saturation_rate regardless of offered
    // load. Slack covers scheduler noise and the coarse probe.
    let slo_ms = (MAX_QUEUE + WORKERS) as f64 / sat_jps * 1e3;
    let overload = levels.last().expect("levels");
    assert!(
        overload.p99_ms <= slo_ms * slack,
        "admitted p99 at 2x offered load broke the queue bound: \
         {:.2} ms > {slo_ms:.2} ms x {slack}",
        overload.p99_ms
    );
    assert!(
        overload.shed > 0,
        "2x offered load over a {MAX_QUEUE}-deep queue must shed"
    );
    assert!(shed_counter >= overload.shed, "shed counter undercounts");
    let light = &levels[0];
    let light_total = (light.admitted + light.shed).max(1);
    assert!(
        light.shed as f64 / light_total as f64 <= 0.10,
        "0.5x offered load should pass the admission ladder: {}/{light_total} shed",
        light.shed
    );
    assert!(chaos_ok > 0, "chaos run must land real answers");

    // ---- report -------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"experiment\": \"front-door latency under offered load (open loop, {SENDERS} senders, \
         {WORKERS} workers, queue cap {MAX_QUEUE})\","
    );
    let _ = writeln!(json, "  \"saturation_jobs_per_sec\": {sat_jps:.0},");
    let _ = writeln!(json, "  \"slo_ms\": {slo_ms:.3},");
    let _ = writeln!(json, "  \"slack\": {slack},");
    let _ = writeln!(json, "  \"levels\": [");
    for (i, l) in levels.iter().enumerate() {
        let comma = if i + 1 < levels.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"offered_x\": {:.1}, \"sent\": {}, \"admitted\": {}, \"shed\": {}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"answered_per_sec\": {:.0}}}{comma}",
            l.offered_mult, l.sent, l.admitted, l.shed, l.p50_ms, l.p99_ms, l.answered_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"chaos_drain\": {{");
    let _ = writeln!(json, "    \"answered\": {chaos_ok},");
    let _ = writeln!(json, "    \"structured_failures\": {chaos_failures},");
    let _ = writeln!(json, "    \"lost\": 0");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let path = repro_dir().join("BENCH_latency.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_latency.json");
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_latency.json", &json);
    }
    println!("[json] {}", path.display());
    println!(
        "latency: 2x-overload admitted p99 {:.2} ms within {slack}x of the {slo_ms:.2} ms \
         queue bound, {} sheds all carried retry-after, chaos drain lost nothing — PASS",
        overload.p99_ms, overload.shed
    );
}
