//! Dynamic-graph bench — incremental signature maintenance vs. full
//! rebuilds on an update stream. Writes `BENCH_dynamic.json`.
//!
//! PR 5's evolving-graph claim: serving updates by repairing the
//! signature rows inside the update's `D−1` ball must beat recomputing
//! `matrix_signatures` from scratch after every update — that gap is
//! the entire reason [`IncrementalSignatures`] exists. Two guards, both
//! asserted in-process (tunable via `PSI_DYNAMIC_SLACK`):
//!
//! * **incremental vs rebuild** — a 50k-node graph takes a 200-update
//!   stream (edge inserts with occasional node appends, one batch per
//!   update, exactly how `PsiService::apply_update` receives them).
//!   The incremental arm repairs in place; the rebuild arm re-derives
//!   the full matrix (snapshot + `matrix_signatures`) at evenly spaced
//!   points of the same stream, and the guard compares *per-update*
//!   cost: incremental must be ≥5× cheaper.
//! * **add_node linearity** — the pre-fix maintainer reallocated the
//!   whole `|V|×|L|` matrix per appended node, so an N-node insert
//!   stream cost O(N²·|L|). Appending rows in place is amortized
//!   O(|L|), so doubling the stream should roughly double the time;
//!   the guard asserts the 2N/N total-time ratio stays well under the
//!   4× a quadratic append would show.
//!
//! A correctness pass (bit-exact equality of the incrementally
//! maintained matrix against a from-scratch build of the final graph)
//! runs untimed before any number is reported — a fast wrong matrix
//! prices nothing.
//!
//! [`IncrementalSignatures`]: psi_signature::IncrementalSignatures

use std::fmt::Write as _;

use psi_bench::{repro_dir, time, ResultTable};
use psi_graph::dynamic::DynamicGraph;
use psi_graph::GraphUpdate;
use psi_signature::{matrix_signatures, IncrementalSignatures};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Timing rounds per arm; the minimum is recorded.
const ROUNDS: usize = 3;
/// Signature propagation depth (the paper's default).
const DEPTH: u32 = 2;
/// Label capacity of the evolving deployment: wide rows make both the
/// repair and the rebuild arm do measurable per-row work.
const CAPACITY: usize = 64;
/// Nodes in the base graph of the stream arm.
const NODES: usize = 50_000;
/// Updates in the stream.
const UPDATES: usize = 200;
/// The rebuild arm re-derives the full matrix at every `REBUILD_EVERY`-th
/// update of the stream (a full 200-rebuild pass would measure the same
/// per-rebuild cost 10× slower); the guard compares per-update averages.
const REBUILD_EVERY: usize = 10;
/// Node count of the smaller add_node linearity stream.
const APPEND_N: usize = 50_000;

/// A 200-update stream over a graph that currently has `nodes` nodes:
/// mostly random edge inserts, with an occasional appended node that
/// later edges may touch.
fn update_stream(nodes: usize, seed: u64) -> Vec<GraphUpdate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = nodes as u32;
    (0..UPDATES)
        .map(|_| {
            if rng.gen_bool(0.1) {
                n += 1;
                GraphUpdate::AddNode { label: rng.gen_range(0..CAPACITY as u16) }
            } else {
                loop {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    if u != v {
                        break GraphUpdate::AddEdge {
                            u,
                            v,
                            label: rng.gen_range(0..CAPACITY as u16),
                        };
                    }
                }
            }
        })
        .collect()
}

/// Total wall-clock of appending `n` labeled nodes to a small live
/// deployment (min over `ROUNDS`).
fn append_stream_ms(n: usize) -> f64 {
    let g = psi_datasets::generators::erdos_renyi(100, 300, CAPACITY, 3);
    let base = IncrementalSignatures::new(DynamicGraph::from_graph(&g), DEPTH, CAPACITY);
    let mut best = f64::MAX;
    for round in 0..ROUNDS {
        let mut inc = base.clone();
        let (_, t) = time(|| {
            for i in 0..n {
                inc.add_node(((i + round) % CAPACITY) as u16);
            }
        });
        best = best.min(t.as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let slack: f64 = std::env::var("PSI_DYNAMIC_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    let g = psi_datasets::generators::erdos_renyi(NODES, 200_000, CAPACITY, 11);
    let stream = update_stream(NODES, 0xd15c);
    let (base, t_init) = time(|| {
        IncrementalSignatures::new(DynamicGraph::from_graph(&g), DEPTH, CAPACITY)
    });
    eprintln!(
        "[dynamic] |V|={} |E|={} |L|={CAPACITY} D={DEPTH}, {UPDATES}-update stream, \
         initial build {:.1} ms",
        g.node_count(),
        g.edge_count(),
        t_init.as_secs_f64() * 1e3
    );

    // Untimed correctness pass: after the whole stream, the maintained
    // matrix must equal a from-scratch build of the final graph bit
    // for bit (padding columns beyond the final label space stay 0).
    let mut checked = base.clone();
    let mut rows_repaired = 0usize;
    for u in &stream {
        rows_repaired += checked.apply_batch(std::slice::from_ref(u)).unwrap().rows_repaired;
    }
    let final_graph = checked.graph().snapshot();
    let scratch = matrix_signatures(&final_graph, DEPTH);
    let trimmed = checked.signatures().truncated(scratch.label_count());
    assert_eq!(trimmed.node_count(), scratch.node_count());
    for (i, (a, b)) in trimmed.as_flat().iter().zip(scratch.as_flat()).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "incremental matrix diverged from scratch build at entry {i}"
        );
    }

    // Incremental arm: repair after every update, the serving pattern.
    let mut t_inc = f64::MAX;
    for _ in 0..ROUNDS {
        let mut inc = base.clone();
        let (_, t) = time(|| {
            for u in &stream {
                inc.apply_batch(std::slice::from_ref(u)).unwrap();
            }
        });
        t_inc = t_inc.min(t.as_secs_f64() * 1e3);
    }
    let inc_per_update = t_inc / UPDATES as f64;

    // Rebuild arm: apply the same stream to a bare graph and re-derive
    // the full matrix at every REBUILD_EVERY-th update. Applying the
    // edge itself is in both arms; the rebuild (snapshot + full
    // matrix_signatures) is what the incremental repair replaces.
    let rebuilds = UPDATES / REBUILD_EVERY;
    let mut t_rebuild = f64::MAX;
    for _ in 0..ROUNDS {
        let mut dg = DynamicGraph::from_graph(&g);
        let (_, t) = time(|| {
            for (i, u) in stream.iter().enumerate() {
                dg.apply(std::slice::from_ref(u)).unwrap();
                if (i + 1) % REBUILD_EVERY == 0 {
                    std::hint::black_box(matrix_signatures(&dg.snapshot(), DEPTH));
                }
            }
        });
        t_rebuild = t_rebuild.min(t.as_secs_f64() * 1e3);
    }
    let rebuild_per_update = t_rebuild / rebuilds as f64;
    let speedup = rebuild_per_update / inc_per_update.max(1e-9);

    // add_node linearity: double the append stream, compare totals.
    let t_n = append_stream_ms(APPEND_N);
    let t_2n = append_stream_ms(2 * APPEND_N);
    let append_ratio = t_2n / t_n.max(1e-9);

    let mut table = ResultTable::new("dynamic", &["arm", "ms_per_update", "total_ms"]);
    table.row(vec![
        "incremental repair".into(),
        format!("{inc_per_update:.3}"),
        format!("{t_inc:.1}"),
    ]);
    table.row(vec![
        "full rebuild".into(),
        format!("{rebuild_per_update:.3}"),
        format!("{t_rebuild:.1} ({rebuilds} rebuilds)"),
    ]);
    table.finish();
    println!(
        "incremental vs full rebuild: {speedup:.1}x per update \
         ({rows_repaired} rows repaired over {UPDATES} updates)"
    );
    println!(
        "add_node stream: {APPEND_N} appends {t_n:.2} ms, {} appends {t_2n:.2} ms \
         (ratio {append_ratio:.2}, linear ≈ 2)",
        2 * APPEND_N
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"experiment\": \"dynamic serving: incremental signature repair vs full rebuild \
         ({NODES} nodes, {UPDATES}-update stream, best of {ROUNDS} rounds)\",",
    );
    let _ = writeln!(json, "  \"nodes\": {NODES},");
    let _ = writeln!(json, "  \"label_capacity\": {CAPACITY},");
    let _ = writeln!(json, "  \"depth\": {DEPTH},");
    let _ = writeln!(json, "  \"updates\": {UPDATES},");
    let _ = writeln!(json, "  \"rows_repaired\": {rows_repaired},");
    let _ = writeln!(json, "  \"initial_build_ms\": {:.1},", t_init.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"incremental_stream_ms\": {t_inc:.2},");
    let _ = writeln!(json, "  \"incremental_ms_per_update\": {inc_per_update:.4},");
    let _ = writeln!(json, "  \"rebuilds_timed\": {rebuilds},");
    let _ = writeln!(json, "  \"rebuild_ms_per_update\": {rebuild_per_update:.4},");
    let _ = writeln!(json, "  \"incremental_speedup\": {speedup:.2},");
    let _ = writeln!(json, "  \"append_n\": {APPEND_N},");
    let _ = writeln!(json, "  \"append_n_ms\": {t_n:.3},");
    let _ = writeln!(json, "  \"append_2n_ms\": {t_2n:.3},");
    let _ = writeln!(json, "  \"append_ratio\": {append_ratio:.3},");
    let _ = writeln!(json, "  \"slack\": {slack}");
    let _ = writeln!(json, "}}");
    let path = repro_dir().join("BENCH_dynamic.json");
    std::fs::create_dir_all(repro_dir()).expect("create target/repro");
    std::fs::write(&path, &json).expect("write BENCH_dynamic.json");
    // Also drop a copy at the workspace root for discoverability.
    if std::path::Path::new("Cargo.toml").exists() {
        let _ = std::fs::write("BENCH_dynamic.json", &json);
    }
    println!("[json] {}", path.display());

    // The CI gates: an incremental maintainer within noise of a full
    // rebuild has no reason to exist, and a super-linear append stream
    // means the in-place row growth regressed to reallocation.
    assert!(
        speedup >= 5.0 / slack,
        "incremental repair regressed: only {speedup:.1}x faster than full rebuild \
         (need ≥ {:.1}x)",
        5.0 / slack
    );
    assert!(
        append_ratio <= 2.8 * slack,
        "add_node stream is super-linear: 2N/N time ratio {append_ratio:.2} \
         (linear ≈ 2, cap {:.2})",
        2.8 * slack
    );
    println!("dynamic: incremental ≥{:.1}x rebuild, append linear — PASS", 5.0 / slack);
}
