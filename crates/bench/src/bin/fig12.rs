//! Figure 12 — ScaleMine vs. ScaleMine+SmartPSI: frequent subgraph
//! mining time as a function of compute nodes, on Twitter and Weibo.
//!
//! Per-task (pattern-frequency-evaluation) costs are *measured* with
//! both evaluators — classic embedding enumeration vs. one PSI query
//! per pattern node — and the cluster axis is produced by the LPT
//! scheduler simulation over those measured costs (see DESIGN.md for
//! the Cray-XC40 substitution).
//!
//! Paper's claims to reproduce: the PSI-based miner is several times
//! faster at every cluster size (paper: up to 5× on Twitter, 6× on
//! Weibo), and both curves scale with worker count until the longest
//! task dominates.

use psi_bench::{render_grouped_bars, ExperimentEnv, ResultTable, Series};
use psi_datasets::PaperDataset;
use psi_fsm::{simulate_makespan, IsoSupport, Miner, MinerConfig, PsiSupport};
use psi_signature::matrix_signatures;

fn main() {
    let env = ExperimentEnv::from_env();
    let mut table = ResultTable::new(
        "fig12",
        &["dataset", "workers", "scalemine_cost", "scalemine_smartpsi_cost", "speedup"],
    );

    for (d, scale) in [(PaperDataset::Twitter, 0.35), (PaperDataset::Weibo, 0.3)] {
        let g = d.generate_scaled(scale * env.scale, env.seed);
        eprintln!("[fig12] {}: |V|={} |E|={}", d.name(), g.node_count(), g.edge_count());
        // Thresholds scaled like the paper's 155K/460K relative to size.
        let threshold = (g.node_count() / 70).max(4);
        let config = MinerConfig {
            threshold,
            // Paper caps Weibo at 6 edges; we cap lower to match the
            // laptop budget while keeping several mining levels.
            max_edges: 3,
            max_candidates_per_level: 300,
        };
        let miner = Miner::new(&g, config);

        let mut iso = IsoSupport::new(&g, 3_000_000);
        let iso_out = miner.mine(&mut iso);
        eprintln!(
            "[fig12] {} iso: {} tasks, {} frequent, total cost {}",
            d.name(),
            iso_out.evaluated,
            iso_out.frequent.len(),
            iso_out.total_cost()
        );
        let sigs = matrix_signatures(&g, 2);
        let mut psi = PsiSupport::new(&g, &sigs);
        let psi_out = miner.mine(&mut psi);
        eprintln!(
            "[fig12] {} psi: {} tasks, {} frequent, total cost {}",
            d.name(),
            psi_out.evaluated,
            psi_out.frequent.len(),
            psi_out.total_cost()
        );

        let overhead = 200; // per-task master/worker coordination cost
        let mut xs = Vec::new();
        let mut series = vec![
            Series { name: "ScaleMine".into(), values: Vec::new() },
            Series { name: "ScaleMine+SmartPSI".into(), values: Vec::new() },
        ];
        for workers in [1usize, 2, 4, 8, 16, 32] {
            let mi = simulate_makespan(&iso_out.task_costs, workers, overhead);
            let mp = simulate_makespan(&psi_out.task_costs, workers, overhead);
            table.row(vec![
                d.name().into(),
                workers.to_string(),
                mi.to_string(),
                mp.to_string(),
                format!("{:.1}x", mi as f64 / mp.max(1) as f64),
            ]);
            xs.push(format!("{workers} workers"));
            series[0].values.push(Some(mi as f64));
            series[1].values.push(Some(mp as f64));
        }
        println!("{}", render_grouped_bars(&format!("Figure 12({}): simulated makespan (step units)", d.name()), &xs, &series, 48));
    }
    println!("\nFigure 12: FSM cost (simulated makespan, step units) vs. compute nodes");
    table.finish();
}
