//! # psi-bench
//!
//! Reproduction harness for every table and figure in the paper's
//! evaluation (§5). Each experiment has a binary (`src/bin/*.rs`) that
//! prints the paper's rows/series as aligned text and CSV, plus a
//! criterion micro-bench (`benches/`). `repro_all` runs everything and
//! writes `target/repro/*.csv`.
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — PSI results vs. embedding counts |
//! | `table2` | Table 2 — TurboIso / TurboIso⁺ / SmartPSI on Human |
//! | `fig7`   | Figure 7 — runtime vs. query size vs. engines |
//! | `fig8`   | Figure 8 — exploration vs. matrix signatures |
//! | `fig9`   | Figure 9 — SmartPSI(2 threads) vs. two-threaded baseline |
//! | `fig10`  | Figure 10 — SmartPSI vs. Optimistic vs. Pessimistic |
//! | `fig11`  | Figure 11 — Model α accuracy |
//! | `table4` | Table 4 — training overhead fraction |
//! | `models` | §5.4 — RF vs. SVM vs. NN |
//! | `fig12`  | Figure 12 — ScaleMine vs. ScaleMine+SmartPSI |
//! | `repro_all` | all of the above |
//!
//! The shared measurement plumbing lives in this library crate.

#![warn(missing_docs)]

pub mod chart;
pub mod harness;

pub use chart::{render_grouped_bars, Series};
pub use harness::*;
