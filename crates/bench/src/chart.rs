//! Terminal charts: log-scale grouped bar charts for the figure
//! binaries, so `cargo run --bin fig7` shows the figure, not just its
//! CSV.

/// One named series of y-values.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Y values aligned with the chart's x labels (`None` = missing /
    /// timed out).
    pub values: Vec<Option<f64>>,
}

/// Render grouped horizontal bars, one group per x label, log-scaled
/// to `width` columns. Values ≤ 0 are drawn as empty bars.
pub fn render_grouped_bars(title: &str, x_labels: &[String], series: &[Series], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = series
        .iter()
        .flat_map(|s| s.values.iter().flatten())
        .fold(0.0f64, |a, &b| a.max(b));
    if max <= 0.0 {
        out.push_str("(no data)\n");
        return out;
    }
    let name_w = series.iter().map(|s| s.name.len()).max().unwrap_or(4);
    let log_max = (max + 1.0).ln();
    for (xi, x) in x_labels.iter().enumerate() {
        out.push_str(&format!("{x}\n"));
        for s in series {
            let v = s.values.get(xi).copied().flatten();
            let bar = match v {
                Some(v) if v > 0.0 => {
                    let frac = ((v + 1.0).ln() / log_max).clamp(0.0, 1.0);
                    let len = ((width as f64) * frac).round() as usize;
                    "#".repeat(len.max(1))
                }
                Some(_) => String::new(),
                None => "(n/a)".to_string(),
            };
            let value_str = v.map_or(String::new(), |v| format!(" {v:.0}"));
            out.push_str(&format!("  {:<name_w$} |{bar}{value_str}\n", s.name));
        }
    }
    out.push_str(&format!("(log scale, max = {max:.0})\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<String>, Vec<Series>) {
        (
            vec!["q4".into(), "q5".into()],
            vec![
                Series {
                    name: "fast".into(),
                    values: vec![Some(10.0), Some(20.0)],
                },
                Series {
                    name: "slow".into(),
                    values: vec![Some(1000.0), None],
                },
            ],
        )
    }

    #[test]
    fn renders_all_series_and_labels() {
        let (x, s) = sample();
        let text = render_grouped_bars("t", &x, &s, 40);
        assert!(text.contains("q4"));
        assert!(text.contains("q5"));
        assert!(text.contains("fast"));
        assert!(text.contains("slow"));
        assert!(text.contains("(n/a)"));
    }

    #[test]
    fn bigger_values_get_longer_bars() {
        let (x, s) = sample();
        let text = render_grouped_bars("t", &x, &s, 40);
        let bar_len = |name: &str, section: &str| {
            let sec = text.split(section).nth(1).unwrap();
            sec.lines()
                .find(|l| l.contains(name))
                .unwrap()
                .chars()
                .filter(|&c| c == '#')
                .count()
        };
        assert!(bar_len("slow", "q4") > bar_len("fast", "q4"));
    }

    #[test]
    fn empty_data_is_handled() {
        let text = render_grouped_bars("t", &["x".into()], &[Series { name: "a".into(), values: vec![None] }], 20);
        assert!(text.contains("no data"));
    }
}
