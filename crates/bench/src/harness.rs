//! Shared measurement plumbing for the reproduction binaries.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use psi_datasets::{PaperDataset, QueryWorkload};
use psi_graph::Graph;

/// Knobs every reproduction binary honors, read from the environment:
///
/// * `PSI_REPRO_SCALE` — multiply dataset sizes (default 1.0; the
///   web-scale datasets are already scaled inside `psi-datasets`).
/// * `PSI_REPRO_QUERIES` — queries per size (default 20; the paper
///   uses 1000, which is hours of laptop time).
/// * `PSI_REPRO_SEED` — RNG seed (default 42).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentEnv {
    /// Dataset scale multiplier in (0, 1].
    pub scale: f64,
    /// Queries per query size.
    pub queries_per_size: usize,
    /// Base seed.
    pub seed: u64,
}

impl ExperimentEnv {
    /// Read from the process environment.
    pub fn from_env() -> Self {
        let scale = std::env::var("PSI_REPRO_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0f64)
            .clamp(0.001, 1.0);
        let queries_per_size = std::env::var("PSI_REPRO_QUERIES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(20usize)
            .max(1);
        let seed = std::env::var("PSI_REPRO_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42u64);
        Self {
            scale,
            queries_per_size,
            seed,
        }
    }

    /// Generate a dataset at this environment's scale.
    pub fn dataset(&self, d: PaperDataset) -> Graph {
        if (self.scale - 1.0).abs() < 1e-9 {
            d.generate(self.seed)
        } else {
            d.generate_scaled(self.scale, self.seed)
        }
    }

    /// Extract a workload of `size`-node queries.
    pub fn workload(&self, g: &Graph, size: usize) -> Option<QueryWorkload> {
        QueryWorkload::extract(g, size, self.queries_per_size, self.seed.wrapping_add(size as u64))
    }
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Humane duration formatting matching the paper's tables
/// ("27 sec", "14 min", "5.4 hrs").
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.1} sec")
    } else if s < 7200.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{:.1} hrs", s / 3600.0)
    }
}

/// A result table that renders aligned text to stdout and CSV to
/// `target/repro/<name>.csv`.
pub struct ResultTable {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// New table with column names.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout and write the CSV; returns the CSV path.
    pub fn finish(&self) -> PathBuf {
        // Aligned text.
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
        }
        out.push('\n');
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        }
        println!("{out}");

        // CSV.
        let dir = repro_dir();
        fs::create_dir_all(&dir).expect("create target/repro");
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.header.join(",")).expect("write header");
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).expect("write row");
        }
        println!("[csv] {}", path.display());
        path
    }
}

/// Output directory for reproduction CSVs.
pub fn repro_dir() -> PathBuf {
    // CARGO_TARGET_DIR may move `target`; default to workspace target.
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(target).join("repro")
}

/// Scientific-notation formatting like the paper's Table 1
/// (`1.3 × 10^7` rendered as `1.3e7`).
pub fn fmt_sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let exp = x.abs().log10().floor() as i32;
    if (0..4).contains(&exp) {
        format!("{x:.0}")
    } else {
        format!("{:.1}e{}", x / 10f64.powi(exp), exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let e = ExperimentEnv {
            scale: 1.0,
            queries_per_size: 5,
            seed: 1,
        };
        let g = e.dataset(PaperDataset::Cora);
        assert_eq!(g.node_count(), 2708);
        let w = e.workload(&g, 4).unwrap();
        assert_eq!(w.queries.len(), 5);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5 ms");
        assert_eq!(fmt_duration(Duration::from_secs(27)), "27.0 sec");
        assert_eq!(fmt_duration(Duration::from_secs(14 * 60)), "14.0 min");
        assert_eq!(fmt_duration(Duration::from_secs(5 * 3600)), "5.0 hrs");
    }

    #[test]
    fn sci_formats() {
        assert_eq!(fmt_sci(0.0), "0");
        assert_eq!(fmt_sci(70_000.0), "7.0e4");
        assert_eq!(fmt_sci(123.0), "123");
        assert_eq!(fmt_sci(1.3e7), "1.3e7");
    }

    #[test]
    fn table_round_trip() {
        let mut t = ResultTable::new("test_table", &["a", "b"]);
        t.row(vec!["1".into(), "x".into()]);
        let path = t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("a,b"));
        assert!(text.contains("1,x"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = ResultTable::new("bad", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
