//! Robustness: the text parser must never panic — any byte soup either
//! parses to a valid graph or returns a structured error.

use proptest::prelude::*;
use psi_graph::io::{read_graph, write_graph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary UTF-8 input never panics the parser.
    #[test]
    fn parser_never_panics_on_text(input in ".{0,256}") {
        let _ = read_graph(input.as_bytes());
    }

    /// Arbitrary bytes never panic the parser.
    #[test]
    fn parser_never_panics_on_bytes(input in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_graph(input.as_slice());
    }

    /// Structured-ish records: random v/e lines with random numbers —
    /// parse, and if accepted the graph must be internally consistent.
    #[test]
    fn accepted_graphs_are_consistent(
        nodes in 0usize..20,
        edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..30),
    ) {
        let mut text = String::new();
        for i in 0..nodes {
            text.push_str(&format!("v {i} {}\n", i % 4));
        }
        for (u, v) in edges {
            text.push_str(&format!("e {u} {v}\n"));
        }
        match read_graph(text.as_bytes()) {
            Ok(g) => {
                prop_assert_eq!(g.node_count(), nodes);
                for u in g.node_ids() {
                    for &v in g.neighbors(u) {
                        prop_assert!(g.has_edge(v, u), "symmetry");
                        prop_assert!((v as usize) < nodes);
                    }
                }
            }
            Err(_) => {} // rejected (out-of-range / self-loop) is fine
        }
    }

    /// Write → read is the identity on generated graphs.
    #[test]
    fn roundtrip_identity(n in 1usize..20, seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = psi_graph::GraphBuilder::new();
        for _ in 0..n {
            b.add_node(rng.gen_range(0..5));
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.3) {
                    b.add_labeled_edge(u, v, rng.gen_range(0..3));
                }
            }
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        prop_assert_eq!(g.labels(), g2.labels());
        prop_assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }
}
