//! Immutable CSR (compressed sparse row) graph storage.
//!
//! All engines in this workspace treat the data graph as read-only once
//! loaded, which the paper also assumes ("SmartPSI starts by loading the
//! entire input graph in-memory"). CSR gives contiguous, cache-friendly
//! adjacency scans, which dominate the running time of every matcher.

use crate::{LabelId, NodeId};

/// An immutable, undirected, node- and edge-labeled graph.
///
/// Build one with [`crate::GraphBuilder`]. Adjacency lists are sorted by
/// neighbor id, so [`Graph::has_edge`] is a binary search and
/// neighborhood intersections can run in merge order.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    pub(crate) labels: Vec<LabelId>,
    pub(crate) offsets: Vec<usize>,
    pub(crate) neighbors: Vec<NodeId>,
    pub(crate) edge_labels: Vec<LabelId>,
    pub(crate) label_count: usize,
    pub(crate) edge_label_count: usize,
    pub(crate) nodes_by_label_offsets: Vec<usize>,
    pub(crate) nodes_by_label: Vec<NodeId>,
    pub(crate) edge_count: usize,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of distinct node labels (`max label + 1`; the label space
    /// is dense).
    #[inline]
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Number of distinct edge labels.
    #[inline]
    pub fn edge_label_count(&self) -> usize {
        self.edge_label_count
    }

    /// Label of node `n`.
    #[inline]
    pub fn label(&self, n: NodeId) -> LabelId {
        self.labels[n as usize]
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[LabelId] {
        &self.labels
    }

    /// Degree of node `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        let n = n as usize;
        self.offsets[n + 1] - self.offsets[n]
    }

    /// Sorted adjacency list of node `n`.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        let n = n as usize;
        &self.neighbors[self.offsets[n]..self.offsets[n + 1]]
    }

    /// Edge labels aligned with [`Graph::neighbors`]`(n)`.
    #[inline]
    pub fn neighbor_edge_labels(&self, n: NodeId) -> &[LabelId] {
        let n = n as usize;
        &self.edge_labels[self.offsets[n]..self.offsets[n + 1]]
    }

    /// Iterate `(neighbor, edge_label)` pairs of node `n`.
    #[inline]
    pub fn neighbors_with_labels(&self, n: NodeId) -> NeighborIter<'_> {
        let i = n as usize;
        NeighborIter {
            neighbors: &self.neighbors[self.offsets[i]..self.offsets[i + 1]],
            edge_labels: &self.edge_labels[self.offsets[i]..self.offsets[i + 1]],
            pos: 0,
        }
    }

    /// Whether the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Label of the edge `(u, v)`, or `None` if the edge does not exist.
    #[inline]
    pub fn edge_label(&self, u: NodeId, v: NodeId) -> Option<LabelId> {
        let off = self.offsets[u as usize];
        self.neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.edge_labels[off + i])
    }

    /// All nodes carrying label `l`, sorted by id. Empty when `l` is out
    /// of range.
    #[inline]
    pub fn nodes_with_label(&self, l: LabelId) -> &[NodeId] {
        let l = l as usize;
        if l + 1 >= self.nodes_by_label_offsets.len() {
            return &[];
        }
        &self.nodes_by_label[self.nodes_by_label_offsets[l]..self.nodes_by_label_offsets[l + 1]]
    }

    /// Number of nodes carrying label `l`.
    #[inline]
    pub fn label_frequency(&self, l: LabelId) -> usize {
        self.nodes_with_label(l).len()
    }

    /// Iterator over all node ids.
    #[inline]
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Iterate all undirected edges once as `(u, v, edge_label)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, LabelId)> + '_ {
        self.node_ids().flat_map(move |u| {
            self.neighbors_with_labels(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, el)| (u, v, el))
        })
    }

    /// Average degree (`2|E| / |V|`), 0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.node_count() as f64
        }
    }

    /// Maximum degree over all nodes, 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|n| self.degree(n))
            .max()
            .unwrap_or(0)
    }

    /// Whether the graph is connected (trivially true for 0/1 nodes).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Breadth-first distances from `src`, `u32::MAX` for unreachable
    /// nodes. Used by signature computation and tests.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in self.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

/// Iterator over `(neighbor, edge_label)` pairs. See
/// [`Graph::neighbors_with_labels`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    neighbors: &'a [NodeId],
    edge_labels: &'a [LabelId],
    pos: usize,
}

impl<'a> Iterator for NeighborIter<'a> {
    type Item = (NodeId, LabelId);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.neighbors.len() {
            let item = (self.neighbors[self.pos], self.edge_labels[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.neighbors.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> crate::Graph {
        // 0-1, 1-2, 2-0 (triangle), 2-3 (tail); labels 0,1,1,2
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(1);
        let n2 = b.add_node(1);
        let n3 = b.add_node(2);
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        b.add_edge(n2, n0);
        b.add_edge(n2, n3);
        b.build().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.label_count(), 3);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.label(0), 0);
        assert_eq!(g.label(3), 2);
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = triangle_plus_tail();
        for u in g.node_ids() {
            let ns = g.neighbors(u);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted");
            for &v in ns {
                assert!(g.has_edge(v, u), "symmetric");
            }
        }
    }

    #[test]
    fn has_edge_and_edge_label() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_label(0, 1), Some(crate::UNLABELED_EDGE));
        assert_eq!(g.edge_label(0, 3), None);
    }

    #[test]
    fn label_index() {
        let g = triangle_plus_tail();
        assert_eq!(g.nodes_with_label(0), &[0]);
        assert_eq!(g.nodes_with_label(1), &[1, 2]);
        assert_eq!(g.nodes_with_label(2), &[3]);
        assert_eq!(g.nodes_with_label(9), &[] as &[u32]);
        assert_eq!(g.label_frequency(1), 2);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle_plus_tail();
        let es: Vec<_> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn connectivity() {
        let g = triangle_plus_tail();
        assert!(g.is_connected());

        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        let g2 = b.build().unwrap();
        assert!(!g2.is_connected());

        let empty = GraphBuilder::new().build().unwrap();
        assert!(empty.is_connected());
    }

    #[test]
    fn bfs_distances() {
        let g = triangle_plus_tail();
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 1, 2]);

        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        let g2 = b.build().unwrap();
        assert_eq!(g2.bfs_distances(0), vec![0, u32::MAX]);
    }

    #[test]
    fn neighbor_iter_with_labels() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0);
        let c = b.add_node(1);
        let d = b.add_node(2);
        b.add_labeled_edge(a, c, 5);
        b.add_labeled_edge(a, d, 7);
        let g = b.build().unwrap();
        let pairs: Vec<_> = g.neighbors_with_labels(a).collect();
        assert_eq!(pairs, vec![(c, 5), (d, 7)]);
        assert_eq!(g.neighbors_with_labels(a).len(), 2);
        assert_eq!(g.edge_label(c, a), Some(5));
        assert_eq!(g.edge_label_count(), 8);
    }

    #[test]
    fn empty_graph() {
        let g = crate::GraphBuilder::new().build().unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
