//! Summary statistics over graphs.
//!
//! Used to sanity-check the synthetic datasets against the targets in
//! Table 3 of the paper, and in the experiment reports.

use crate::Graph;

/// Aggregate statistics of a [`Graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Number of distinct node labels present.
    pub distinct_labels: usize,
    /// Average degree (`2|E|/|V|`).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Histogram over node labels (indexed by label id).
    pub label_histogram: Vec<usize>,
}

impl GraphStats {
    /// Compute the statistics of `g` in one pass.
    pub fn of(g: &Graph) -> Self {
        let mut label_histogram = vec![0usize; g.label_count()];
        for &l in g.labels() {
            label_histogram[l as usize] += 1;
        }
        let distinct_labels = label_histogram.iter().filter(|&&c| c > 0).count();
        let (mut max_degree, mut min_degree) = (0usize, usize::MAX);
        for n in g.node_ids() {
            let d = g.degree(n);
            max_degree = max_degree.max(d);
            min_degree = min_degree.min(d);
        }
        if g.node_count() == 0 {
            min_degree = 0;
        }
        Self {
            nodes: g.node_count(),
            edges: g.edge_count(),
            distinct_labels,
            avg_degree: g.avg_degree(),
            max_degree,
            min_degree,
            label_histogram,
        }
    }

    /// Degree histogram as `(degree, count)` pairs sorted by degree.
    pub fn degree_histogram(g: &Graph) -> Vec<(usize, usize)> {
        let mut hist = crate::hash::FxHashMap::<usize, usize>::default();
        for n in g.node_ids() {
            *hist.entry(g.degree(n)).or_insert(0) += 1;
        }
        let mut out: Vec<(usize, usize)> = hist.into_iter().collect();
        out.sort_unstable();
        out
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} labels={} avg_deg={:.2} max_deg={} min_deg={}",
            self.nodes, self.edges, self.distinct_labels, self.avg_degree, self.max_degree, self.min_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from;

    #[test]
    fn stats_of_small_graph() {
        let g = graph_from(&[0, 1, 1, 3], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.distinct_labels, 3); // labels 0, 1, 3 (2 unused)
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.label_histogram, vec![1, 2, 0, 1]);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = crate::GraphBuilder::new().build().unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn degree_histogram() {
        let g = graph_from(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let h = GraphStats::degree_histogram(&g);
        assert_eq!(h, vec![(1, 3), (3, 1)]);
    }

    #[test]
    fn display_is_humane() {
        let g = graph_from(&[0, 1], &[(0, 1)]).unwrap();
        let s = GraphStats::of(&g).to_string();
        assert!(s.contains("|V|=2"));
        assert!(s.contains("|E|=1"));
    }
}
