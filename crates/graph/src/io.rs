//! Plain-text graph I/O in the subgraph-mining edge-list format.
//!
//! The format, used by GraMi/ScaleMine and most subgraph-isomorphism
//! benchmarks, is line oriented:
//!
//! ```text
//! # comment
//! t <name>            (optional header)
//! v <id> <label>
//! e <src> <dst> [label]
//! ```
//!
//! Node ids must be dense and in order (`v 0 …`, `v 1 …`, …), matching
//! how the public datasets are distributed.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{Graph, GraphBuilder, GraphError, GraphUpdate};

/// Parse a graph from a reader.
///
/// Every malformed line is rejected with a [`GraphError`] carrying its
/// 1-based line number. Because node ids must be dense and in order,
/// an edge endpoint that exceeds the nodes declared *so far* is caught
/// the moment the `e` record is read
/// ([`GraphError::DanglingEndpoint`]), not deferred to graph build. A
/// single leading `t` header is accepted; a second one (the
/// multi-graph convention of GraMi transaction files) is a
/// [`GraphError::DuplicateHeader`].
pub fn read_graph<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut builder = GraphBuilder::new();
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut header_line: Option<usize> = None;
    // Workhorse-string loop (perf-book: "Reading Lines from a File").
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut tok = trimmed.split_ascii_whitespace();
        let kind = tok.next().unwrap_or("");
        let parse_err = |message: &str| GraphError::Parse {
            line: lineno,
            message: message.to_string(),
        };
        match kind {
            "t" => match header_line {
                Some(first_line) => {
                    return Err(GraphError::DuplicateHeader { line: lineno, first_line });
                }
                None if builder.node_count() > 0 => {
                    return Err(parse_err("'t' header must precede all 'v'/'e' records"));
                }
                None => header_line = Some(lineno),
            },
            "v" => {
                let id: u64 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err("expected node id"))?;
                let label: u16 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err("expected node label"))?;
                if id != builder.node_count() as u64 {
                    return Err(parse_err("node ids must be dense and in order"));
                }
                builder.add_node(label);
            }
            "e" => {
                let u: u32 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err("expected edge source"))?;
                let v: u32 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err("expected edge target"))?;
                let declared = builder.node_count();
                for endpoint in [u, v] {
                    if endpoint as usize >= declared {
                        return Err(GraphError::DanglingEndpoint {
                            line: lineno,
                            node: endpoint,
                            declared,
                        });
                    }
                }
                let label: u16 = match tok.next() {
                    Some(t) => t.parse().map_err(|_| parse_err("bad edge label"))?,
                    None => crate::UNLABELED_EDGE,
                };
                builder.add_labeled_edge(u, v, label);
            }
            _ => return Err(parse_err("expected 't', 'v' or 'e' record")),
        }
    }
    builder.build()
}

/// Load a graph from a file path.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_graph(std::fs::File::open(path)?)
}

/// Serialize a graph to a writer in the same format.
pub fn write_graph<W: Write>(graph: &Graph, mut w: W) -> Result<(), GraphError> {
    let mut buf = String::with_capacity(64);
    use std::fmt::Write as _;
    writeln!(buf, "t graph").unwrap();
    w.write_all(buf.as_bytes())?;
    for n in graph.node_ids() {
        buf.clear();
        writeln!(buf, "v {} {}", n, graph.label(n)).unwrap();
        w.write_all(buf.as_bytes())?;
    }
    for (u, v, l) in graph.edges() {
        buf.clear();
        if l == crate::UNLABELED_EDGE {
            writeln!(buf, "e {u} {v}").unwrap();
        } else {
            writeln!(buf, "e {u} {v} {l}").unwrap();
        }
        w.write_all(buf.as_bytes())?;
    }
    Ok(())
}

/// Save a graph to a file path.
pub fn save_graph<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    let f = std::fs::File::create(path)?;
    write_graph(graph, std::io::BufWriter::new(f))
}

/// Parse an update stream: batches of [`GraphUpdate`]s for an evolving
/// graph, in a line format mirroring the graph format above:
///
/// ```text
/// # comment
/// v <label>           (append a node; ids are assigned densely)
/// e <src> <dst> [label]
/// commit              (batch separator)
/// ```
///
/// Updates between two `commit` lines form one batch (one epoch when
/// fed to a service); a trailing batch without a final `commit` is kept
/// too. Unlike [`read_graph`], `v` records carry no id — the stream
/// cannot know how many nodes the target graph already has — and edge
/// endpoints are validated at *apply* time against the live graph, not
/// at parse time.
pub fn read_updates<R: Read>(reader: R) -> Result<Vec<Vec<GraphUpdate>>, GraphError> {
    let mut batches = Vec::new();
    let mut batch: Vec<GraphUpdate> = Vec::new();
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut tok = trimmed.split_ascii_whitespace();
        let kind = tok.next().unwrap_or("");
        let parse_err = |message: &str| GraphError::Parse {
            line: lineno,
            message: message.to_string(),
        };
        match kind {
            "v" => {
                let label: u16 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err("expected node label"))?;
                batch.push(GraphUpdate::AddNode { label });
            }
            "e" => {
                let u: u32 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err("expected edge source"))?;
                let v: u32 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err("expected edge target"))?;
                let label: u16 = match tok.next() {
                    Some(t) => t.parse().map_err(|_| parse_err("bad edge label"))?,
                    None => crate::UNLABELED_EDGE,
                };
                batch.push(GraphUpdate::AddEdge { u, v, label });
            }
            "commit" => batches.push(std::mem::take(&mut batch)),
            _ => return Err(parse_err("expected 'v', 'e' or 'commit' record")),
        }
    }
    if !batch.is_empty() {
        batches.push(batch);
    }
    Ok(batches)
}

/// Load an update stream from a file path (see [`read_updates`]).
pub fn load_updates<P: AsRef<Path>>(path: P) -> Result<Vec<Vec<GraphUpdate>>, GraphError> {
    read_updates(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_graph() {
        let text = "# a comment\nt test\nv 0 3\nv 1 4\ne 0 1\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.label(0), 3);
        assert_eq!(g.label(1), 4);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn parse_edge_labels() {
        let text = "v 0 0\nv 1 0\ne 0 1 9\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.edge_label(0, 1), Some(9));
    }

    #[test]
    fn roundtrip() {
        let g = crate::builder::graph_from(&[0, 1, 2, 1], &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        assert_eq!(g.labels(), g2.labels());
        for (e1, e2) in g.edges().zip(g2.edges()) {
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn non_dense_node_ids_rejected() {
        let text = "v 1 0\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn bad_record_kind_rejected() {
        let text = "v 0 0\nx 1 2\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(read_graph("v 0\n".as_bytes()).is_err());
        assert!(read_graph("e 0\n".as_bytes()).is_err());
        assert!(read_graph("v 0 0\nv 1 0\ne 0 1 zz\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("psi_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.lg");
        let g = crate::builder::graph_from(&[5, 6], &[(0, 1)]).unwrap();
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.label(0), 5);
        assert!(g2.has_edge(0, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_graph("".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn update_stream_batches_on_commit() {
        let text = "# warmup\nv 2\ne 0 5\ncommit\ne 1 2 9\nv 0\n";
        let batches = read_updates(text.as_bytes()).unwrap();
        assert_eq!(batches.len(), 2, "trailing batch without commit is kept");
        assert_eq!(
            batches[0],
            vec![
                GraphUpdate::AddNode { label: 2 },
                GraphUpdate::AddEdge { u: 0, v: 5, label: 0 },
            ]
        );
        assert_eq!(
            batches[1],
            vec![
                GraphUpdate::AddEdge { u: 1, v: 2, label: 9 },
                GraphUpdate::AddNode { label: 0 },
            ]
        );
    }

    #[test]
    fn update_stream_rejects_bad_lines_with_numbers() {
        for (text, bad_line) in [
            ("v\n", 1),              // node missing its label
            ("v 0\ne 0\n", 2),       // edge missing its target
            ("v 0\nx 1 2\n", 2),     // unknown record kind
            ("e 0 1 zz\n", 1),       // bad edge label
        ] {
            match read_updates(text.as_bytes()) {
                Err(GraphError::Parse { line, .. }) => assert_eq!(line, bad_line, "{text:?}"),
                other => panic!("expected Parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn update_stream_applies_to_dynamic_graph() {
        let mut g = crate::DynamicGraph::new();
        g.add_node(3);
        let batches = read_updates("v 1\ne 0 1\ncommit\n".as_bytes()).unwrap();
        let stats = g.apply(&batches[0]).unwrap();
        assert_eq!(stats.nodes_added, 1);
        assert_eq!(stats.edges_added, 1);
        assert!(g.has_edge(0, 1));
    }

    // --- malformed corpus: every rejection names the guilty line ---

    #[test]
    fn bad_node_id_names_line() {
        let text = "t g\nv zero 3\n";
        match read_graph(text.as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("node id"), "{message}");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn dangling_edge_endpoint_caught_at_parse_time() {
        // Endpoint 7 is only declared 5 lines later in a buildable
        // graph; the dense-id invariant lets us reject immediately.
        let text = "v 0 0\nv 1 0\ne 1 7\n";
        match read_graph(text.as_bytes()) {
            Err(GraphError::DanglingEndpoint { line, node, declared }) => {
                assert_eq!((line, node, declared), (3, 7, 2));
            }
            other => panic!("expected DanglingEndpoint, got {other:?}"),
        }
    }

    #[test]
    fn dangling_source_endpoint_also_caught() {
        let text = "v 0 0\ne 3 0\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(GraphError::DanglingEndpoint { line: 2, node: 3, declared: 1 })
        ));
    }

    #[test]
    fn truncated_lines_are_rejected_with_line_numbers() {
        for (text, bad_line) in [
            ("v 0 0\nv 1\n", 2),       // node missing its label
            ("v 0 0\nv 1 0\ne 0\n", 3), // edge missing its target
            ("v 0 0\ne\n", 2),          // bare record kind
        ] {
            match read_graph(text.as_bytes()) {
                Err(GraphError::Parse { line, .. }) => assert_eq!(line, bad_line, "{text:?}"),
                other => panic!("expected Parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_t_header_rejected() {
        let text = "t first\nv 0 0\nt second\nv 1 0\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(GraphError::DuplicateHeader { line: 3, first_line: 1 })
        ));
    }

    #[test]
    fn header_after_records_rejected() {
        let text = "v 0 0\nt late\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn truncated_junk_t_line_no_longer_silently_skipped() {
        // A corrupted line that merely *starts* with 't' used to be
        // treated as a header and dropped; now only a real `t` token
        // qualifies.
        let text = "v 0 0\ntruncated garbage\n";
        assert!(matches!(
            read_graph(text.as_bytes()),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }
}
