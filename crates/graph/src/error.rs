//! Error types for graph construction and I/O.

use std::fmt;

/// Errors produced while building, validating or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge references a node id that was never added.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// Number of nodes actually present.
        node_count: usize,
    },
    /// A self-loop was requested but the builder forbids them.
    SelfLoop(u32),
    /// The pivot node of a [`crate::PivotedQuery`] does not exist.
    PivotOutOfRange {
        /// The offending pivot id.
        pivot: u32,
        /// Number of nodes in the query graph.
        node_count: usize,
    },
    /// A query graph must be connected for PSI evaluation to be
    /// meaningful (the paper extracts queries by random walks, which are
    /// connected by construction).
    DisconnectedQuery,
    /// A parse error in the text graph format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An edge record references a node id that has not been declared
    /// by a preceding `v` record. Since node ids are dense and in
    /// order, this is detectable (with a line number) the moment the
    /// edge is read, rather than at graph build time.
    DanglingEndpoint {
        /// 1-based line number of the offending `e` record.
        line: usize,
        /// The undeclared endpoint id.
        node: u32,
        /// Number of nodes declared so far.
        declared: usize,
    },
    /// A second `t` header in a single-graph stream.
    DuplicateHeader {
        /// 1-based line number of the extra header.
        line: usize,
        /// 1-based line number of the first header.
        first_line: usize,
    },
    /// A node label exceeds a deployment's fixed label capacity.
    /// Evolving-graph deployments pin the signature label space up
    /// front (`psi-signature`'s `IncrementalSignatures`), so an update
    /// introducing a wider label is rejected rather than silently
    /// truncated.
    LabelOutOfCapacity {
        /// The offending label.
        label: u16,
        /// The fixed capacity it exceeds.
        capacity: usize,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node id {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            GraphError::PivotOutOfRange { pivot, node_count } => {
                write!(f, "pivot {pivot} out of range (query has {node_count} nodes)")
            }
            GraphError::DisconnectedQuery => write!(f, "query graph is not connected"),
            GraphError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            GraphError::DanglingEndpoint { line, node, declared } => write!(
                f,
                "parse error at line {line}: edge endpoint {node} is not declared (only {declared} nodes so far)"
            ),
            GraphError::DuplicateHeader { line, first_line } => write!(
                f,
                "parse error at line {line}: duplicate 't' header (first at line {first_line}); multi-graph streams are not supported"
            ),
            GraphError::LabelOutOfCapacity { label, capacity } => {
                write!(f, "label {label} exceeds the fixed label capacity {capacity}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, node_count: 3 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3"));
        let e = GraphError::SelfLoop(7);
        assert!(e.to_string().contains("7"));
        let e = GraphError::Parse { line: 12, message: "bad token".into() };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("bad token"));
        let e = GraphError::DanglingEndpoint { line: 4, node: 17, declared: 2 };
        let s = e.to_string();
        assert!(s.contains("line 4") && s.contains("17") && s.contains("2"), "{s}");
        let e = GraphError::DuplicateHeader { line: 9, first_line: 1 };
        let s = e.to_string();
        assert!(s.contains("line 9") && s.contains("line 1"), "{s}");
        let e = GraphError::LabelOutOfCapacity { label: 9, capacity: 4 };
        let s = e.to_string();
        assert!(s.contains("label 9") && s.contains("capacity 4"), "{s}");
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e: GraphError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
