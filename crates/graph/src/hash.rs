//! A fast, non-cryptographic hasher for hot per-node hash maps.
//!
//! The matching engines keep many small `HashMap<NodeId, _>` instances on
//! the hot path. The standard library's SipHash is DoS-resistant but slow
//! for integer keys; this module provides the FxHash algorithm used by
//! rustc (a multiply-and-rotate mix), which is the customary choice for
//! integer-keyed maps in performance-sensitive Rust (perf-book:
//! "Alternative Hashers"). Implemented locally because the sanctioned
//! dependency set does not include `rustc-hash`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement with the Fx hash function.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement with the Fx hash function.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        m.insert(u32::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.get(&u32::MAX), Some(&"max"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn set_distinguishes_values() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            s.insert(i * 2654435761);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Distinct short byte strings must hash differently with high
        // probability; in particular the non-8-byte tail must matter.
        let mut a = FxHasher::default();
        a.write(b"abcdefghi");
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn string_keys_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("alpha".into(), 1);
        m.insert("beta".into(), 2);
        assert_eq!(m["alpha"], 1);
        assert_eq!(m["beta"], 2);
    }
}
