//! A mutable adjacency-list graph for evolving-graph workloads.
//!
//! The CSR [`Graph`] is immutable by design (every matcher assumes a
//! frozen topology). Streaming/evolving scenarios — the incremental
//! frequent-subgraph-mining line of work the paper cites — need
//! in-place edge insertion; [`DynamicGraph`] provides that, plus cheap
//! conversion to CSR snapshots for querying.

use crate::{Graph, GraphBuilder, GraphError, LabelId, NodeId, UNLABELED_EDGE};

/// One mutation of an evolving graph.
///
/// Updates are applied in batches ([`DynamicGraph::apply`],
/// `IncrementalSignatures::apply_batch` in `psi-signature`,
/// `PsiService::apply_update` in `psi-core`): a batch is validated as a
/// whole before anything is mutated, so an erroneous batch leaves the
/// graph untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphUpdate {
    /// Append a node carrying `label`. Node ids are dense: the new node
    /// gets the next free id, so later updates in the same batch may
    /// reference it.
    AddNode {
        /// Label of the new node.
        label: LabelId,
    },
    /// Insert the undirected edge `(u, v)` with edge label `label`
    /// ([`crate::UNLABELED_EDGE`] for none). Inserting an edge that
    /// already exists is a no-op, not an error.
    AddEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Edge label.
        label: LabelId,
    },
}

/// Tally of what one update batch actually did
/// (see [`DynamicGraph::apply`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Nodes appended.
    pub nodes_added: usize,
    /// Edges newly inserted.
    pub edges_added: usize,
    /// Edge updates that were no-ops because the edge already existed
    /// (duplicates inside the batch count too).
    pub duplicate_edges: usize,
}

/// A mutable, undirected, labeled multigraph-free graph.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    labels: Vec<LabelId>,
    /// Sorted adjacency: `(neighbor, edge label)`.
    adj: Vec<Vec<(NodeId, LabelId)>>,
    edge_count: usize,
}

impl DynamicGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Import an immutable graph.
    pub fn from_graph(g: &Graph) -> Self {
        let labels = g.labels().to_vec();
        let adj = g
            .node_ids()
            .map(|n| g.neighbors_with_labels(n).collect())
            .collect();
        Self {
            labels,
            adj,
            edge_count: g.edge_count(),
        }
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, label: LabelId) -> NodeId {
        let id = self.labels.len() as NodeId;
        self.labels.push(label);
        self.adj.push(Vec::new());
        id
    }

    /// Add an unlabeled undirected edge; `Ok(true)` if inserted,
    /// `Ok(false)` if it already existed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.add_labeled_edge(u, v, UNLABELED_EDGE)
    }

    /// Add a labeled undirected edge.
    pub fn add_labeled_edge(&mut self, u: NodeId, v: NodeId, label: LabelId) -> Result<bool, GraphError> {
        let n = self.labels.len();
        for &x in &[u, v] {
            if x as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: x as u64,
                    node_count: n,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        match self.adj[u as usize].binary_search_by_key(&v, |&(n, _)| n) {
            Ok(_) => Ok(false),
            Err(iu) => {
                self.adj[u as usize].insert(iu, (v, label));
                let iv = self.adj[v as usize]
                    .binary_search_by_key(&u, |&(n, _)| n)
                    .unwrap_err();
                self.adj[v as usize].insert(iv, (u, label));
                self.edge_count += 1;
                Ok(true)
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Node label.
    pub fn label(&self, n: NodeId) -> LabelId {
        self.labels[n as usize]
    }

    /// Degree.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n as usize].len()
    }

    /// Sorted `(neighbor, edge label)` pairs.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LabelId)] {
        &self.adj[n as usize]
    }

    /// Whether the edge exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize]
            .binary_search_by_key(&v, |&(n, _)| n)
            .is_ok()
    }

    /// Check that `updates` would apply cleanly, without mutating
    /// anything. Edge endpoints may reference nodes added *earlier in
    /// the same batch* (ids are dense, so the simulated node count is
    /// enough to validate them).
    pub fn validate(&self, updates: &[GraphUpdate]) -> Result<(), GraphError> {
        let mut nodes = self.node_count();
        for u in updates {
            match *u {
                GraphUpdate::AddNode { .. } => nodes += 1,
                GraphUpdate::AddEdge { u, v, .. } => {
                    for x in [u, v] {
                        if x as usize >= nodes {
                            return Err(GraphError::NodeOutOfRange {
                                node: x as u64,
                                node_count: nodes,
                            });
                        }
                    }
                    if u == v {
                        return Err(GraphError::SelfLoop(u));
                    }
                }
            }
        }
        Ok(())
    }

    /// Apply an update batch atomically: the whole batch is
    /// [validated](DynamicGraph::validate) first, so on `Err` the graph
    /// is unchanged. Duplicate edges are counted, not rejected.
    pub fn apply(&mut self, updates: &[GraphUpdate]) -> Result<ApplyStats, GraphError> {
        self.validate(updates)?;
        let mut stats = ApplyStats::default();
        for u in updates {
            match *u {
                GraphUpdate::AddNode { label } => {
                    self.add_node(label);
                    stats.nodes_added += 1;
                }
                GraphUpdate::AddEdge { u, v, label } => {
                    // Validated above, so the only non-insert outcome
                    // is a duplicate.
                    if matches!(self.add_labeled_edge(u, v, label), Ok(true)) {
                        stats.edges_added += 1;
                    } else {
                        stats.duplicate_edges += 1;
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Freeze into an immutable CSR snapshot.
    pub fn snapshot(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.node_count(), self.edge_count);
        for &l in &self.labels {
            b.add_node(l);
        }
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, el) in nbrs {
                if (u as NodeId) < v {
                    b.add_labeled_edge(u as NodeId, v, el);
                }
            }
        }
        b.build().expect("dynamic graph is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = DynamicGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        let c = g.add_node(1);
        assert!(g.add_edge(a, b).unwrap());
        assert!(g.add_labeled_edge(b, c, 7).unwrap());
        assert!(!g.add_edge(a, b).unwrap(), "duplicate rejected");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(b, a));
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.neighbors(b), &[(a, 0), (c, 7)]);
    }

    #[test]
    fn errors() {
        let mut g = DynamicGraph::new();
        let a = g.add_node(0);
        assert!(matches!(g.add_edge(a, 9), Err(GraphError::NodeOutOfRange { .. })));
        assert!(matches!(g.add_edge(a, a), Err(GraphError::SelfLoop(_))));
    }

    #[test]
    fn snapshot_matches() {
        let mut g = DynamicGraph::new();
        for l in [3, 1, 4, 1] {
            g.add_node(l);
        }
        g.add_edge(0, 1).unwrap();
        g.add_labeled_edge(1, 2, 5).unwrap();
        g.add_edge(2, 3).unwrap();
        let s = g.snapshot();
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.labels(), &[3, 1, 4, 1]);
        assert_eq!(s.edge_label(1, 2), Some(5));
    }

    #[test]
    fn roundtrip_through_csr() {
        let csr = crate::builder::graph_from(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let dynamic = DynamicGraph::from_graph(&csr);
        let back = dynamic.snapshot();
        assert_eq!(csr.labels(), back.labels());
        assert_eq!(
            csr.edges().collect::<Vec<_>>(),
            back.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn batch_apply_counts_and_forward_references() {
        let mut g = DynamicGraph::new();
        g.add_node(0);
        let stats = g
            .apply(&[
                GraphUpdate::AddNode { label: 1 },
                // References the node added one update earlier.
                GraphUpdate::AddEdge { u: 0, v: 1, label: 0 },
                GraphUpdate::AddEdge { u: 1, v: 0, label: 0 }, // duplicate
            ])
            .unwrap();
        assert_eq!(
            stats,
            ApplyStats { nodes_added: 1, edges_added: 1, duplicate_edges: 1 }
        );
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn erroneous_batch_leaves_graph_untouched() {
        let mut g = DynamicGraph::new();
        g.add_node(0);
        g.add_node(1);
        let before = g.clone();
        // The batch fails on the third update; the first two must not
        // have been applied.
        let err = g.apply(&[
            GraphUpdate::AddNode { label: 2 },
            GraphUpdate::AddEdge { u: 0, v: 1, label: 0 },
            GraphUpdate::AddEdge { u: 0, v: 99, label: 0 },
        ]);
        assert!(matches!(err, Err(GraphError::NodeOutOfRange { .. })));
        assert_eq!(g.node_count(), before.node_count());
        assert_eq!(g.edge_count(), before.edge_count());
        let err = g.apply(&[GraphUpdate::AddEdge { u: 1, v: 1, label: 0 }]);
        assert!(matches!(err, Err(GraphError::SelfLoop(1))));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn adjacency_stays_sorted_under_insertion() {
        let mut g = DynamicGraph::new();
        let hub = g.add_node(0);
        let mut leaves: Vec<NodeId> = (0..20).map(|_| g.add_node(1)).collect();
        // Insert in reverse order.
        leaves.reverse();
        for &l in &leaves {
            g.add_edge(hub, l).unwrap();
        }
        let ns = g.neighbors(hub);
        assert!(ns.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
