//! Mutable builder producing immutable [`Graph`]s.

use crate::{Graph, GraphError, LabelId, NodeId, UNLABELED_EDGE};

/// Accumulates nodes and edges, then freezes them into a CSR [`Graph`].
///
/// * Nodes are dense: the i-th call to [`GraphBuilder::add_node`] creates
///   node `i`.
/// * Edges are undirected; duplicates are collapsed (first edge label
///   wins) and self-loops are rejected at [`GraphBuilder::build`] time.
///
/// ```
/// use psi_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let u = b.add_node(3);
/// let v = b.add_node(4);
/// b.add_edge(u, v);
/// let g = b.build().unwrap();
/// assert_eq!(g.neighbors(u), &[v]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: Vec<LabelId>,
    edges: Vec<(NodeId, NodeId, LabelId)>,
    min_label_count: usize,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with pre-reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            min_label_count: 0,
        }
    }

    /// Force the built graph's label space to span at least `count`
    /// labels, even if no node carries the higher ids.
    ///
    /// A subgraph extracted from a larger graph must keep the parent's
    /// label alphabet so that per-label indexes and signature rows stay
    /// column-compatible — the sharded engine relies on this when it
    /// gathers per-shard signature slabs out of the global matrix.
    pub fn reserve_label_space(&mut self, count: usize) {
        self.min_label_count = self.min_label_count.max(count);
    }

    /// Add a node with the given label; returns its id.
    pub fn add_node(&mut self, label: LabelId) -> NodeId {
        let id = self.labels.len() as NodeId;
        self.labels.push(label);
        id
    }

    /// Add `n` nodes all carrying `label`; returns the id of the first.
    pub fn add_nodes(&mut self, n: usize, label: LabelId) -> NodeId {
        let first = self.labels.len() as NodeId;
        self.labels.resize(self.labels.len() + n, label);
        first
    }

    /// Add an unlabeled undirected edge.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_labeled_edge(u, v, UNLABELED_EDGE);
    }

    /// Add an undirected edge carrying `label`.
    pub fn add_labeled_edge(&mut self, u: NodeId, v: NodeId, label: LabelId) {
        self.edges.push((u, v, label));
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edge records added so far (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into an immutable [`Graph`].
    ///
    /// Validates node ids and rejects self-loops; duplicate edges are
    /// collapsed. Runs in `O(V + E log E)`.
    pub fn build(self) -> Result<Graph, GraphError> {
        let n = self.labels.len();
        for &(u, v, _) in &self.edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u as u64, node_count: n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v as u64, node_count: n });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
        }

        // Normalize to (min, max), sort, dedup by endpoint pair.
        let mut edges: Vec<(NodeId, NodeId, LabelId)> = self
            .edges
            .into_iter()
            .map(|(u, v, l)| if u < v { (u, v, l) } else { (v, u, l) })
            .collect();
        edges.sort_unstable();
        edges.dedup_by_key(|e| (e.0, e.1));
        let edge_count = edges.len();

        // Degree counting pass, then CSR fill.
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        let mut edge_labels = vec![UNLABELED_EDGE; acc];
        for &(u, v, l) in &edges {
            let cu = &mut cursor[u as usize];
            neighbors[*cu] = v;
            edge_labels[*cu] = l;
            *cu += 1;
            let cv = &mut cursor[v as usize];
            neighbors[*cv] = u;
            edge_labels[*cv] = l;
            *cv += 1;
        }
        // Because `edges` is sorted by (min, max), each node's neighbor
        // list receives its larger neighbors in order, but smaller
        // neighbors interleave; sort each adjacency slice (label-paired).
        for i in 0..n {
            let (s, e) = (offsets[i], offsets[i + 1]);
            let slice: &mut [NodeId] = &mut neighbors[s..e];
            if slice.windows(2).any(|w| w[0] > w[1]) {
                let mut paired: Vec<(NodeId, LabelId)> = slice
                    .iter()
                    .zip(edge_labels[s..e].iter())
                    .map(|(&a, &b)| (a, b))
                    .collect();
                paired.sort_unstable_by_key(|p| p.0);
                for (j, (nb, el)) in paired.into_iter().enumerate() {
                    neighbors[s + j] = nb;
                    edge_labels[s + j] = el;
                }
            }
        }

        let label_count = self
            .labels
            .iter()
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_label_count);
        let edge_label_count = edges.iter().map(|&(_, _, l)| l as usize + 1).max().unwrap_or(0);

        // Label index: counting sort of nodes by label.
        let mut label_hist = vec![0usize; label_count];
        for &l in &self.labels {
            label_hist[l as usize] += 1;
        }
        let mut nodes_by_label_offsets = Vec::with_capacity(label_count + 1);
        let mut acc = 0usize;
        nodes_by_label_offsets.push(0);
        for c in &label_hist {
            acc += c;
            nodes_by_label_offsets.push(acc);
        }
        let mut lcursor = nodes_by_label_offsets.clone();
        let mut nodes_by_label = vec![0 as NodeId; n];
        for (node, &l) in self.labels.iter().enumerate() {
            let c = &mut lcursor[l as usize];
            nodes_by_label[*c] = node as NodeId;
            *c += 1;
        }

        Ok(Graph {
            labels: self.labels,
            offsets,
            neighbors,
            edge_labels,
            label_count,
            edge_label_count,
            nodes_by_label_offsets,
            nodes_by_label,
            edge_count,
        })
    }
}

/// Convenience constructor: build a graph from a label slice and an edge
/// list. Useful in tests and examples.
///
/// ```
/// let g = psi_graph::builder::graph_from(&[0, 1, 1], &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(g.edge_count(), 2);
/// ```
pub fn graph_from(labels: &[LabelId], edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for &l in labels {
        b.add_node(l);
    }
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        let v = b.add_node(0);
        b.add_edge(u, v);
        b.add_edge(v, u);
        b.add_edge(u, v);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(u), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        b.add_edge(u, u);
        assert!(matches!(b.build(), Err(GraphError::SelfLoop(0))));
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_edge(0, 5);
        assert!(matches!(b.build(), Err(GraphError::NodeOutOfRange { node: 5, .. })));
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_nodes(3, 7);
        assert_eq!(first, 0);
        let next = b.add_node(2);
        assert_eq!(next, 3);
        let g = b.build().unwrap();
        assert_eq!(g.label(0), 7);
        assert_eq!(g.label(2), 7);
        assert_eq!(g.label(3), 2);
    }

    #[test]
    fn first_edge_label_wins_on_duplicates() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        let v = b.add_node(0);
        b.add_labeled_edge(u, v, 3);
        b.add_labeled_edge(v, u, 9);
        let g = b.build().unwrap();
        // (u, v, 3) sorts before (u, v, 9); dedup keeps the first.
        assert_eq!(g.edge_label(u, v), Some(3));
    }

    #[test]
    fn graph_from_helper() {
        let g = graph_from(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn large_star_graph() {
        let mut b = GraphBuilder::with_capacity(1001, 1000);
        let hub = b.add_node(0);
        for _ in 0..1000 {
            let leaf = b.add_node(1);
            b.add_edge(hub, leaf);
        }
        let g = b.build().unwrap();
        assert_eq!(g.degree(hub), 1000);
        assert_eq!(g.max_degree(), 1000);
        assert!(g.is_connected());
        let ns = g.neighbors(hub);
        assert!(ns.windows(2).all(|w| w[0] < w[1]));
    }
}
