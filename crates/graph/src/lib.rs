//! # psi-graph
//!
//! Labeled-graph substrate for the SmartPSI reproduction (EDBT 2019,
//! *"Pivoted Subgraph Isomorphism: The Optimist, the Pessimist and the
//! Realist"*).
//!
//! This crate provides the storage layer every other crate builds on:
//!
//! * [`Graph`] — an immutable, cache-friendly CSR representation of a
//!   node- and edge-labeled undirected graph,
//! * [`GraphBuilder`] — the mutable builder used to assemble graphs,
//! * [`PivotedQuery`] — a query graph with a designated pivot node
//!   (Definition 2.1 of the paper),
//! * plain-text I/O in the edge-list format used throughout the
//!   subgraph-mining literature,
//! * degree/label statistics used by the dataset generators and the
//!   machine-learning feature extractors,
//! * a fast, non-cryptographic hasher ([`hash::FxHashMap`]) for the hot
//!   per-node maps used by the matching engines.
//!
//! ## Example
//!
//! ```
//! use psi_graph::{GraphBuilder, PivotedQuery};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(0); // label 0
//! let c = b.add_node(1); // label 1
//! b.add_edge(a, c);
//! let g = b.build().unwrap();
//! assert_eq!(g.node_count(), 2);
//! assert!(g.has_edge(a, c));
//!
//! // A 2-node query pivoted on its first node.
//! let q = PivotedQuery::from_graph(g.clone(), a).unwrap();
//! assert_eq!(q.pivot(), a);
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod builder;
pub mod csr;
pub mod dynamic;
pub mod error;
pub mod hash;
pub mod io;
pub mod query;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{Graph, NeighborIter};
pub use dynamic::{ApplyStats, DynamicGraph, GraphUpdate};
pub use error::GraphError;
pub use query::PivotedQuery;
pub use stats::GraphStats;

/// Identifier of a node. Dense, zero-based.
///
/// `u32` keeps hot per-node arrays half the size of `usize` on 64-bit
/// machines (perf-book: "Smaller Integers"), and no paper dataset comes
/// close to 2^32 nodes.
pub type NodeId = u32;

/// Identifier of a node or edge label. Dense, zero-based.
///
/// The paper's datasets have at most 71 distinct labels (Table 3), so
/// `u16` is ample and keeps label arrays compact.
pub type LabelId = u16;

/// Label used for edges in datasets that do not label their edges.
pub const UNLABELED_EDGE: LabelId = 0;
