//! Classic graph algorithms used across the workspace: connected
//! components, k-core decomposition, and induced subgraphs.

use crate::{Graph, GraphBuilder, NodeId};

/// Connected components: returns `(component_id_per_node, count)`.
/// Component ids are dense and assigned in order of lowest member id.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..n as NodeId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Core numbers of every node (the largest `k` such that the node
/// survives in the k-core), via the standard peeling algorithm.
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    let mut degree: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0 as NodeId; n];
    {
        let mut cursor = bins.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = cursor[d];
            order[cursor[d]] = v as NodeId;
            cursor[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        core[v as usize] = degree[v as usize] as u32;
        for &u in g.neighbors(v) {
            let du = degree[u as usize];
            if du > degree[v as usize] {
                // Move u one bucket down: swap it with the first node
                // of its bucket, then shift the bucket boundary.
                let pu = pos[u as usize];
                let pw = bins[du];
                let w = order[pw];
                if u != w {
                    order.swap(pu, pw);
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bins[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// The induced subgraph on `nodes` (in the given order: `nodes[i]`
/// becomes node `i`), preserving node labels and internal edges with
/// their labels.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Graph {
    let mut b = GraphBuilder::with_capacity(nodes.len(), nodes.len() * 2);
    for &n in nodes {
        b.add_node(g.label(n));
    }
    for (i, &u) in nodes.iter().enumerate() {
        for (j, &v) in nodes.iter().enumerate().skip(i + 1) {
            if let Some(el) = g.edge_label(u, v) {
                b.add_labeled_edge(i as NodeId, j as NodeId, el);
            }
        }
    }
    b.build().expect("induced subgraph of a valid graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from;

    #[test]
    fn components_of_two_islands() {
        let g = graph_from(&[0; 5], &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn components_of_empty_and_isolated() {
        let g = crate::GraphBuilder::new().build().unwrap();
        assert_eq!(connected_components(&g).1, 0);
        let g = graph_from(&[0, 0, 0], &[]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp, vec![0, 1, 2]);
    }

    #[test]
    fn core_numbers_of_triangle_with_tail() {
        // Triangle 0-1-2 plus path 2-3-4: triangle is the 2-core.
        let g = graph_from(&[0; 5], &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap();
        let core = core_numbers(&g);
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1);
        assert_eq!(core[4], 1);
    }

    #[test]
    fn core_numbers_of_clique() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = graph_from(&[0; 5], &edges).unwrap();
        assert!(core_numbers(&g).iter().all(|&c| c == 4));
    }

    #[test]
    fn core_numbers_of_star() {
        let g = graph_from(&[0; 5], &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1), "{core:?}");
    }

    #[test]
    fn core_numbers_empty_graph() {
        let g = crate::GraphBuilder::new().build().unwrap();
        assert!(core_numbers(&g).is_empty());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let mut b = crate::GraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(1);
        let n2 = b.add_node(2);
        let n3 = b.add_node(3);
        b.add_labeled_edge(n0, n1, 7);
        b.add_edge(n1, n2);
        b.add_edge(n2, n3);
        let g = b.build().unwrap();
        let s = induced_subgraph(&g, &[n0, n1, n3]);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.labels(), &[0, 1, 3]);
        assert_eq!(s.edge_count(), 1); // only 0-1 is internal
        assert_eq!(s.edge_label(0, 1), Some(7));
    }

    #[test]
    fn induced_subgraph_respects_node_order() {
        let g = graph_from(&[5, 6, 7], &[(0, 1), (1, 2)]).unwrap();
        let s = induced_subgraph(&g, &[2, 1]);
        assert_eq!(s.labels(), &[7, 6]);
        assert!(s.has_edge(0, 1));
    }
}
