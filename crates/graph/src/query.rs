//! Pivoted query graphs (Definition 2.1 of the paper).

use crate::{Graph, GraphError, LabelId, NodeId};

/// A query graph together with its pivot node.
///
/// A *pivoted graph* is the tuple `(S, v_p)` where `S` is a labeled graph
/// and `v_p ∈ V_S` is the node whose data-graph bindings a PSI query
/// asks for. Query graphs are required to be connected — the paper
/// extracts them by random walks, which yields connected subgraphs, and
/// PSI over a disconnected query would factor into independent queries.
#[derive(Debug, Clone)]
pub struct PivotedQuery {
    graph: Graph,
    pivot: NodeId,
}

impl PivotedQuery {
    /// Wrap an existing graph and pivot, validating both.
    pub fn from_graph(graph: Graph, pivot: NodeId) -> Result<Self, GraphError> {
        if pivot as usize >= graph.node_count() {
            return Err(GraphError::PivotOutOfRange {
                pivot,
                node_count: graph.node_count(),
            });
        }
        if !graph.is_connected() {
            return Err(GraphError::DisconnectedQuery);
        }
        Ok(Self { graph, pivot })
    }

    /// Build a query from node labels and an edge list.
    ///
    /// ```
    /// use psi_graph::PivotedQuery;
    /// // A triangle pivoted on node 0.
    /// let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)], 0).unwrap();
    /// assert_eq!(q.size(), 3);
    /// ```
    pub fn from_parts(
        labels: &[LabelId],
        edges: &[(NodeId, NodeId)],
        pivot: NodeId,
    ) -> Result<Self, GraphError> {
        let graph = crate::builder::graph_from(labels, edges)?;
        Self::from_graph(graph, pivot)
    }

    /// The underlying query graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The pivot node id.
    #[inline]
    pub fn pivot(&self) -> NodeId {
        self.pivot
    }

    /// Label of the pivot node.
    #[inline]
    pub fn pivot_label(&self) -> LabelId {
        self.graph.label(self.pivot)
    }

    /// Number of query nodes.
    #[inline]
    pub fn size(&self) -> usize {
        self.graph.node_count()
    }

    /// Re-pivot the same query graph on a different node.
    pub fn with_pivot(&self, pivot: NodeId) -> Result<Self, GraphError> {
        Self::from_graph(self.graph.clone(), pivot)
    }

    /// A BFS order over query nodes starting at the pivot; the default
    /// "structural" matching order every engine can fall back to.
    pub fn bfs_order_from_pivot(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.size());
        let mut seen = vec![false; self.size()];
        let mut queue = std::collections::VecDeque::new();
        seen[self.pivot as usize] = true;
        queue.push_back(self.pivot);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in self.graph.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_query() {
        let q = PivotedQuery::from_parts(&[0, 1], &[(0, 1)], 1).unwrap();
        assert_eq!(q.pivot(), 1);
        assert_eq!(q.pivot_label(), 1);
        assert_eq!(q.size(), 2);
    }

    #[test]
    fn pivot_out_of_range() {
        let err = PivotedQuery::from_parts(&[0, 1], &[(0, 1)], 5).unwrap_err();
        assert!(matches!(err, GraphError::PivotOutOfRange { pivot: 5, .. }));
    }

    #[test]
    fn disconnected_query_rejected() {
        let err = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1)], 0).unwrap_err();
        assert!(matches!(err, GraphError::DisconnectedQuery));
    }

    #[test]
    fn single_node_query_is_valid() {
        let q = PivotedQuery::from_parts(&[4], &[], 0).unwrap();
        assert_eq!(q.size(), 1);
        assert_eq!(q.pivot_label(), 4);
        assert_eq!(q.bfs_order_from_pivot(), vec![0]);
    }

    #[test]
    fn bfs_order_starts_at_pivot_and_covers_all() {
        // Path 0-1-2-3 pivoted on 2.
        let q = PivotedQuery::from_parts(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)], 2).unwrap();
        let order = q.bfs_order_from_pivot();
        assert_eq!(order[0], 2);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // 1 and 3 (distance 1) come before 0 (distance 2).
        let pos = |n: u32| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(1) < pos(0));
        assert!(pos(3) < pos(0));
    }

    #[test]
    fn repivot() {
        let q = PivotedQuery::from_parts(&[0, 1], &[(0, 1)], 0).unwrap();
        let q2 = q.with_pivot(1).unwrap();
        assert_eq!(q2.pivot(), 1);
        assert!(q.with_pivot(9).is_err());
    }
}
