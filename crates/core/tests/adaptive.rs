//! Differential tests for the online α/β adaptation layer (DESIGN.md
//! §19): a deployment that pools per-query feedback and periodically
//! refits its models must change *costs only* — never answers, and
//! never anything at all when it is switched off.
//!
//! The contract under test, in order of severity:
//!
//! * **Off ⟹ bit-identical.** A deployment without
//!   [`DeploymentSpec::adaptive`] produces results byte-equal to a
//!   fresh sequential [`SmartPsi::run`] — PR 10 must be invisible
//!   until opted into.
//! * **On ⟹ verdict-identical.** Adapted models and ε-exploration
//!   re-route nodes between the optimist and the pessimist, but the
//!   retry ladder's unlimited stage 3 keeps every verdict exact.
//! * **Deterministic.** Serial submission fixes the admission order,
//!   and the admission order alone drives the ε stream, the refit
//!   points, and the refit seeds — so worker count cannot matter.
//! * **Chaos-proof.** Injected faults during an adapting stream are
//!   absorbed by the same ladder that protects frozen serving.

use std::sync::Arc;

use psi_core::fault::{install_quiet_panic_hook, FaultPlan};
use psi_core::{
    AdaptiveConfig, DeploymentSpec, GraphContext, PsiResult, RunSpec, ShardSpec, ShardedService,
    SmartPsi, SmartPsiConfig,
};
use psi_datasets::{generators, rwr};
use psi_graph::PivotedQuery;

/// A deployment big enough to take the ML + pool path, with a query
/// mix cycled into a stream long enough to cross several refit points.
fn deployment(seed: u64) -> (Arc<GraphContext>, Vec<PivotedQuery>) {
    let g = generators::erdos_renyi(350, 1400, 3, seed);
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    };
    let ctx = Arc::new(GraphContext::new(g.clone(), cfg));
    let queries: Vec<_> = (0..8)
        .filter_map(|s| rwr::extract_query_seeded(&g, 3 + (s as usize % 3), seed ^ (s * 977)))
        .collect();
    (ctx, queries)
}

/// Serve `rounds` cycles of the query mix serially (submit, wait,
/// repeat — the deterministic regime) and return every result.
fn serve_stream(
    smart: &SmartPsi,
    spec: &DeploymentSpec,
    queries: &[PivotedQuery],
    rounds: usize,
    run: &RunSpec,
) -> (Vec<PsiResult>, Option<psi_core::AdaptiveStats>) {
    let service = smart.deploy(spec).into_service();
    let mut results = Vec::with_capacity(rounds * queries.len());
    for _ in 0..rounds {
        for q in queries {
            results.push(service.submit(q.clone(), run.clone()).wait());
        }
    }
    let stats = service.adaptive_stats();
    (results, stats)
}

/// Worker count must be invisible to an adapting deployment: serial
/// submission pins the admission order, and admission order is the
/// *only* input to the ε draws, the refit points, and the refit
/// seeds — so 1, 2, 4 and 8 workers replay the identical adaptation
/// trajectory, down to full result equality and identical counters.
#[test]
fn refit_trajectory_is_deterministic_across_worker_counts() {
    let (ctx, queries) = deployment(23);
    let smart = SmartPsi::from_context(ctx);
    let spec =
        |w: usize| DeploymentSpec::new().workers(w).adaptive_config(AdaptiveConfig::new(4, 0.1));
    let (baseline, base_stats) =
        serve_stream(&smart, &spec(1), &queries, 4, &RunSpec::new());
    let base_stats = base_stats.expect("adaptive deployment");
    assert!(base_stats.refits > 0, "the stream must cross refit points: {base_stats:?}");
    assert!(base_stats.feedback_samples > 0, "{base_stats:?}");

    for workers in [2usize, 4, 8] {
        let (results, stats) = serve_stream(&smart, &spec(workers), &queries, 4, &RunSpec::new());
        assert_eq!(
            results, baseline,
            "workers={workers}: adaptation trajectory diverged from 1-worker replay"
        );
        assert_eq!(stats, Some(base_stats), "workers={workers}: counters diverged");
    }
}

/// With adaptation left off, the whole PR is invisible: a plain
/// deployment's answers are byte-equal to fresh sequential runs, and
/// switching adaptation *on* over the same stream still moves no
/// verdict.
#[test]
fn adaptation_off_is_bit_identical_and_on_is_verdict_identical() {
    let (ctx, queries) = deployment(31);
    let smart = SmartPsi::from_context(ctx.clone());
    let truth: Vec<PsiResult> = {
        let fresh = SmartPsi::from_context(ctx);
        queries.iter().map(|q| fresh.run(q, &RunSpec::new())).collect()
    };

    let (frozen, frozen_stats) =
        serve_stream(&smart, &DeploymentSpec::new().workers(2), &queries, 1, &RunSpec::new());
    assert!(frozen_stats.is_none(), "frozen deployments expose no adaptation stats");
    for (r, t) in frozen.iter().zip(&truth) {
        assert_eq!(r, t, "frozen service must be bit-identical to sequential runs");
    }

    let (adaptive, stats) = serve_stream(
        &smart,
        &DeploymentSpec::new().workers(2).adaptive(2, 0.2),
        &queries,
        4,
        &RunSpec::new(),
    );
    let stats = stats.expect("adaptive deployment");
    assert!(stats.refits > 0, "{stats:?}");
    for (i, r) in adaptive.iter().enumerate() {
        let t = &truth[i % queries.len()];
        assert_eq!(r.valid, t.valid, "adaptation moved a verdict on job {i}");
        assert_eq!(r.candidates, t.candidates);
        assert_eq!(r.unresolved, 0);
    }
}

/// The ε-exploration floor fires at its configured per-query rate
/// (the draw is a seeded deterministic stream — the bounds document
/// the binomial tolerance, not flakiness), and an explored run marks
/// *every* harvested row as explored so accuracy metrics can skip
/// exactly the rows whose method choice carried no signal.
#[test]
fn exploration_floor_rate_and_row_marking() {
    let (ctx, queries) = deployment(47);
    let smart = SmartPsi::from_context(ctx);
    // Cadence far beyond the stream: isolates exploration from refits.
    let spec = DeploymentSpec::new()
        .workers(2)
        .adaptive_config(AdaptiveConfig::new(1_000_000, 0.25));
    let rounds = 15; // 120 jobs at ε = 0.25 ⟹ ~30 explored
    let (results, stats) = serve_stream(&smart, &spec, &queries, rounds, &RunSpec::new());
    let stats = stats.expect("adaptive deployment");
    assert_eq!(stats.refits, 0, "cadence never reached: {stats:?}");
    assert_eq!(stats.model_version, 0, "{stats:?}");

    let jobs = (rounds * queries.len()) as u64;
    assert!(
        stats.exploration_runs * 4 >= jobs / 2 && stats.exploration_runs * 4 <= jobs * 2,
        "ε = 0.25 over {jobs} jobs explored {} times — outside [ε/2, 2ε]",
        stats.exploration_runs
    );

    let mut explored_jobs = 0u64;
    for r in &results {
        let flags: Vec<bool> = r.feedback.iter().map(|row| row.explored).collect();
        assert!(
            flags.iter().all(|&f| f == flags[0]),
            "exploration is a per-run choice; rows must agree"
        );
        explored_jobs += u64::from(flags.first().copied().unwrap_or(false));
    }
    assert_eq!(
        explored_jobs, stats.exploration_runs,
        "row marking must reconcile with the counter"
    );
}

/// Injected chaos during an adapting stream — one-shot panics,
/// spurious interrupts and budget burns — changes step accounting
/// (and therefore possibly the refit inputs), but the retry ladder
/// keeps every verdict identical to the clean adapting run, with
/// nothing unresolved and the refit loop still alive.
#[test]
fn refits_under_chaos_leave_answers_invariant() {
    install_quiet_panic_hook();
    let (ctx, queries) = deployment(59);
    let smart = SmartPsi::from_context(ctx);
    let spec = DeploymentSpec::new().workers(2).adaptive(4, 0.1);
    let (clean, clean_stats) = serve_stream(&smart, &spec, &queries, 4, &RunSpec::new());
    let clean_stats = clean_stats.expect("adaptive deployment");
    assert!(clean_stats.refits > 0, "{clean_stats:?}");

    let fault = Arc::new(FaultPlan::seeded(7, 0.05, 0.05, 0.05));
    let (chaos, chaos_stats) =
        serve_stream(&smart, &spec, &queries, 4, &RunSpec::new().faults(fault));
    let chaos_stats = chaos_stats.expect("adaptive deployment");
    assert!(chaos_stats.refits > 0, "chaos must not starve the refit loop: {chaos_stats:?}");
    assert_eq!(
        chaos_stats.feedback_samples, clean_stats.feedback_samples,
        "every job still reports feedback under chaos"
    );
    for (i, (c, r)) in clean.iter().zip(&chaos).enumerate() {
        assert_eq!(r.valid, c.valid, "chaos changed the answer of job {i}");
        assert_eq!(r.unresolved, 0, "chaos left job {i} unresolved");
        assert!(r.failures.nodes.is_empty(), "one-shot faults must be recovered: job {i}");
    }
}

/// The sharded deployment's collect-only cells plus coordinator-merged
/// refits stay answer-invariant against single-context ground truth,
/// and the merged counters prove the loop ran (rows pooled from every
/// shard, at least one merged refit installed everywhere).
#[test]
fn sharded_merged_refits_stay_answer_invariant() {
    let (ctx, queries) = deployment(67);
    let truth: Vec<PsiResult> = {
        let fresh = SmartPsi::from_context(ctx.clone());
        queries.iter().map(|q| fresh.run(q, &RunSpec::new())).collect()
    };
    let spec = ShardSpec::new(3).workers_per_shard(2).adaptive(AdaptiveConfig::new(4, 0.1));
    let service = ShardedService::new(&ctx, &spec);
    for round in 0..4 {
        for (i, q) in queries.iter().enumerate() {
            let r = service.submit(q.clone(), RunSpec::new()).expect("admitted").wait();
            assert_eq!(
                r.valid, truth[i].valid,
                "round {round}: sharded adaptation moved a verdict on query {i}"
            );
            assert_eq!(r.unresolved, 0);
        }
    }
    let stats = service.adaptive_stats().expect("adaptive sharded deployment");
    assert!(stats.refits > 0, "coordinator must merge-refit: {stats:?}");
    assert!(stats.feedback_samples > 0, "{stats:?}");
}
