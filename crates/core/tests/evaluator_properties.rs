//! Property tests for the per-node evaluator and plan machinery.

use proptest::prelude::*;
use psi_core::evaluator::{NodeEvaluator, QueryContext, Verdict};
use psi_core::plan::{heuristic_plan, plan_is_valid, random_plan, sample_plans};
use psi_core::{EvalLimits, Strategy as PsiStrategy};
use psi_graph::builder::graph_from;
use psi_graph::Graph;

fn random_graph() -> impl Strategy<Value = Graph> {
    (6usize..=14, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<u16> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.35) {
                    edges.push((u, v));
                }
            }
        }
        graph_from(&labels, &edges).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Verdicts are plan-invariant: any valid plan yields the same
    /// verdict for every candidate under every strategy.
    #[test]
    fn verdicts_are_plan_invariant(g in random_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let ctx = QueryContext::new(q.clone(), 2);
        let plans = sample_plans(&g, &q, 4, seed);
        let compiled: Vec<_> = plans.iter().map(|p| ctx.compile(p)).collect();
        let mut ev = NodeEvaluator::new(&g, &sigs);
        for u in g.node_ids() {
            let mut verdicts = Vec::new();
            for plan in &compiled {
                for s in [PsiStrategy::optimistic(), PsiStrategy::pessimistic()] {
                    let (v, _) = ev.evaluate(&ctx, plan, u, s, &EvalLimits::unlimited());
                    verdicts.push(v);
                }
            }
            prop_assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "node {u}: {verdicts:?}"
            );
        }
    }

    /// Interruption is monotone: if an evaluation completes within k
    /// steps, it completes (with the same verdict) within any larger
    /// limit.
    #[test]
    fn limits_are_monotone(g in random_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let ctx = QueryContext::new(q.clone(), 2);
        let plan = ctx.compile(&heuristic_plan(&g, &q));
        let mut ev = NodeEvaluator::new(&g, &sigs);
        for u in g.node_ids().take(6) {
            let (v_unlimited, steps) =
                ev.evaluate(&ctx, &plan, u, PsiStrategy::pessimistic(), &EvalLimits::unlimited());
            let (v_limited, _) = ev.evaluate(
                &ctx,
                &plan,
                u,
                PsiStrategy::pessimistic(),
                &EvalLimits::steps(steps + 2),
            );
            prop_assert_eq!(v_limited, v_unlimited);
            // And a 1-step limit either matches or interrupts.
            let (v_tiny, _) =
                ev.evaluate(&ctx, &plan, u, PsiStrategy::pessimistic(), &EvalLimits::steps(1));
            prop_assert!(v_tiny == v_unlimited || v_tiny == Verdict::Interrupted);
        }
    }

    /// Every sampled plan is valid and pivot-rooted; random plans are
    /// uniform over valid orders (weak check: validity only).
    #[test]
    fn plans_always_valid(g in random_graph(), size in 2usize..=5, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        prop_assert!(plan_is_valid(&q, &heuristic_plan(&g, &q)));
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            prop_assert!(plan_is_valid(&q, &random_plan(&q, &mut rng)));
        }
        for p in sample_plans(&g, &q, 6, seed) {
            prop_assert!(plan_is_valid(&q, &p));
        }
    }

    /// The evaluator's scratch state never leaks between evaluations:
    /// evaluating in any order produces identical verdicts.
    #[test]
    fn evaluations_are_order_independent(g in random_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let ctx = QueryContext::new(q.clone(), 2);
        let plan = ctx.compile(&heuristic_plan(&g, &q));
        let mut ev = NodeEvaluator::new(&g, &sigs);
        let forward: Vec<Verdict> = g
            .node_ids()
            .map(|u| ev.evaluate(&ctx, &plan, u, PsiStrategy::optimistic(), &EvalLimits::unlimited()).0)
            .collect();
        let mut backward: Vec<Verdict> = (0..g.node_count() as u32)
            .rev()
            .map(|u| ev.evaluate(&ctx, &plan, u, PsiStrategy::optimistic(), &EvalLimits::unlimited()).0)
            .collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }
}
