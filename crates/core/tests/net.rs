//! Loopback integration tests for the TCP front door
//! ([`NetServer`]): protocol round-trips, malformed-input robustness,
//! queue-depth shedding with retry hints, per-request deadlines,
//! per-connection quotas, and graceful drain.
//!
//! The invariant every test leans on: **every request the server
//! reads gets exactly one response line on the same connection, in
//! request order** — a result, or a structured `"ok":false` error.
//! Accepted (admitted) jobs are never silently dropped, even when the
//! test slams the queue or drains the server mid-stream.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use psi_core::{DeploymentSpec, NetServer, NetServerConfig, SmartPsi, SmartPsiConfig};
use psi_datasets::generators;

/// Spin up a served deployment on an ephemeral loopback port.
fn serve(nodes: usize, edges: usize, workers: usize, cfg: NetServerConfig) -> NetServer {
    let g = generators::erdos_renyi(nodes, edges, 3, 7);
    let capacity = g.label_count() + 4; // headroom for wire updates
    let service = SmartPsi::new(g, SmartPsiConfig::default())
        .deploy(&DeploymentSpec::new().workers(workers).evolving(capacity))
        .into_service();
    NetServer::bind(service, "127.0.0.1:0", cfg).expect("bind loopback")
}

/// A blocking line-protocol client with a read timeout so a wedged
/// server fails the test instead of hanging it.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &NetServer) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write newline");
    }

    /// Next response line, or `None` once the server closes the
    /// connection.
    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(e) => panic!("read from server failed: {e}"),
        }
    }
}

/// Extract `"id":N` from a response line without a JSON parser.
fn response_id(line: &str) -> Option<u64> {
    let rest = &line[line.find("\"id\":")? + 5..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn loopback_roundtrip_query_update_stats_shutdown() {
    let mut server = serve(150, 600, 2, NetServerConfig::default());
    let mut c = Client::connect(&server);

    c.send(r#"{"op":"query","id":1,"labels":[0,1],"edges":[[0,1]],"pivot":0}"#);
    let r = c.recv().expect("query response");
    assert!(r.contains("\"id\":1") && r.contains("\"ok\":true"), "{r}");
    assert!(r.contains("\"valid\":["), "{r}");

    c.send(r#"{"op":"update","id":2,"updates":[{"add_node":1},{"add_edge":[0,1,0]}]}"#);
    let r = c.recv().expect("update response");
    assert!(r.contains("\"id\":2") && r.contains("\"ok\":true"), "{r}");
    assert!(r.contains("\"epoch\":1"), "{r}");

    c.send(r#"{"op":"stats","id":3}"#);
    let r = c.recv().expect("stats response");
    assert!(r.contains("\"id\":3") && r.contains("\"ok\":true"), "{r}");
    assert!(r.contains("\"graph_epoch\":1"), "update must be visible: {r}");
    assert!(r.contains("\"admitted\":1"), "{r}");

    // The updated graph serves queries (epoch bumped, caches intact).
    c.send(r#"{"op":"query","id":4,"labels":[0],"edges":[],"pivot":0}"#);
    let r = c.recv().expect("post-update query");
    assert!(r.contains("\"id\":4") && r.contains("\"ok\":true"), "{r}");

    c.send(r#"{"op":"shutdown","id":5,"grace_ms":2000}"#);
    let r = c.recv().expect("shutdown response");
    assert!(r.contains("\"id\":5") && r.contains("\"drained\":"), "{r}");
    assert_eq!(c.recv(), None, "connection closes after shutdown");

    let report = server.wait();
    assert_eq!(report.aborted, 0, "nothing was left to abort");
}

#[test]
fn malformed_lines_get_errors_and_never_wedge_the_connection() {
    let mut server = serve(150, 600, 2, NetServerConfig::default());
    let mut bad = Client::connect(&server);
    let mut good = Client::connect(&server);

    // A fuzz-style corpus: every entry must produce exactly one
    // structured bad_request/update error on THIS connection and leave
    // the server serving.
    let deep = format!("{}1{}", "[".repeat(60), "]".repeat(60));
    let corpus: Vec<String> = vec![
        "GARBAGE NOT JSON".into(),
        "{".into(),
        "{}".into(),
        r#"{"op":"nosuch","id":1}"#.into(),
        r#"{"op":"query","id":2}"#.into(),
        r#"{"op":"query","id":3,"labels":"zebra","edges":[],"pivot":0}"#.into(),
        r#"{"op":"query","id":4,"labels":[0],"edges":[[0,9]],"pivot":0}"#.into(),
        r#"{"op":"query","id":5,"labels":[0],"edges":[],"pivot":7}"#.into(),
        r#"{"op":"update","id":6,"updates":[{"warp_core":1}]}"#.into(),
        r#"{"op":"update","id":7,"updates":[{"add_edge":[0,999999,0]}]}"#.into(),
        r#"{"id":8,"labels":[0]}"#.into(),
        "\u{0}\u{1}\u{2}binary\u{7f}".into(),
        "[1,2,3]".into(),
        "null".into(),
        r#""just a string""#.into(),
        "{\"op\":\"query\",\"id\":9,".into(),
        deep,
    ];
    for line in &corpus {
        bad.send(line);
        let r = bad.recv().expect("error response for malformed line");
        assert!(r.contains("\"ok\":false"), "line {line:?} got {r}");
    }

    // The abused connection still serves…
    bad.send(r#"{"op":"stats","id":100}"#);
    let r = bad.recv().expect("stats after abuse");
    assert!(r.contains("\"id\":100") && r.contains("\"ok\":true"), "{r}");

    // …and the garbage never leaked onto the healthy connection.
    good.send(r#"{"op":"query","id":200,"labels":[0,1],"edges":[[0,1]],"pivot":0}"#);
    let r = good.recv().expect("healthy connection response");
    assert!(r.contains("\"id\":200") && r.contains("\"ok\":true"), "{r}");

    server.shutdown(Duration::from_secs(2));
}

#[test]
fn oversized_line_is_rejected_but_connection_survives() {
    let cfg = NetServerConfig {
        max_line_bytes: 1024,
        ..NetServerConfig::default()
    };
    let mut server = serve(150, 600, 2, cfg);
    let mut c = Client::connect(&server);

    let huge = format!(r#"{{"op":"stats","id":1,"pad":"{}"}}"#, "x".repeat(4096));
    c.send(&huge);
    let r = c.recv().expect("oversized-line response");
    assert!(
        r.contains("\"ok\":false") && r.contains("bad_request"),
        "{r}"
    );

    c.send(r#"{"op":"stats","id":2}"#);
    let r = c.recv().expect("stats after oversized line");
    assert!(r.contains("\"id\":2") && r.contains("\"ok\":true"), "{r}");

    server.shutdown(Duration::from_secs(2));
}

#[test]
fn queue_full_sheds_with_retry_after_and_every_id_is_answered_once() {
    // One slow worker + a one-deep queue: pipelining a burst MUST shed
    // most of it, and everything — admitted or shed — answers exactly
    // once.
    let cfg = NetServerConfig {
        max_queue: 1,
        ..NetServerConfig::default()
    };
    let mut server = serve(3000, 24000, 1, cfg);
    let mut c = Client::connect(&server);

    const BURST: u64 = 24;
    let mut batch = String::new();
    for id in 0..BURST {
        batch.push_str(&format!(
            r#"{{"op":"query","id":{id},"labels":[0,1,0,1,0,1],"edges":[[0,1],[1,2],[2,3],[3,4],[4,5]],"pivot":0}}"#
        ));
        batch.push('\n');
    }
    c.stream.write_all(batch.as_bytes()).expect("burst write");

    let mut answered = vec![0u32; BURST as usize];
    let (mut ok, mut shed) = (0u32, 0u32);
    for _ in 0..BURST {
        let r = c.recv().expect("burst response");
        let id = response_id(&r).expect("response id") as usize;
        answered[id] += 1;
        if r.contains("\"ok\":true") {
            ok += 1;
        } else {
            assert!(r.contains("\"error\":\"shed\""), "unexpected failure: {r}");
            assert!(r.contains("\"retry_after_ms\":"), "shed without hint: {r}");
            shed += 1;
        }
    }
    assert!(
        answered.iter().all(|&n| n == 1),
        "every id answers exactly once: {answered:?}"
    );
    assert!(ok >= 1, "at least the first job is admitted");
    assert!(shed >= 1, "a 1-deep queue under a {BURST}-burst must shed");
    assert_eq!(ok + shed, BURST as u32);

    // The shed counter is observable over the wire.
    c.send(&format!(r#"{{"op":"stats","id":{}}}"#, BURST));
    let r = c.recv().expect("stats");
    assert!(r.contains(&format!("\"shed\":{shed}")), "{r}");

    let report = server.shutdown(Duration::from_secs(30));
    assert_eq!(
        report.aborted, 0,
        "a 30s grace drains every admitted job: {report:?}"
    );
}

#[test]
fn wire_deadline_already_expired_reports_deadline_error() {
    let mut server = serve(150, 600, 1, NetServerConfig::default());
    let mut c = Client::connect(&server);

    c.send(r#"{"op":"query","id":1,"labels":[0,1],"edges":[[0,1]],"pivot":0,"deadline_ms":0}"#);
    let r = c.recv().expect("deadline response");
    assert!(
        r.contains("\"id\":1") && r.contains("\"error\":\"deadline\""),
        "{r}"
    );

    // Deadline bookkeeping is visible in stats, and the connection is
    // healthy for a query with room to breathe.
    c.send(r#"{"op":"stats","id":2}"#);
    let r = c.recv().expect("stats");
    assert!(r.contains("\"deadline_expired\":1"), "{r}");
    c.send(r#"{"op":"query","id":3,"labels":[0],"edges":[],"pivot":0,"deadline_ms":60000}"#);
    let r = c.recv().expect("roomy deadline response");
    assert!(r.contains("\"id\":3") && r.contains("\"ok\":true"), "{r}");

    server.shutdown(Duration::from_secs(2));
}

#[test]
fn per_connection_quota_sheds_with_retry_after() {
    let cfg = NetServerConfig {
        quota_rate: 0.001, // one token per ~17 minutes: no refill mid-test
        quota_burst: 2.0,
        ..NetServerConfig::default()
    };
    let mut server = serve(150, 600, 2, cfg);
    let mut c = Client::connect(&server);

    for id in 1..=2 {
        c.send(&format!(
            r#"{{"op":"query","id":{id},"labels":[0],"edges":[],"pivot":0}}"#
        ));
        let r = c.recv().expect("burst-credit response");
        assert!(r.contains("\"ok\":true"), "{r}");
    }
    c.send(r#"{"op":"query","id":3,"labels":[0],"edges":[],"pivot":0}"#);
    let r = c.recv().expect("quota response");
    assert!(r.contains("\"error\":\"quota\""), "{r}");
    assert!(r.contains("\"retry_after_ms\":"), "{r}");

    // Stats are exempt from the quota (cheap, needed to observe the
    // backoff) and a FRESH connection gets its own bucket.
    c.send(r#"{"op":"stats","id":4}"#);
    let r = c.recv().expect("stats exempt from quota");
    assert!(r.contains("\"id\":4") && r.contains("\"ok\":true"), "{r}");
    let mut fresh = Client::connect(&server);
    fresh.send(r#"{"op":"query","id":5,"labels":[0],"edges":[],"pivot":0}"#);
    let r = fresh.recv().expect("fresh connection response");
    assert!(r.contains("\"id\":5") && r.contains("\"ok\":true"), "{r}");

    server.shutdown(Duration::from_secs(2));
}

#[test]
fn drain_closes_connections_and_refuses_new_ones() {
    let mut server = serve(150, 600, 2, NetServerConfig::default());
    let addr = server.local_addr();
    let mut a = Client::connect(&server);
    let mut b = Client::connect(&server);

    a.send(r#"{"op":"shutdown","id":1,"grace_ms":2000}"#);
    let r = a.recv().expect("drain report");
    assert!(r.contains("\"drained\":") && r.contains("\"aborted\":"), "{r}");
    assert_eq!(a.recv(), None, "initiator's connection closes");

    // The bystander either races a final request in (answered with a
    // structured "draining" shed) or finds its connection already
    // closed (write fails or EOF) — never a silent hang.
    let late = b
        .stream
        .write_all(b"{\"op\":\"query\",\"id\":2,\"labels\":[0],\"edges\":[],\"pivot\":0}\n");
    if late.is_ok() {
        match b.recv() {
            None => {}
            Some(r) => assert!(r.contains("\"error\":\"draining\""), "{r}"),
        }
    }

    let report = server.wait();
    assert_eq!(report.aborted, 0, "{report:?}");

    // The accept loop is gone: new connections fail outright or are
    // closed without ever being served.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(s) => {
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut r = BufReader::new(s);
            let mut line = String::new();
            assert_eq!(r.read_line(&mut line).unwrap_or(0), 0, "got {line:?}");
        }
    }
}
