//! Differential and property tests for the observability layer.
//!
//! Two contracts are pinned here:
//!
//! 1. **RunSpec roundtrip** — [`RunSpec`] is the single front door for
//!    evaluation: a default spec, a candidate subset, step limits, and
//!    each parallel executor all flow through `SmartPsi::run`, and the
//!    attached [`QueryProfile`] carries enough to rebuild a
//!    [`SmartPsiReport`] losslessly (`SmartPsiReport::from_result`
//!    roundtrips against the direct result). Specs that describe the
//!    same evaluation agree bit-for-bit on answers and accounting.
//! 2. **Profile soundness** — the [`QueryProfile`] attached to every
//!    `run` result satisfies the PR-2 accounting identity
//!    (`reconciles()`), and on a sequential run its per-phase spans
//!    are disjoint slices of the run, so their sum never exceeds the
//!    total wall time (one-sided, plus a jitter epsilon).

use std::sync::Arc;

use proptest::prelude::*;
use psi_core::obs::{Counter, MetricsRecorder, QueryProfile};
use psi_core::{
    EvalLimits, PsiResult, RunSpec, SmartPsi, SmartPsiConfig, SmartPsiReport,
};
use psi_datasets::{generators, rwr};
use psi_graph::{NodeId, PivotedQuery};

/// Timer-jitter allowance for the span-sum bound: each of the phases
/// contributes at most one `Instant::now` pair of slack.
const SPAN_EPS_NS: u64 = 2_000_000;

fn deployment() -> (SmartPsi, PivotedQuery) {
    let g = generators::erdos_renyi(600, 2600, 3, 17);
    let q = rwr::extract_query_seeded(&g, 5, 11).expect("query extraction");
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    };
    (SmartPsi::new(g, cfg), q)
}

fn counter(r: &PsiResult, c: Counter) -> u64 {
    r.profile.as_ref().map_or(0, |p| p.counter(c))
}

/// Assert a report rebuilt via [`SmartPsiReport::from_result`] and a
/// second `run` of an equivalent spec are the same evaluation:
/// identical answer, identical accounting, identical α-accuracy bits.
/// Wall-clock timings are excluded — two runs never share a clock.
fn assert_equivalent(label: &str, legacy: &SmartPsiReport, r: &PsiResult) {
    assert_eq!(legacy.result.valid, r.valid, "{label}: valid set");
    assert_eq!(legacy.result.candidates, r.candidates, "{label}: candidates");
    assert_eq!(legacy.result.steps, r.steps, "{label}: steps");
    assert_eq!(legacy.result.unresolved, r.unresolved, "{label}: unresolved");
    assert_eq!(
        legacy.result.failures.nodes.len(),
        r.failures.nodes.len(),
        "{label}: failed nodes"
    );
    assert_eq!(
        legacy.trained_nodes,
        counter(r, Counter::TrainedNodes) as usize,
        "{label}: trained_nodes"
    );
    assert_eq!(
        legacy.resolved_stage1,
        counter(r, Counter::ResolvedS1) as usize,
        "{label}: resolved_stage1"
    );
    assert_eq!(
        legacy.recovered_stage2,
        counter(r, Counter::RecoveredS2) as usize,
        "{label}: recovered_stage2"
    );
    assert_eq!(
        legacy.recovered_stage3,
        counter(r, Counter::RecoveredS3) as usize,
        "{label}: recovered_stage3"
    );
    assert_eq!(
        legacy.predicted_valid,
        counter(r, Counter::PredictedValid) as usize,
        "{label}: predicted_valid"
    );
    let alpha = r.profile.as_ref().map_or(0.0, |p| p.alpha_accuracy);
    assert_eq!(
        legacy.alpha_accuracy.to_bits(),
        alpha.to_bits(),
        "{label}: alpha_accuracy bits ({} vs {alpha})",
        legacy.alpha_accuracy
    );
}

/// Run `spec` twice: once reconstructing the legacy report shape from
/// the profile, once plain — the reconstruction must be lossless and
/// the two runs deterministic.
fn roundtrip(label: &str, smart: &SmartPsi, q: &PivotedQuery, spec: &RunSpec) {
    let legacy = SmartPsiReport::from_result(smart.run(q, spec));
    let r = smart.run(q, spec);
    assert_equivalent(label, &legacy, &r);
}

// ---------------------------------------------------------------------
// 1. Every historical calling convention, as a RunSpec.
// ---------------------------------------------------------------------

#[test]
fn full_run_roundtrips() {
    let (smart, q) = deployment();
    let r = smart.run(&q, &RunSpec::new());
    assert!(r.count() > 0, "workload must be non-trivial");
    roundtrip("sequential", &smart, &q, &RunSpec::new());
}

#[test]
fn candidate_subset_roundtrips() {
    let (smart, q) = deployment();
    // The full candidate set, thinned to every other node.
    let subset: Vec<NodeId> = psi_core::single::pivot_candidates(smart.graph(), &q)
        .into_iter()
        .step_by(2)
        .collect();
    assert!(subset.len() >= 10, "subset must still take the ML path");
    let spec = RunSpec::new().candidates(subset.clone());
    let r = smart.run(&q, &spec);
    assert_eq!(r.candidates, subset.len());
    roundtrip("candidates(Some)", &smart, &q, &spec);
}

#[test]
fn limited_subset_roundtrips() {
    let (smart, q) = deployment();
    let subset: Vec<NodeId> = psi_core::single::pivot_candidates(smart.graph(), &q);
    roundtrip(
        "candidates+limits",
        &smart,
        &q,
        &RunSpec::new()
            .candidates(subset)
            .limits(EvalLimits::unlimited()),
    );
}

#[test]
fn work_stealing_roundtrips_and_matches_sequential() {
    let (smart, q) = deployment();
    roundtrip("threads(2)", &smart, &q, &RunSpec::new().threads(2));
    let seq = smart.run(&q, &RunSpec::new());
    let par = smart.run(&q, &RunSpec::new().threads(2));
    assert_eq!(seq, par, "pool answers must equal sequential answers");
}

#[test]
fn static_chunks_roundtrips() {
    let (smart, q) = deployment();
    roundtrip("static_chunks(3)", &smart, &q, &RunSpec::new().static_chunks(3));
}

#[test]
fn tuned_work_stealing_roundtrips() {
    let (smart, q) = deployment();
    roundtrip(
        "threads+grab+shared_cache",
        &smart,
        &q,
        &RunSpec::new()
            .threads(4)
            .grab(2)
            .shared_cache(true)
            .limits(EvalLimits::unlimited()),
    );
}

// ---------------------------------------------------------------------
// 2. Profile soundness.
// ---------------------------------------------------------------------

/// A profiled run and an unprofiled run of the same spec produce the
/// same answer — recording is observation, not interference.
#[test]
fn recording_does_not_change_answers() {
    let (smart, q) = deployment();
    let plain = smart.run(&q, &RunSpec::new());
    let spec = RunSpec::new().recorder(Arc::new(MetricsRecorder::new()));
    let recorded = smart.run(&q, &spec);
    assert_eq!(plain.valid, recorded.valid);
    assert_eq!(plain.steps, recorded.steps);
    assert_eq!(plain.unresolved, recorded.unresolved);
    let p = recorded.profile.as_deref().expect("run always attaches a profile");
    assert!(p.recorded, "recorder output must reach the profile");
}

fn check_profile(label: &str, p: &QueryProfile, sequential: bool) {
    assert!(p.reconciles(), "{label}: accounting identity must hold");
    assert!(p.total_wall_ns > 0, "{label}: wall clock must tick");
    if sequential {
        // Phases are disjoint slices of one thread's run: their sum is
        // a lower bound on the total (one-sided — parallel runs sum
        // per-worker time and may legitimately exceed the wall clock).
        let sum = p.phase_total().as_nanos() as u64;
        assert!(
            sum <= p.total_wall_ns + SPAN_EPS_NS,
            "{label}: span sum {sum}ns exceeds total {}ns + eps",
            p.total_wall_ns
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On random deployments, every sequential profile reconciles and
    /// its span sum stays under the total wall time.
    #[test]
    fn sequential_profile_is_sound(
        nodes in 120usize..400,
        edge_factor in 2usize..5,
        labels in 2usize..5,
        seed in 0u64..500,
    ) {
        let g = generators::erdos_renyi(nodes, nodes * edge_factor, labels, seed);
        let Some(q) = rwr::extract_query_seeded(&g, 4, seed ^ 0x5eed) else {
            return Ok(());
        };
        let smart = SmartPsi::new(g, SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        });
        let spec = RunSpec::new().recorder(Arc::new(MetricsRecorder::new()));
        let r = smart.run(&q, &spec);
        let p = r.profile.as_deref().expect("profile always attached");
        check_profile("sequential", p, true);
        // The executor's exact accounting must agree with the result.
        prop_assert_eq!(p.counter(Counter::Candidates), r.candidates as u64);
        prop_assert_eq!(p.counter(Counter::Steps), r.steps);
        prop_assert_eq!(p.counter(Counter::Unresolved), r.unresolved as u64);
        prop_assert_eq!(p.counter(Counter::FailedNodes), r.failures.nodes.len() as u64);
    }

    /// Parallel profiles reconcile too (span sums may exceed wall time
    /// there — per-worker buffers add up — so only the identity and the
    /// result/counter agreement are asserted).
    #[test]
    fn parallel_profile_is_sound(
        threads in 2usize..6,
        seed in 0u64..200,
    ) {
        let g = generators::erdos_renyi(300, 1300, 3, seed);
        let Some(q) = rwr::extract_query_seeded(&g, 4, seed.wrapping_mul(31)) else {
            return Ok(());
        };
        let smart = SmartPsi::new(g, SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        });
        let spec = RunSpec::new()
            .threads(threads)
            .recorder(Arc::new(MetricsRecorder::new()));
        let r = smart.run(&q, &spec);
        let p = r.profile.as_deref().expect("profile always attached");
        check_profile("parallel", p, false);
        prop_assert_eq!(p.counter(Counter::Candidates), r.candidates as u64);
        prop_assert_eq!(p.counter(Counter::Steps), r.steps);
        prop_assert_eq!(p.counter(Counter::Unresolved), r.unresolved as u64);
    }
}
