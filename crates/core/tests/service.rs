//! Differential tests for [`PsiService`]: a persistent worker pool
//! must be an *invisible* optimization. Every answer it produces has
//! to be bit-identical to a fresh sequential [`SmartPsi::run`] of the
//! same query — for any worker count, any submission order, any cache
//! warmth, and under injected chaos.
//!
//! The soundness argument being exercised: the shared cross-query
//! cache only ever stores *confirmed model predictions*, and the
//! models are deterministic per query shape (seeded RNG over the same
//! candidates), so a pre-warmed cache can change which code path
//! resolves a node but never the verdict; and the retry ladder's
//! unlimited stage 3 makes verdicts scheduling-independent.

use std::sync::Arc;

use proptest::prelude::*;
use psi_core::fault::{install_quiet_panic_hook, FaultKind, FaultPlan, ALWAYS};
use psi_core::{
    GraphContext, PsiResult, PsiService, RunSpec, SmartPsi, SmartPsiConfig,
};
use psi_datasets::{generators, rwr};
use psi_graph::PivotedQuery;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Fisher–Yates with the workspace's deterministic RNG (the vendored
/// `rand` has no `SliceRandom`).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

fn deployment(seed: u64) -> (Arc<GraphContext>, Vec<PivotedQuery>) {
    let g = generators::erdos_renyi(350, 1400, 3, seed);
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    };
    let ctx = Arc::new(GraphContext::new(g.clone(), cfg));
    let queries: Vec<_> = (0..8)
        .filter_map(|s| rwr::extract_query_seeded(&g, 3 + (s as usize % 3), seed ^ (s * 977)))
        .collect();
    (ctx, queries)
}

/// Sequential ground truth for each query, computed on a fresh facade
/// with no shared cache.
fn ground_truth(ctx: &Arc<GraphContext>, queries: &[PivotedQuery]) -> Vec<PsiResult> {
    let smart = SmartPsi::from_context(ctx.clone());
    queries.iter().map(|q| smart.run(q, &RunSpec::new())).collect()
}

#[test]
fn shuffled_batches_match_sequential_across_worker_counts() {
    let (ctx, queries) = deployment(91);
    assert!(queries.len() >= 4, "need a real batch");
    let truth = ground_truth(&ctx, &queries);
    for workers in [1usize, 2, 4, 8] {
        let service = PsiService::new(ctx.clone(), workers);
        // Submit each query three times, in a worker-count-dependent
        // shuffled order, so cache warmth and interleaving vary.
        let mut jobs: Vec<usize> = (0..queries.len()).flat_map(|i| [i, i, i]).collect();
        shuffle(&mut jobs, workers as u64);
        let handles: Vec<(usize, _)> = jobs
            .iter()
            .map(|&i| (i, service.submit(queries[i].clone(), RunSpec::new())))
            .collect();
        for (i, h) in handles {
            assert_eq!(
                h.wait(),
                truth[i],
                "workers={workers}: service answer diverged for query {i}"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.queries_served, jobs.len() as u64);
        assert_eq!(stats.worker_panics, 0);
        assert_eq!(stats.distinct_query_shapes, queries.len());
        assert!(
            stats.cross_query_cache_hits > 0,
            "workers={workers}: repeated shapes must reuse the cache"
        );
    }
}

#[test]
fn chaos_jobs_still_match_clean_sequential_answers() {
    install_quiet_panic_hook();
    let (ctx, queries) = deployment(17);
    let truth = ground_truth(&ctx, &queries);
    let service = PsiService::new(ctx, 4);
    // One-shot seeded faults (panics, spurious interrupts, budget
    // burn): per-node isolation plus the retry ladder must absorb all
    // of them, so the *valid set* equals the clean run's. Steps and
    // failure accounting legitimately differ under faults, so compare
    // answers, not whole results.
    let fault = Arc::new(FaultPlan::seeded(5, 0.03, 0.03, 0.02));
    let handles: Vec<_> = queries
        .iter()
        .map(|q| service.submit(q.clone(), RunSpec::new().faults(fault.clone())))
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait();
        assert_eq!(r.valid, truth[i].valid, "chaos changed the answer of query {i}");
        assert_eq!(r.unresolved, 0, "chaos left query {i} unresolved");
    }
}

#[test]
fn job_that_kills_its_worker_is_requeued_then_failed_gracefully() {
    install_quiet_panic_hook();
    let (ctx, queries) = deployment(33);
    let truth = ground_truth(&ctx, &queries);
    let service = PsiService::new(ctx.clone(), 2);
    // A sticky ALWAYS-panic on every candidate of one query, with
    // per-node panic isolation disabled: the job's panic escapes to
    // the service's catch_unwind on every attempt. First attempt is
    // requeued, second produces a structured failure — and the healthy
    // jobs around it are answered correctly throughout.
    let q = &queries[0];
    let every_node: Vec<_> =
        psi_core::single::pivot_candidates(ctx.graph(), q).into_iter().collect();
    let poison = every_node
        .iter()
        .fold(FaultPlan::empty(), |p, &n| p.inject(n, FaultKind::Panic, ALWAYS));
    let poisoned = service.submit(
        q.clone(),
        RunSpec::new()
            .faults(Arc::new(poison))
            .panic_isolation(false),
    );
    let healthy: Vec<_> = queries[1..]
        .iter()
        .map(|hq| service.submit(hq.clone(), RunSpec::new()))
        .collect();

    let failed = poisoned.wait();
    assert!(failed.valid.is_empty());
    assert_eq!(failed.failures.len(), 1, "one structured failure entry");
    assert_eq!(failed.failures.worker_deaths, 2, "both attempts died");
    assert!(
        failed.failures.nodes[0].reason.contains("injected panic"),
        "reason must carry the panic payload: {:?}",
        failed.failures.nodes[0].reason
    );
    for (i, h) in healthy.into_iter().enumerate() {
        assert_eq!(h.wait(), truth[i + 1], "healthy query {} was disturbed", i + 1);
    }
    let stats = service.stats();
    assert_eq!(stats.requeued_jobs, 1, "poisoned job requeued exactly once");
    assert_eq!(stats.worker_panics, 2);
    // All jobs answered, including the failed one.
    assert_eq!(stats.queries_served, queries.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random deployments, worker counts, and submission shuffles —
    /// with and without seeded chaos — never change an answer.
    #[test]
    fn service_is_transparent(
        seed in 0u64..300,
        workers in 1usize..6,
        shuffle_seed in 0u64..1000,
        chaos in any::<bool>(),
    ) {
        install_quiet_panic_hook();
        let (ctx, queries) = deployment(seed);
        if queries.is_empty() {
            return Ok(());
        }
        let truth = ground_truth(&ctx, &queries);
        let service = PsiService::new(ctx, workers);
        let mut jobs: Vec<usize> = (0..queries.len()).flat_map(|i| [i, i]).collect();
        shuffle(&mut jobs, shuffle_seed);
        let fault = chaos.then(|| Arc::new(FaultPlan::seeded(seed ^ 0xc4a5, 0.02, 0.02, 0.01)));
        let handles: Vec<(usize, _)> = jobs
            .iter()
            .map(|&i| {
                let mut spec = RunSpec::new();
                if let Some(f) = &fault {
                    spec = spec.faults(f.clone());
                }
                (i, service.submit(queries[i].clone(), spec))
            })
            .collect();
        for (i, h) in handles {
            let r = h.wait();
            prop_assert_eq!(&r.valid, &truth[i].valid, "query {} diverged", i);
            prop_assert_eq!(r.unresolved, 0);
            if !chaos {
                prop_assert_eq!(&r, &truth[i], "clean run must be bit-identical");
            }
        }
    }
}

// ---------------------------------------------------------------
// Drain, deadlines, and shutdown: the service must answer EVERY
// accepted job exactly once — a result, a DEADLINE_EXPIRED_REASON
// failure, or an ABORTED_BY_SHUTDOWN_REASON failure — no matter how
// rudely it is torn down.
// ---------------------------------------------------------------

use std::time::{Duration, Instant};

use psi_core::{EvalLimits, ABORTED_BY_SHUTDOWN_REASON, DEADLINE_EXPIRED_REASON};

#[test]
fn shutdown_with_zero_grace_aborts_queued_jobs_but_answers_every_handle() {
    let (ctx, queries) = deployment(17);
    let mut service = PsiService::new(ctx, 1);
    let handles: Vec<_> = (0..200)
        .map(|i| service.submit(queries[i % queries.len()].clone(), RunSpec::new()))
        .collect();

    let report = service.shutdown(Duration::ZERO);
    assert!(report.aborted > 0, "zero grace must strand jobs: {report:?}");

    let mut aborted_seen = 0u64;
    for h in handles {
        let r = h.wait(); // never hangs: every slot was filled
        if r.failures.nodes.iter().any(|f| f.reason == ABORTED_BY_SHUTDOWN_REASON) {
            assert!(r.valid.is_empty(), "aborted jobs never ran");
            aborted_seen += 1;
        } else {
            assert_eq!(r.unresolved, 0, "drained jobs are real answers");
        }
    }
    assert_eq!(aborted_seen, report.aborted, "report matches the handles");
    assert_eq!(service.stats().drained, report.drained);

    // Idempotent, and late submissions are refused with the same
    // structured failure rather than queued into a dead pool.
    assert_eq!(service.shutdown(Duration::from_secs(1)), psi_core::DrainReport::default());
    let late = service.submit(queries[0].clone(), RunSpec::new()).wait();
    assert!(
        late.failures.nodes.iter().any(|f| f.reason == ABORTED_BY_SHUTDOWN_REASON),
        "{late:?}"
    );
}

#[test]
fn generous_grace_drains_everything_without_aborts() {
    let (ctx, queries) = deployment(18);
    let truth = ground_truth(&ctx, &queries);
    let mut service = PsiService::new(ctx, 2);
    let handles: Vec<_> = queries
        .iter()
        .map(|q| service.submit(q.clone(), RunSpec::new()))
        .collect();
    let report = service.shutdown(Duration::from_secs(60));
    assert_eq!(report.aborted, 0, "{report:?}");
    assert_eq!(report.drained as usize, queries.len());
    for (h, t) in handles.into_iter().zip(&truth) {
        assert_eq!(h.wait().valid, t.valid, "drained answers stay correct");
    }
}

#[test]
fn jobs_expired_in_queue_report_deadline_expired_and_never_run() {
    let (ctx, queries) = deployment(19);
    let service = PsiService::new(ctx, 1);
    let expired = EvalLimits::unlimited().with_deadline(Instant::now());
    let handles: Vec<_> = (0..8)
        .map(|i| {
            service.submit(
                queries[i % queries.len()].clone(),
                RunSpec::new().limits(expired.clone()),
            )
        })
        .collect();
    for h in handles {
        let r = h.wait();
        assert!(r.valid.is_empty(), "expired jobs must not run: {r:?}");
        assert_eq!(r.failures.nodes.len(), 1);
        assert_eq!(r.failures.nodes[0].reason, DEADLINE_EXPIRED_REASON);
    }
    let stats = service.stats();
    assert_eq!(stats.deadline_expired, 8);
    // Expired jobs are ANSWERED (counted served), not lost.
    assert_eq!(stats.queries_served, 8);

    // A live deadline on an empty queue still evaluates normally.
    let roomy = EvalLimits::unlimited().with_deadline(Instant::now() + Duration::from_secs(60));
    let r = service
        .submit(queries[0].clone(), RunSpec::new().limits(roomy))
        .wait();
    assert!(r.failures.is_clean(), "{r:?}");
}

#[test]
fn apply_update_racing_a_drain_keeps_epoch_and_answer_invariants() {
    use psi_graph::GraphUpdate;
    use std::sync::RwLock;

    let g = generators::erdos_renyi(350, 1400, 3, 23);
    let queries: Vec<_> = (0..4)
        .filter_map(|s| rwr::extract_query_seeded(&g, 3, 23 ^ (s * 977)))
        .collect();
    assert!(!queries.is_empty());
    let label_capacity = g.label_count();
    let smart = SmartPsi::new(g, SmartPsiConfig::default());
    let service = Arc::new(RwLock::new(
        smart
            .deploy(&psi_core::DeploymentSpec::new().workers(2).evolving(label_capacity))
            .into_service(),
    ));

    // A mutator thread interleaves updates and submissions through the
    // read lock (the same aliasing discipline the network front door
    // uses) while the main thread drains through the write lock.
    let mutator = {
        let service = Arc::clone(&service);
        let queries = queries.clone();
        std::thread::spawn(move || {
            let mut handles = Vec::new();
            let mut epochs = 0u64;
            for round in 0..50u32 {
                let Ok(svc) = service.read() else { break };
                let update = [GraphUpdate::AddNode { label: (round % 3) as u16 }];
                match svc.apply_update(&update) {
                    Ok(report) => {
                        epochs += 1;
                        assert_eq!(report.epoch, epochs, "epochs stay dense");
                    }
                    // After the drain flips the shutdown flag the
                    // deployment is read-only; that is a clean stop.
                    Err(_) => break,
                }
                handles.push(svc.submit(queries[round as usize % queries.len()].clone(), RunSpec::new()));
            }
            (handles, epochs)
        })
    };

    std::thread::sleep(Duration::from_millis(20));
    let report = service.write().unwrap().shutdown(Duration::from_secs(30));
    let (handles, epochs) = mutator.join().expect("mutator thread");

    // Every job submitted before the drain completes resolves: a real
    // answer or the structured abort — nothing hangs, nothing is lost.
    let mut answered = 0u64;
    for h in handles {
        let r = h.wait();
        let aborted = r
            .failures
            .nodes
            .iter()
            .any(|f| f.reason == ABORTED_BY_SHUTDOWN_REASON);
        assert!(aborted || r.unresolved == 0, "{r:?}");
        answered += 1;
    }
    assert!(answered > 0);
    assert!(epochs > 0, "the race must exercise at least one update");
    let stats = service.read().unwrap().stats();
    assert_eq!(stats.graph_epoch, epochs, "final epoch matches applied updates");
    assert_eq!(stats.drained, report.drained);
}
