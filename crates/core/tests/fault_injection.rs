//! Differential fault-injection tests for the PSI executors.
//!
//! The contract under test (DESIGN.md §11): a deterministic
//! [`FaultPlan`] keyed by data node id produces the *same* fault
//! schedule for every worker count and executor; panic isolation plus
//! the retry/escalation ladder turn every recoverable fault back into
//! an exact answer, and every unrecoverable fault into one accounted
//! entry in the result's [`FailureReport`] — never an abort, never a
//! silently dropped candidate.

use proptest::prelude::*;
use psi_core::fault::{ALWAYS, ONCE};
use psi_core::obs::Counter;
use psi_core::single::{psi_with_strategy, RunOptions};
use psi_core::twothread::two_threaded_psi;
use psi_core::{
    install_quiet_panic_hook, FaultKind, FaultPlan, PsiResult, RunSpec, SmartPsi, SmartPsiConfig,
    Strategy,
};
use psi_datasets::{generators, rwr};
use psi_graph::{NodeId, PivotedQuery};
use std::sync::Arc;

/// Stage counter from the result's attached profile (0 if absent).
fn counter(r: &PsiResult, c: Counter) -> u64 {
    r.profile.as_ref().map_or(0, |p| p.counter(c))
}

/// A deployment big enough to take the ML + pool path (~100+
/// candidates), built fresh per call so per-plan one-shot fault state
/// never leaks between runs.
fn deployment(fault: Option<Arc<FaultPlan>>) -> (SmartPsi, PivotedQuery) {
    let g = generators::erdos_renyi(600, 2600, 3, 17);
    let q = rwr::extract_query_seeded(&g, 5, 11).expect("query extraction");
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        fault,
        ..SmartPsiConfig::default()
    };
    (SmartPsi::new(g, cfg), q)
}

fn candidate_nodes(smart: &SmartPsi, q: &PivotedQuery) -> Vec<NodeId> {
    psi_core::single::pivot_candidates(smart.graph(), q)
}

// ---------------------------------------------------------------------
// Recoverable faults: the answer stays exact.
// ---------------------------------------------------------------------

/// One-shot seeded chaos (panics + spurious interrupts + budget burns
/// on ~15% of nodes) must be fully absorbed by the retry ladder: the
/// valid set is byte-identical to the clean run for every worker
/// count, with zero failed nodes and zero unresolved.
#[test]
fn determinism_across_worker_counts_under_seeded_faults() {
    install_quiet_panic_hook();
    let (clean_smart, q) = deployment(None);
    let clean = clean_smart.run(&q, &RunSpec::new());
    assert!(clean.candidates >= 10, "needs the ML path");

    for threads in [1usize, 2, 4, 8] {
        let plan = Arc::new(FaultPlan::seeded(7, 0.05, 0.05, 0.05));
        let (smart, q) = deployment(Some(plan));
        let r = smart.run(&q, &RunSpec::new().threads(threads));
        assert_eq!(
            r.valid, clean.valid,
            "threads={threads}: one-shot faults must all be recovered"
        );
        assert!(
            r.failures.nodes.is_empty(),
            "threads={threads}: no node may fail under one-shot faults: {:?}",
            r.failures.nodes
        );
        assert_eq!(r.unresolved, 0, "threads={threads}");
        assert!(
            r.failures.panics_recovered + r.failures.escalations > 0,
            "threads={threads}: the drill must actually fire faults"
        );
    }
}

/// Budget burns force the stage-1 budget to fire; the ladder escalates
/// and the node still resolves: `unresolved == 0` and the answer is
/// exact for a SmartPSI run without a global deadline (the PR's
/// acceptance criterion).
#[test]
fn burned_budgets_escalate_and_recover() {
    install_quiet_panic_hook();
    let (clean_smart, q) = deployment(None);
    let clean = clean_smart.run(&q, &RunSpec::new());

    // Burn on *every* candidate, every attempt: only the unlimited
    // exact fallback (where a burn costs steps but cannot interrupt)
    // is guaranteed to finish, so this exercises the whole ladder.
    let all = candidate_nodes(&clean_smart, &q);
    let plan = all
        .iter()
        .fold(FaultPlan::empty(), |p, &n| p.inject(n, FaultKind::BurnSteps(2000), ALWAYS));
    let (smart, q) = deployment(Some(Arc::new(plan)));
    let r = smart.run(&q, &RunSpec::new());

    assert_eq!(r.valid, clean.valid, "burns never change verdicts");
    assert_eq!(r.unresolved, 0, "no global deadline: everything resolves");
    assert!(r.failures.nodes.is_empty());
    assert!(
        r.failures.escalations > 0,
        "sticky burns must trigger budget escalation"
    );
    assert_eq!(
        counter(&r, Counter::TrainedNodes)
            + counter(&r, Counter::ResolvedS1)
            + counter(&r, Counter::RecoveredS2)
            + counter(&r, Counter::RecoveredS3),
        r.candidates as u64,
        "complete stage accounting"
    );
}

/// A worker thread killed mid-run loses only its in-flight grab: the
/// pool survives, the parent requeues the grab, and the final answer
/// is exact. (The pre-fault executor `expect`-aborted here.)
#[test]
fn killed_worker_grab_is_requeued_and_the_answer_stays_exact() {
    install_quiet_panic_hook();
    let (clean_smart, q) = deployment(None);
    let clean = clean_smart.run(&q, &RunSpec::new());

    // Arm a one-shot kill on every candidate and make the first grab
    // span the whole queue: whichever worker grabs first dies
    // deterministically, the other exits cleanly, and the parent must
    // requeue the entire grab.
    let all = candidate_nodes(&clean_smart, &q);
    let plan = all
        .iter()
        .fold(FaultPlan::empty(), |p, &n| p.inject(n, FaultKind::KillWorker, ONCE));
    let (smart, q) = deployment(Some(Arc::new(plan)));
    let r = smart.run(&q, &RunSpec::new().threads(2).grab(1_000_000));

    assert_eq!(r.valid, clean.valid, "requeued run is exact");
    assert_eq!(r.unresolved, 0);
    assert!(r.failures.nodes.is_empty());
    assert_eq!(r.failures.worker_deaths, 1, "exactly one worker grabs, dies");
    assert!(
        r.failures.requeued > 0,
        "the dead worker's grab must be requeued"
    );
}

/// Many small grabs, several kills: each kill costs one worker and one
/// requeued grab, and as long as one worker survives the queue drains
/// completely.
#[test]
fn multiple_worker_deaths_with_small_grabs_still_drain_the_queue() {
    install_quiet_panic_hook();
    let (clean_smart, q) = deployment(None);
    let clean = clean_smart.run(&q, &RunSpec::new());
    let all = candidate_nodes(&clean_smart, &q);
    // Kill on three spread-out candidates (training or rest — kills on
    // training nodes are simply never consulted).
    let kills = [all[0], all[all.len() / 2], all[all.len() - 1]];
    let plan = kills
        .iter()
        .fold(FaultPlan::empty(), |p, &n| p.inject(n, FaultKind::KillWorker, ONCE));
    let (smart, q) = deployment(Some(Arc::new(plan)));
    let r = smart.run(&q, &RunSpec::new().threads(8).grab(2));

    assert_eq!(r.valid, clean.valid);
    assert_eq!(r.unresolved, 0);
    assert!(r.failures.worker_deaths <= kills.len());
    // Each dead worker drops exactly its in-flight grab. Grabs hold 2
    // nodes except the queue's tail grab, which holds however many
    // survivors remain — so the requeue total is bounded by the grab
    // size per death, not pinned to it.
    assert!(
        r.failures.requeued >= r.failures.worker_deaths
            && r.failures.requeued <= r.failures.worker_deaths * 2,
        "each dead worker drops exactly its in-flight grab of <= 2: \
         {} deaths, {} requeued",
        r.failures.worker_deaths,
        r.failures.requeued
    );
}

// ---------------------------------------------------------------------
// Unrecoverable faults: accounted, never dropped.
// ---------------------------------------------------------------------

/// A node whose matcher always claims "interrupted" without any budget
/// having fired is broken; the ladder must give up on it, record it,
/// and leave every other node untouched.
#[test]
fn sticky_spurious_interrupt_is_an_accounted_failure() {
    install_quiet_panic_hook();
    let (clean_smart, q) = deployment(None);
    let clean = clean_smart.run(&q, &RunSpec::new());
    let victim = *candidate_nodes(&clean_smart, &q).last().expect("candidates");

    let plan = FaultPlan::empty().inject(victim, FaultKind::SpuriousInterrupt, ALWAYS);
    let (smart, q) = deployment(Some(Arc::new(plan)));
    let r = smart.run(&q, &RunSpec::new());

    let expect_valid: Vec<NodeId> =
        clean.valid.iter().copied().filter(|&u| u != victim).collect();
    assert_eq!(r.valid, expect_valid);
    assert_eq!(r.unresolved, 0, "a failure is not an unresolved node");
    assert_eq!(r.failures.len(), 1);
    assert_eq!(r.failures.nodes[0].node, victim);
    assert!(r.failures.nodes[0].attempts >= 1);
}

/// The single-strategy runners isolate a panicking node and keep
/// sweeping.
#[test]
fn single_runner_isolates_a_panicking_node() {
    install_quiet_panic_hook();
    let g = generators::erdos_renyi(300, 1200, 3, 5);
    let q = rwr::extract_query_seeded(&g, 4, 3).expect("query");
    let clean = psi_with_strategy(&g, &q, Strategy::pessimistic(), &RunOptions::default());
    let victim = *psi_core::single::pivot_candidates(&g, &q).first().expect("candidates");

    let opts = RunOptions {
        fault: Some(Arc::new(FaultPlan::panic_on(&[victim]))),
        ..RunOptions::default()
    };
    let r = psi_with_strategy(&g, &q, Strategy::pessimistic(), &opts);

    let expect_valid: Vec<NodeId> =
        clean.valid.iter().copied().filter(|&u| u != victim).collect();
    assert_eq!(r.valid, expect_valid);
    assert_eq!(r.failures.len(), 1);
    assert_eq!(r.failures.nodes[0].node, victim);
    assert!(r.failures.nodes[0].reason.contains("injected panic"));
}

/// In the two-threaded race a one-shot panic loses the race for that
/// node while the surviving side still decides it; only a node where
/// *both* sides panic fails.
#[test]
fn twothread_survives_one_sided_panics_and_records_two_sided_ones() {
    install_quiet_panic_hook();
    let g = generators::erdos_renyi(300, 1200, 3, 5);
    let q = rwr::extract_query_seeded(&g, 4, 3).expect("query");
    let clean = two_threaded_psi(&g, &q, &RunOptions::default());
    let candidates = psi_core::single::pivot_candidates(&g, &q);
    let (one_sided, two_sided) = (candidates[0], candidates[candidates.len() - 1]);

    let plan = FaultPlan::empty()
        .inject(one_sided, FaultKind::Panic, ONCE) // one racer absorbs it
        .inject(two_sided, FaultKind::Panic, ALWAYS); // both racers die
    let opts = RunOptions {
        fault: Some(Arc::new(plan)),
        ..RunOptions::default()
    };
    let r = two_threaded_psi(&g, &q, &opts);

    let expect_valid: Vec<NodeId> =
        clean.valid.iter().copied().filter(|&u| u != two_sided).collect();
    assert_eq!(r.valid, expect_valid, "one-sided panic must not change the verdict");
    assert_eq!(r.failures.len(), 1);
    assert_eq!(r.failures.nodes[0].node, two_sided);
    assert!(r.failures.panics_recovered >= 3, "1 one-sided + 2 two-sided panics");
}

// ---------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------

fn proptest_deployment(seed: u32, fault: Option<Arc<FaultPlan>>) -> Option<(SmartPsi, PivotedQuery)> {
    let g = generators::erdos_renyi(250, 900, 3, u64::from(seed));
    let q = rwr::extract_query_seeded(&g, 4, u64::from(seed).wrapping_mul(31))?;
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        fault,
        ..SmartPsiConfig::default()
    };
    Some((SmartPsi::new(g, cfg), q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A [`ChaosMatcher`] carrying an *empty* plan is byte-identical to
    /// the bare evaluator — same valid set, same step counts, same
    /// stage accounting — so the fault machinery provably costs
    /// nothing on the clean path but the plan lookup.
    #[test]
    fn empty_fault_plan_is_byte_identical_to_a_clean_run(seed in 0u32..1000) {
        let Some((clean_smart, q)) = proptest_deployment(seed, None) else {
            return Ok(());
        };
        let Some((chaos_smart, _)) =
            proptest_deployment(seed, Some(Arc::new(FaultPlan::empty()))) else {
            return Ok(());
        };
        let a = clean_smart.run(&q, &RunSpec::new());
        let b = chaos_smart.run(&q, &RunSpec::new());
        prop_assert_eq!(&a.valid, &b.valid);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.candidates, b.candidates);
        prop_assert_eq!(a.unresolved, b.unresolved);
        // Natural budget escalations (§4.2.2 plan timing) may occur on
        // a clean run too; what matters is that the chaos wrapper adds
        // nothing to them.
        prop_assert_eq!(&a.failures, &b.failures);
        prop_assert!(b.failures.is_empty(), "no failed nodes without faults");
        prop_assert_eq!(b.failures.panics_recovered, 0);
        for c in [
            Counter::TrainedNodes,
            Counter::ResolvedS1,
            Counter::RecoveredS2,
            Counter::RecoveredS3,
        ] {
            prop_assert_eq!(counter(&a, c), counter(&b, c), "counter {}", c.name());
        }
    }

    /// k sticky panics on arbitrary candidates: the parallel executor
    /// returns the correct valid set for every non-faulted node and
    /// exactly k accounted failures — no aborts, no lost nodes.
    #[test]
    fn sticky_panics_fail_exactly_the_faulted_nodes(
        seed in 0u32..1000,
        picks in proptest::collection::vec(0usize..1_000_000, 1..4usize),
    ) {
        install_quiet_panic_hook();
        let Some((clean_smart, q)) = proptest_deployment(seed, None) else {
            return Ok(());
        };
        let clean = clean_smart.run(&q, &RunSpec::new());
        let candidates = candidate_nodes(&clean_smart, &q);
        if candidates.is_empty() {
            return Ok(());
        }
        let mut faulted: Vec<NodeId> =
            picks.iter().map(|ix| candidates[ix % candidates.len()]).collect();
        faulted.sort_unstable();
        faulted.dedup();

        let Some((smart, q)) =
            proptest_deployment(seed, Some(Arc::new(FaultPlan::panic_on(&faulted)))) else {
            return Ok(());
        };
        let r = smart.run(&q, &RunSpec::new().threads(4));

        let expect_valid: Vec<NodeId> = clean
            .valid
            .iter()
            .copied()
            .filter(|u| faulted.binary_search(u).is_err())
            .collect();
        prop_assert_eq!(&r.valid, &expect_valid);
        let failed: Vec<NodeId> = r.failures.nodes.iter().map(|f| f.node).collect();
        prop_assert_eq!(&failed, &faulted, "exactly the faulted nodes fail");
        prop_assert_eq!(r.unresolved, 0);
        prop_assert!(r.failures.panics_recovered >= faulted.len() as u64);
        prop_assert_eq!(
            counter(&r, Counter::TrainedNodes)
                + counter(&r, Counter::ResolvedS1)
                + counter(&r, Counter::RecoveredS2)
                + counter(&r, Counter::RecoveredS3)
                + r.failures.len() as u64,
            r.candidates as u64,
            "every candidate is accounted: trained, staged or failed"
        );
    }
}
