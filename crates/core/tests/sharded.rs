//! Differential suite for [`ShardedService`]: scatter-gather serving
//! over a range-partitioned graph must be an *invisible* deployment
//! choice. Every merged answer has to match a single-context run of
//! the same query — for any shard count, any worker count, any cache
//! warmth, under injected chaos, and across interleaved update
//! streams.
//!
//! What "match" means is deliberately two-tiered:
//!
//! * **Answer projection** (valid set, candidate count, unresolved
//!   count, failure nodes) is compared across *different partitions* —
//!   per-shard training samples differ, so steps and escalation
//!   accounting legitimately differ while verdicts cannot (the retry
//!   ladder's unlimited stage 3 is partition-independent).
//! * **Full [`PsiResult`] equality** (steps and failure accounting
//!   included) is asserted wherever determinism is claimed: a 1-shard
//!   deployment against the sequential engine, a fixed partition
//!   across worker counts and cache warmth, and the job-death mirror
//!   against a single-context [`PsiService`].
//!
//! The halo tests prove the exactness theorem in both directions: with
//! halo depth ≥ the query pivot's eccentricity every D-ball is
//! resident and answers are exact; one level shallower is *detectably
//! wrong* on a crafted query whose outermost embedding edge joins two
//! distance-D nodes.

use std::sync::Arc;

use proptest::prelude::*;
use psi_core::fault::{install_quiet_panic_hook, FaultKind, FaultPlan, ALWAYS, ONCE};
use psi_core::{
    GraphContext, PsiResult, PsiService, RunSpec, ShardBalance, ShardSpec, ShardedService,
    SmartPsi, SmartPsiConfig, UpdateError,
};
use psi_datasets::{generators, rwr};
use psi_graph::dynamic::DynamicGraph;
use psi_graph::{GraphBuilder, GraphUpdate, NodeId, PivotedQuery};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn config() -> SmartPsiConfig {
    SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    }
}

fn deployment(seed: u64) -> (Arc<GraphContext>, Vec<PivotedQuery>) {
    let g = generators::erdos_renyi(350, 1400, 3, seed);
    let ctx = Arc::new(GraphContext::new(g.clone(), config()));
    let queries: Vec<_> = (0..8)
        .filter_map(|s| rwr::extract_query_seeded(&g, 3 + (s as usize % 3), seed ^ (s * 977)))
        .collect();
    (ctx, queries)
}

fn ground_truth(ctx: &Arc<GraphContext>, queries: &[PivotedQuery]) -> Vec<PsiResult> {
    let smart = SmartPsi::from_context(ctx.clone());
    queries.iter().map(|q| smart.run(q, &RunSpec::new())).collect()
}

/// The partition-independent slice of a result: verdicts and failure
/// placement, without the scheduling/training-dependent cost fields.
fn projection(r: &PsiResult) -> (Vec<NodeId>, usize, usize, Vec<(NodeId, String)>) {
    (
        r.valid.clone(),
        r.candidates,
        r.unresolved,
        r.failures.nodes.iter().map(|f| (f.node, f.reason.clone())).collect(),
    )
}

/// Pivot eccentricity inside the query graph.
fn ecc(q: &PivotedQuery) -> u32 {
    q.graph()
        .bfs_distances(q.pivot())
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

#[test]
fn scatter_gather_matches_sequential_across_shard_and_worker_counts() {
    let (ctx, queries) = deployment(91);
    assert!(queries.len() >= 6, "need a real batch");
    let truth = ground_truth(&ctx, &queries);
    for shards in [1usize, 2, 4, 8] {
        for workers in [1usize, 2, 4] {
            let spec = ShardSpec::new(shards).workers_per_shard(workers);
            let service = ShardedService::new(&ctx, &spec);
            assert_eq!(service.shard_count(), shards);
            let handles: Vec<_> = queries
                .iter()
                .map(|q| service.submit(q.clone(), RunSpec::new()).expect("within halo"))
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let merged = h.wait();
                if shards == 1 {
                    // One shard = the whole graph in one context with
                    // the same candidate order: bit-identical, steps
                    // included.
                    assert_eq!(
                        merged, truth[i],
                        "shards=1 workers={workers}: diverged on query {i}"
                    );
                } else {
                    assert_eq!(
                        projection(&merged),
                        projection(&truth[i]),
                        "shards={shards} workers={workers}: diverged on query {i}"
                    );
                }
            }
            // Every routed shard job is accounted: the fanout counter
            // equals the sum of per-shard served queries.
            let fanout = service.metrics().counter(psi_core::obs::Counter::ShardFanout);
            let per_shard: u64 =
                (0..shards).map(|s| service.shard_stats(s).queries_served).sum();
            assert_eq!(fanout, per_shard, "shards={shards}: fanout vs shard jobs");
            assert!(fanout >= queries.len() as u64, "every query routes somewhere");
            assert_eq!(service.stats().worker_panics, 0);
        }
    }
}

#[test]
fn fixed_partition_is_bit_identical_across_worker_counts_and_cache_warmth() {
    let (ctx, queries) = deployment(57);
    let spec = |w: usize| ShardSpec::new(4).workers_per_shard(w);
    // Reference pass: 1 worker per shard, cold caches, submit-and-wait
    // so cache warming is sequenced deterministically.
    let reference: Vec<PsiResult> = {
        let service = ShardedService::new(&ctx, &spec(1));
        queries
            .iter()
            .flat_map(|q| {
                [
                    service.submit(q.clone(), RunSpec::new()).expect("within halo").wait(),
                    // warm repeat
                    service.submit(q.clone(), RunSpec::new()).expect("within halo").wait(),
                ]
            })
            .collect()
    };
    for workers in [2usize, 4] {
        let service = ShardedService::new(&ctx, &spec(workers));
        let results: Vec<PsiResult> = queries
            .iter()
            .flat_map(|q| {
                [
                    service.submit(q.clone(), RunSpec::new()).expect("within halo").wait(),
                    service.submit(q.clone(), RunSpec::new()).expect("within halo").wait(),
                ]
            })
            .collect();
        assert_eq!(
            results, reference,
            "workers_per_shard={workers}: same partition must be bit-identical"
        );
        let stats = service.stats();
        assert!(
            stats.cross_query_cache_hits > 0,
            "workers_per_shard={workers}: warm repeats must hit per-shard caches"
        );
    }
}

#[test]
fn label_aware_cut_is_answer_equivalent() {
    let (ctx, queries) = deployment(23);
    let truth = ground_truth(&ctx, &queries);
    let spec = ShardSpec::new(3).balance(ShardBalance::LabelAware);
    let service = ShardedService::new(&ctx, &spec);
    // The cut is still a contiguous cover of the node range.
    let n = ctx.graph().node_count() as NodeId;
    assert_eq!(service.owned_range(0).0, 0);
    assert_eq!(service.owned_range(2).1, n);
    for s in 0..2 {
        assert_eq!(service.owned_range(s).1, service.owned_range(s + 1).0);
    }
    for (i, q) in queries.iter().enumerate() {
        let merged = service
            .submit(q.clone(), RunSpec::new())
            .expect("within halo")
            .wait();
        assert_eq!(
            projection(&merged),
            projection(&truth[i]),
            "label-aware cut diverged on query {i}"
        );
    }
}

#[test]
fn seeded_chaos_preserves_answers() {
    install_quiet_panic_hook();
    let (ctx, queries) = deployment(17);
    let truth = ground_truth(&ctx, &queries);
    let service = ShardedService::new(&ctx, &ShardSpec::new(3).workers_per_shard(2));
    // Per-submit seeded chaos: the projection materializes each
    // shard's share of the one-shot draws, per-node isolation and the
    // retry ladder absorb all of them, so valid sets match the clean
    // truth. Steps legitimately differ under faults.
    let fault = Arc::new(FaultPlan::seeded(5, 0.03, 0.03, 0.02));
    let handles: Vec<_> = queries
        .iter()
        .map(|q| {
            service
                .submit(q.clone(), RunSpec::new().faults(fault.clone()))
                .expect("within halo")
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait();
        assert_eq!(r.valid, truth[i].valid, "chaos changed the answer of query {i}");
        assert_eq!(r.unresolved, 0, "chaos left query {i} unresolved");
    }
}

#[test]
fn job_death_mirrors_the_single_context_service() {
    install_quiet_panic_hook();
    let (ctx, queries) = deployment(33);
    let truth = ground_truth(&ctx, &queries);
    let q = &queries[0];
    // A sticky ALWAYS-panic on every candidate with per-node isolation
    // off: in both deployments every attempt of the poisoned job dies,
    // is requeued once, dies again, and collapses to the structured
    // empty-result-plus-failure shape. The sharded merge must
    // reproduce the single-context result bit-for-bit — including the
    // panic reason, whose embedded node id the merge translates back
    // to global space.
    let poison = || {
        Arc::new(
            psi_core::single::pivot_candidates(ctx.graph(), q)
                .into_iter()
                .fold(FaultPlan::empty(), |p, n| p.inject(n, FaultKind::Panic, ALWAYS)),
        )
    };
    let single = PsiService::new(ctx.clone(), 2);
    let single_failed = single
        .submit(q.clone(), RunSpec::new().faults(poison()).panic_isolation(false))
        .wait();
    assert_eq!(single_failed.failures.worker_deaths, 2, "both attempts died");

    let sharded = ShardedService::new(&ctx, &ShardSpec::new(4).workers_per_shard(2));
    let poisoned = sharded
        .submit(q.clone(), RunSpec::new().faults(poison()).panic_isolation(false))
        .expect("within halo");
    // Healthy traffic around the poisoned job stays exact.
    let healthy: Vec<_> = queries[1..]
        .iter()
        .map(|hq| sharded.submit(hq.clone(), RunSpec::new()).expect("within halo"))
        .collect();
    let merged = poisoned.wait();
    // The panic payload names whichever poisoned candidate the dying
    // attempt evaluated first — rank-order-dependent, so the embedded
    // node id may differ between deployments. Everything else must be
    // bit-identical, and *both* payloads must name a real poisoned
    // candidate in global id space (proving the sharded merge
    // translated the shard-local payload back correctly).
    let payload_node = |r: &PsiResult| -> u32 {
        let reason = &r.failures.nodes[0].reason;
        reason
            .strip_prefix("injected panic (node ")
            .and_then(|s| s.strip_suffix(')'))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unexpected payload shape: {reason:?}"))
    };
    let poisoned_set = psi_core::single::pivot_candidates(ctx.graph(), q);
    for r in [&merged, &single_failed] {
        assert!(poisoned_set.contains(&payload_node(r)), "payload not a candidate");
    }
    let mut normalized = merged.clone();
    normalized.failures.nodes[0].reason = single_failed.failures.nodes[0].reason.clone();
    assert_eq!(normalized, single_failed, "job-death shape diverged");
    for (i, h) in healthy.into_iter().enumerate() {
        assert_eq!(
            projection(&h.wait()),
            projection(&truth[i + 1]),
            "healthy query {} was disturbed",
            i + 1
        );
    }
    let requeues: u64 = (0..4).map(|s| sharded.shard_stats(s).requeued_jobs).sum();
    assert!(requeues >= 1, "a poisoned shard job must requeue before failing");
}

#[test]
fn one_shot_panic_requeues_the_shard_job_then_recovers() {
    install_quiet_panic_hook();
    let (ctx, queries) = deployment(71);
    let truth = ground_truth(&ctx, &queries);
    let q = &queries[0];
    let victim = *psi_core::single::pivot_candidates(ctx.graph(), q)
        .first()
        .expect("query has candidates");
    // A one-shot panic with per-node isolation off kills exactly one
    // shard's job on its first attempt. The shard-job boundary absorbs
    // it: the job is requeued, the retry — with the one-shot budget
    // consumed — answers cleanly, and the merged result is
    // indistinguishable from an unfaulted run.
    let sharded = ShardedService::new(&ctx, &ShardSpec::new(4).workers_per_shard(2));
    let plan = Arc::new(FaultPlan::empty().inject(victim, FaultKind::Panic, ONCE));
    let r = sharded
        .submit(q.clone(), RunSpec::new().faults(plan).panic_isolation(false))
        .expect("within halo")
        .wait();
    assert_eq!(r.valid, truth[0].valid, "recovery changed the answer");
    assert_eq!(r.unresolved, 0);
    assert!(r.failures.nodes.is_empty(), "the retry answered cleanly");
    let requeues: u64 = (0..4).map(|s| sharded.shard_stats(s).requeued_jobs).sum();
    assert_eq!(requeues, 1, "exactly one shard job died and was requeued");
    assert_eq!(
        sharded.stats().queries_served,
        sharded.metrics().counter(psi_core::obs::Counter::ShardFanout),
        "all routed shard jobs answered"
    );
}

#[test]
fn worker_kills_inside_shard_pools_requeue_grabs_and_stay_exact() {
    install_quiet_panic_hook();
    let (ctx, queries) = deployment(83);
    let truth = ground_truth(&ctx, &queries);
    let q = &queries[0];
    // Arm a one-shot worker kill on every candidate and run each shard
    // job on its own 2-worker pool with one whole-queue grab: in every
    // shard that reaches the pool stage, whichever pool worker grabs
    // first dies, the in-job parent requeues the grab, and the merged
    // answer stays exact. This is the layer *below* the shard-job
    // boundary — the job survives, so no shard-level requeue happens.
    let plan = Arc::new(
        psi_core::single::pivot_candidates(ctx.graph(), q)
            .into_iter()
            .fold(FaultPlan::empty(), |p, n| p.inject(n, FaultKind::KillWorker, ONCE)),
    );
    let sharded = ShardedService::new(&ctx, &ShardSpec::new(2).workers_per_shard(1));
    let r = sharded
        .submit(q.clone(), RunSpec::new().faults(plan).threads(2).grab(1_000_000))
        .expect("within halo")
        .wait();
    assert_eq!(r.valid, truth[0].valid, "pool-level kills changed the answer");
    assert_eq!(r.unresolved, 0);
    assert!(r.failures.nodes.is_empty());
    assert!(
        r.failures.worker_deaths >= 1,
        "at least one shard pool lost a worker"
    );
    assert!(
        r.failures.requeued >= r.failures.worker_deaths,
        "each dead pool worker's in-flight grab (>= 1 node) was requeued"
    );
    let shard_requeues: u64 = (0..2).map(|s| sharded.shard_stats(s).requeued_jobs).sum();
    assert_eq!(shard_requeues, 0, "pool kills never cross the shard-job boundary");
}

#[test]
fn halo_guard_rejects_queries_deeper_than_the_halo() {
    let g = generators::erdos_renyi(120, 420, 3, 3);
    let ctx = GraphContext::new(g, config());
    let service = ShardedService::new(&ctx, &ShardSpec::new(2).halo_depth(1));
    // A 3-node path pivoted at one end has eccentricity 2 > halo 1.
    let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0)
        .expect("valid query");
    // The serving tier must reject the query as a structured,
    // recoverable error — a client mistake is not a deployment panic.
    let err = match service.submit(q.clone(), RunSpec::new()) {
        Err(e) => e,
        Ok(_) => panic!("too-deep query must be rejected"),
    };
    assert_eq!(
        err,
        psi_core::SubmitError::QueryTooDeep { eccentricity: 2, halo_depth: 1 }
    );
    assert!(err.to_string().contains("eccentricity 2"), "{err}");
    // The deployment survives the rejection and keeps serving.
    let shallow = PivotedQuery::from_parts(&[0, 1], &[(0, 1)], 0).expect("valid query");
    let _ = service.submit(shallow, RunSpec::new()).expect("within halo").wait();
}

/// The deterministic halo-shrink breaker. Query: `v0(a)–v1(b)`,
/// `v1–v2(c)`, `v1–v3(c)`, `v2–v3`; pivot `v0`, eccentricity 2. Data
/// graph: the exact same shape on nodes `0:a, 1:b, 2:c, 3:c`. Cut
/// after node 0 with halo 2: nodes 2 and 3 are members of shard 0
/// (distance 2), the edge `2–3` is retained, and the pivot binding
/// `v0 → 0` is found. With halo 1, nodes 2 and 3 are rim stubs and the
/// `2–3` edge — an embedding edge joining two distance-2 nodes — is
/// dropped, so the undersized deployment *loses the answer*. A simple
/// path query would not notice (every consecutive-path edge has a
/// nearer endpoint inside the halo); the end-triangle is the minimal
/// witness that `D ≥ ecc` is tight.
#[test]
fn undersized_halo_is_detectably_wrong_on_the_end_triangle() {
    let mut b = GraphBuilder::new();
    for l in [0u16, 1, 2, 2] {
        b.add_node(l);
    }
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(1, 3);
    b.add_edge(2, 3);
    let g = b.build().expect("valid data graph");
    let q = PivotedQuery::from_parts(
        &[0, 1, 2, 2],
        &[(0, 1), (1, 2), (1, 3), (2, 3)],
        0,
    )
    .expect("valid query");
    assert_eq!(ecc(&q), 2);
    let ctx = GraphContext::new(g, config());
    let truth = SmartPsi::from_context(Arc::new(GraphContext::new(
        ctx.graph().clone(),
        config(),
    )))
    .run(&q, &RunSpec::new());
    assert_eq!(truth.valid, vec![0], "the pivot binds in the full graph");

    // Exact halo (D = ecc = 2): shard 0 owns only node 0, everything
    // else is halo — answers match.
    let exact = ShardedService::new(&ctx, &ShardSpec::new(4).halo_depth(2));
    assert_eq!(exact.owned_range(0), (0, 1));
    let r = exact
        .submit(q.clone(), RunSpec::new())
        .expect("within halo")
        .wait();
    assert_eq!(r.valid, truth.valid, "halo = ecc must be exact");

    // Undersized halo (D = 1 < ecc): the guard would reject this
    // query, and for good reason — bypassing it loses the binding.
    let shrunk = ShardedService::new(&ctx, &ShardSpec::new(4).halo_depth(1));
    let r = shrunk.submit_unchecked(q, RunSpec::new()).wait();
    assert_ne!(r.valid, truth.valid, "halo = ecc - 1 must be detectably wrong");
    assert!(r.valid.is_empty(), "the boundary-crossing embedding is lost");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random graphs × random cuts × query depths: with halo depth set
    /// to the query pivot's exact eccentricity, (a) every node within
    /// `ecc` of a shard's owned range is resident there, and (b) the
    /// merged answer projection equals the sequential engine's.
    #[test]
    fn exact_eccentricity_halo_is_resident_and_answer_exact(
        seed in 0u64..1000,
        shards in 2usize..=4,
        size in 2usize..=5,
    ) {
        let g = generators::erdos_renyi(160, 560, 3, seed);
        let Some(q) = rwr::extract_query_seeded(&g, size, seed ^ 0x5eed) else {
            return Ok(());
        };
        let d = ecc(&q).max(1);
        let ctx = GraphContext::new(g.clone(), config());
        let service = ShardedService::new(&ctx, &ShardSpec::new(shards).halo_depth(d));

        // (a) D-ball residency, shard by shard, via a global BFS.
        for s in 0..shards {
            let (lo, hi) = service.owned_range(s);
            let residents = service.resident_nodes(s);
            let mut dist = vec![u32::MAX; g.node_count()];
            let mut frontier: Vec<NodeId> = (lo..hi).collect();
            for &u in &frontier {
                dist[u as usize] = 0;
            }
            for _ in 0..d {
                let mut next = Vec::new();
                for &u in &frontier {
                    for &v in g.neighbors(u) {
                        if dist[v as usize] == u32::MAX {
                            dist[v as usize] = 1;
                            next.push(v);
                        }
                    }
                }
                frontier = next;
            }
            for v in 0..g.node_count() as NodeId {
                if dist[v as usize] != u32::MAX {
                    prop_assert!(
                        residents.binary_search(&v).is_ok(),
                        "shard {s}: node {v} within {d} of [{lo},{hi}) not resident"
                    );
                }
            }
        }

        // (b) answers.
        let truth = SmartPsi::from_context(Arc::new(ctx)).run(&q, &RunSpec::new());
        let service_ctx = GraphContext::new(g, config());
        let service = ShardedService::new(&service_ctx, &ShardSpec::new(shards).halo_depth(d));
        let merged = service
            .submit(q, RunSpec::new())
            .expect("within halo")
            .wait();
        prop_assert_eq!(projection(&merged), projection(&truth));
    }
}

// ---------------------------------------------------------------------
// Evolving sharded deployments
// ---------------------------------------------------------------------

/// Label capacity for evolving deployments; update streams stay below.
const CAPACITY: usize = 6;

/// One random update batch (mirrors `evolving.rs`): node appends
/// interleaved with edges over everything valid at that point,
/// duplicates included.
fn random_batch(rng: &mut StdRng, nodes: &mut u32, size: usize) -> Vec<GraphUpdate> {
    let mut batch = vec![GraphUpdate::AddNode {
        label: rng.gen_range(0..CAPACITY as u16),
    }];
    let mut avail = *nodes + 1;
    while batch.len() < size {
        if rng.gen_bool(0.2) {
            batch.push(GraphUpdate::AddNode {
                label: rng.gen_range(0..CAPACITY as u16),
            });
            avail += 1;
            continue;
        }
        let u = rng.gen_range(0..avail);
        let v = rng.gen_range(0..avail);
        if u == v {
            continue;
        }
        let e = GraphUpdate::AddEdge {
            u,
            v,
            label: rng.gen_range(0..CAPACITY as u16),
        };
        batch.push(e);
        if rng.gen_bool(0.25) && batch.len() < size {
            batch.push(e);
        }
    }
    *nodes = avail;
    batch
}

#[test]
fn static_sharded_deployment_rejects_updates() {
    let (ctx, _) = deployment(3);
    let service = ShardedService::new(&ctx, &ShardSpec::new(2));
    let batch = [GraphUpdate::AddNode { label: 0 }];
    assert!(matches!(
        service.apply_update(&batch),
        Err(UpdateError::StaticDeployment)
    ));
}

#[test]
fn evolving_shards_match_a_cold_single_context_of_the_final_graph() {
    let g = generators::erdos_renyi(300, 1100, 3, 41);
    let queries: Vec<_> = (0..5)
        .filter_map(|s| rwr::extract_query_seeded(&g, 3 + (s as usize % 2), 41 ^ (s * 977)))
        .collect();
    assert!(queries.len() >= 3, "need a real batch of queries");
    let mut mirror = DynamicGraph::from_graph(&g);
    let service = ShardedService::new_evolving(
        g,
        config(),
        CAPACITY,
        &ShardSpec::new(3).workers_per_shard(2),
    );
    assert_eq!(service.shard_epochs(), vec![0, 0, 0]);

    let mut rng = StdRng::seed_from_u64(0xc0de);
    let mut nodes = mirror.node_count() as u32;
    for round in 0..3 {
        let batch = random_batch(&mut rng, &mut nodes, 12);
        mirror.apply(&batch).expect("mirror accepts the batch");
        let report = service.apply_update(&batch).expect("sharded update");
        assert!(report.rows_repaired > 0, "round {round}: repairs happened");
        assert!(
            !report.affected_shards.is_empty(),
            "round {round}: every endpoint is resident somewhere"
        );
        assert!(
            report.nodes_added == 0 || report.affected_shards.contains(&2),
            "round {round}: appended nodes land on the last shard"
        );
        // Epochs advance exactly on the affected shards.
        for (s, &e) in report.shard_epochs.iter().enumerate() {
            assert!(e as usize <= round + 1, "round {round}: shard {s} over-bumped");
        }

        // Post-update answers match a cold single-context deployment
        // of the final graph — halo membership, gathered rows, and
        // per-shard epochs all repaired correctly or this diverges.
        let cold = SmartPsi::new(mirror.snapshot(), config());
        for (i, q) in queries.iter().enumerate() {
            let truth = cold.run(q, &RunSpec::new());
            let merged = service
                .submit(q.clone(), RunSpec::new())
                .expect("within halo")
                .wait();
            assert_eq!(
                projection(&merged),
                projection(&truth),
                "round {round}: post-update answer diverged on query {i}"
            );
        }
    }
    // The last shard's open range absorbed every appended node.
    let n = mirror.node_count() as NodeId;
    assert_eq!(service.owned_range(2).1, n);
}

#[test]
fn boundary_updates_repair_both_halos_and_epochs_stay_independent() {
    // A 60-node path graph: locality makes shard blast zones exact,
    // so which shards an update touches is fully predictable.
    let mut b = GraphBuilder::new();
    for i in 0..60u16 {
        b.add_node(i % 3);
    }
    for i in 0..59 {
        b.add_edge(i, i + 1);
    }
    let g = b.build().expect("valid path graph");
    let queries: Vec<_> = (0..4)
        .filter_map(|s| rwr::extract_query_seeded(&g, 3, 7 ^ (s * 131)))
        .collect();
    assert!(!queries.is_empty());
    let mut mirror = DynamicGraph::from_graph(&g);
    let service = ShardedService::new_evolving(
        g,
        config(),
        CAPACITY,
        &ShardSpec::new(2).halo_depth(2),
    );
    assert_eq!(service.owned_range(0), (0, 30));
    assert_eq!(service.owned_range(1), (30, 60));

    let check = |mirror: &DynamicGraph, label: &str| {
        let cold = SmartPsi::new(mirror.snapshot(), config());
        for (i, q) in queries.iter().enumerate() {
            let truth = cold.run(q, &RunSpec::new());
            let merged = service
                .submit(q.clone(), RunSpec::new())
                .expect("within halo")
                .wait();
            assert_eq!(
                projection(&merged),
                projection(&truth),
                "{label}: diverged on query {i}"
            );
        }
    };

    // Interior edge deep inside shard 0: its blast zone (endpoints +
    // the depth−1 repair ball) stays left of shard 1's residents
    // (which reach down to node 27), so only shard 0 republishes.
    let interior = [GraphUpdate::AddEdge { u: 5, v: 7, label: 0 }];
    mirror.apply(&interior).expect("mirror");
    let report = service.apply_update(&interior).expect("interior update");
    assert_eq!(report.affected_shards, vec![0], "interior edge stays local");
    assert_eq!(service.shard_epochs(), vec![1, 0], "shard 1 untouched");
    check(&mirror, "after interior edge");

    // Boundary edge 28–31: node 28 sits in shard 1's halo and node 31
    // in shard 0's, so *both* shards must re-repair their halos — a
    // one-sided repair would leave one shard answering on a stale
    // ghost ring.
    let boundary = [GraphUpdate::AddEdge { u: 28, v: 31, label: 0 }];
    mirror.apply(&boundary).expect("mirror");
    let report = service.apply_update(&boundary).expect("boundary update");
    assert_eq!(report.affected_shards, vec![0, 1], "boundary edge hits both");
    assert_eq!(service.shard_epochs(), vec![2, 1], "independent epochs");
    check(&mirror, "after boundary edge");

    // Append a node hanging off the far end: only the last (open)
    // shard grows; shard 0's snapshot, epoch, and caches are untouched.
    let residents_before = service.resident_nodes(0);
    let append = [
        GraphUpdate::AddNode { label: 1 },
        GraphUpdate::AddEdge { u: 59, v: 60, label: 0 },
    ];
    mirror.apply(&append).expect("mirror");
    let report = service.apply_update(&append).expect("append update");
    assert_eq!(report.nodes_added, 1);
    assert_eq!(report.affected_shards, vec![1], "append lands on the open shard");
    assert_eq!(service.shard_epochs(), vec![2, 2]);
    assert_eq!(service.owned_range(1), (30, 61));
    assert_eq!(
        service.resident_nodes(0),
        residents_before,
        "the untouched shard keeps its snapshot"
    );
    assert!(
        service.resident_nodes(1).binary_search(&60).is_ok(),
        "the new node is resident in its owner"
    );
    check(&mirror, "after append");
}

#[test]
fn sharded_shutdown_sums_per_shard_drain_reports() {
    use psi_core::ABORTED_BY_SHUTDOWN_REASON;
    use std::time::Duration;

    let (ctx, queries) = deployment(77);
    let truth = ground_truth(&ctx, &queries);

    // Generous grace: everything drains, nothing aborts, answers stay
    // exact after the drain.
    let mut service = ShardedService::new(&ctx, &ShardSpec::new(3).workers_per_shard(2));
    let handles: Vec<_> = queries
        .iter()
        .map(|q| service.submit(q.clone(), RunSpec::new()).expect("within halo"))
        .collect();
    let report = service.shutdown(Duration::from_secs(60));
    assert_eq!(report.aborted, 0, "{report:?}");
    // No lower bound on `drained`: jobs the workers finish *before*
    // shutdown is called are not part of the drain report, and on a
    // fast machine that can be most of the backlog.
    for (h, t) in handles.into_iter().zip(&truth) {
        assert_eq!(h.wait().valid, t.valid);
    }

    // Zero grace on a single-worker-per-shard backlog: the aggregate
    // report sees the stranded jobs, and every merged handle still
    // resolves (scatter-gather absorbs per-shard aborts as failures,
    // never hangs). A heavier deployment keeps the queues deep enough
    // that a zero grace is guaranteed to strand work.
    let g = generators::erdos_renyi(1500, 9000, 3, 78);
    let ctx = Arc::new(GraphContext::new(g.clone(), config()));
    let queries: Vec<_> = (0..4)
        .filter_map(|s| rwr::extract_query_seeded(&g, 5, 78 ^ (s * 977)))
        .collect();
    assert!(!queries.is_empty());
    let mut service = ShardedService::new(&ctx, &ShardSpec::new(3).workers_per_shard(1));
    let handles: Vec<_> = (0..200)
        .map(|i| {
            service
                .submit(queries[i % queries.len()].clone(), RunSpec::new())
                .expect("within halo")
        })
        .collect();
    let report = service.shutdown(Duration::ZERO);
    assert!(report.aborted > 0, "zero grace must strand jobs: {report:?}");
    let mut aborted_jobs = 0u64;
    for h in handles {
        let r = h.wait();
        if r.failures
            .nodes
            .iter()
            .any(|f| f.reason == ABORTED_BY_SHUTDOWN_REASON)
        {
            aborted_jobs += 1;
        } else {
            assert_eq!(r.unresolved, 0);
        }
    }
    assert!(aborted_jobs > 0, "aborts surface through merged handles");
}
