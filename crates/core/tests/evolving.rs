//! Differential tests for evolving-graph serving: applying update
//! batches to a live [`PsiService`] must be indistinguishable from
//! tearing everything down and cold-starting an engine on the final
//! graph. Concretely:
//!
//! * every post-update answer is **bit-identical** to a fresh
//!   sequential [`SmartPsi::run`] over a from-scratch deployment of the
//!   final graph — for any worker count and cache warmth,
//! * no prediction cached before an update is ever consulted after it
//!   (prediction caches are keyed by `(epoch, shape)` and retired on
//!   update; [`ServiceStats::cache_invalidations`] prices the
//!   retirements),
//! * the guarantee survives injected chaos (compare valid sets — steps
//!   legitimately differ under faults),
//! * and the underlying incremental signature maintenance stays
//!   bit-exact under random interleaved add-node/add-edge streams at
//!   every supported depth (the core-level extension of
//!   `psi-signature`'s `random_evolution_stays_in_sync`).

use std::sync::Arc;

use proptest::prelude::*;
use psi_core::fault::{install_quiet_panic_hook, FaultPlan};
use psi_core::{
    DeploymentSpec, EvolvingContext, GraphContext, PsiResult, PsiService, RunSpec, SmartPsi,
    SmartPsiConfig, UpdateError,
};
use psi_datasets::{generators, rwr};
use psi_graph::dynamic::DynamicGraph;
use psi_graph::{GraphUpdate, PivotedQuery};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Label capacity every evolving deployment in this file is built
/// with; update streams stay below it.
const CAPACITY: usize = 6;

/// Fisher–Yates with the workspace's deterministic RNG (the vendored
/// `rand` has no `SliceRandom`).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

fn config() -> SmartPsiConfig {
    SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    }
}

fn deployment(seed: u64) -> (SmartPsi, DynamicGraph, Vec<PivotedQuery>) {
    let g = generators::erdos_renyi(300, 1100, 3, seed);
    let queries: Vec<_> = (0..5)
        .filter_map(|s| rwr::extract_query_seeded(&g, 3 + (s as usize % 2), seed ^ (s * 977)))
        .collect();
    let mirror = DynamicGraph::from_graph(&g);
    (SmartPsi::new(g, config()), mirror, queries)
}

/// An evolving worker-pool service over `smart`, via the deploy front
/// door.
fn evolving_service(smart: &SmartPsi, workers: usize) -> PsiService {
    smart
        .deploy(&DeploymentSpec::new().workers(workers).evolving(CAPACITY))
        .into_service()
}

/// One random update batch over a graph that currently has `nodes`
/// nodes: node appends interleaved with edges, where edges draw both
/// endpoints — in arbitrary (so frequently descending) id order — from
/// everything valid at that point in the batch, including nodes the
/// batch itself just added, with deliberate duplicate edges mixed in.
fn random_batch(rng: &mut StdRng, nodes: &mut u32, size: usize) -> Vec<GraphUpdate> {
    let mut batch = vec![GraphUpdate::AddNode {
        label: rng.gen_range(0..CAPACITY as u16),
    }];
    let mut avail = *nodes + 1;
    while batch.len() < size {
        if rng.gen_bool(0.2) {
            batch.push(GraphUpdate::AddNode {
                label: rng.gen_range(0..CAPACITY as u16),
            });
            avail += 1;
            continue;
        }
        let u = rng.gen_range(0..avail);
        let v = rng.gen_range(0..avail);
        if u == v {
            continue;
        }
        let e = GraphUpdate::AddEdge {
            u,
            v,
            label: rng.gen_range(0..CAPACITY as u16),
        };
        batch.push(e);
        if rng.gen_bool(0.25) && batch.len() < size {
            batch.push(e); // guaranteed duplicate
        }
    }
    *nodes = avail;
    batch
}

/// Cold ground truth on the mirror's current graph: a from-scratch
/// deployment with no shared cache.
fn ground_truth(mirror: &DynamicGraph, queries: &[PivotedQuery]) -> Vec<PsiResult> {
    let smart = SmartPsi::new(mirror.snapshot(), config());
    queries.iter().map(|q| smart.run(q, &RunSpec::new())).collect()
}

#[test]
fn service_after_updates_matches_cold_engine_across_worker_counts() {
    for workers in [1usize, 2, 4, 8] {
        let (smart, mut mirror, queries) = deployment(41);
        assert!(queries.len() >= 3, "need a real batch of queries");
        let service = evolving_service(&smart, workers);

        // Round 1: warm every shape's cache on epoch 0.
        let handles: Vec<_> = queries
            .iter()
            .map(|q| service.submit(q.clone(), RunSpec::new()))
            .collect();
        let truth0 = ground_truth(&mirror, &queries);
        for (h, t) in handles.into_iter().zip(&truth0) {
            assert_eq!(&h.wait(), t, "workers={workers}: epoch-0 answer diverged");
        }
        let warmed = service.stats();
        assert_eq!(warmed.graph_epoch, 0);
        assert_eq!(warmed.cache_invalidations, 0);
        assert_eq!(warmed.distinct_query_shapes, queries.len());

        // Apply two batches, mirroring them for the cold engine.
        let mut rng = StdRng::seed_from_u64(workers as u64 ^ 0xeb0c);
        let mut nodes = mirror.node_count() as u32;
        for expected_epoch in 1..=2u64 {
            let batch = random_batch(&mut rng, &mut nodes, 12);
            mirror.apply(&batch).unwrap();
            let report = service.apply_update(&batch).unwrap();
            assert_eq!(report.epoch, expected_epoch);
            assert!(report.rows_repaired > 0);
        }
        let updated = service.stats();
        assert_eq!(updated.graph_epoch, 2);
        // Epoch-0 caches were retired (the second batch found the map
        // already empty, which is fine — nothing had refilled it).
        assert_eq!(updated.cache_invalidations, queries.len() as u64);

        // Round 2: answers must be bit-identical to a cold engine on
        // the final graph — impossible if any epoch-0 prediction were
        // still consulted, since the graph around those nodes changed.
        let truth2 = ground_truth(&mirror, &queries);
        let mut jobs: Vec<usize> = (0..queries.len()).flat_map(|i| [i, i]).collect();
        shuffle(&mut jobs, workers as u64);
        let handles: Vec<(usize, _)> = jobs
            .iter()
            .map(|&i| (i, service.submit(queries[i].clone(), RunSpec::new())))
            .collect();
        for (i, h) in handles {
            assert_eq!(
                h.wait(),
                truth2[i],
                "workers={workers}: post-update answer diverged for query {i}"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.worker_panics, 0);
        assert_eq!(
            stats.distinct_query_shapes,
            queries.len(),
            "round-2 caches all live under the new epoch key"
        );
        assert!(
            stats.cross_query_cache_hits > 0,
            "workers={workers}: repeats within epoch 2 must reuse the cache"
        );
    }
}

#[test]
fn updates_under_chaos_preserve_answers() {
    install_quiet_panic_hook();
    let (smart, mut mirror, queries) = deployment(67);
    let service = evolving_service(&smart, 4);
    let fault = Arc::new(FaultPlan::seeded(9, 0.03, 0.03, 0.02));
    let mut rng = StdRng::seed_from_u64(0x51ee);
    let mut nodes = mirror.node_count() as u32;
    for round in 0..3 {
        if round > 0 {
            let batch = random_batch(&mut rng, &mut nodes, 10);
            mirror.apply(&batch).unwrap();
            service.apply_update(&batch).unwrap();
        }
        let truth = ground_truth(&mirror, &queries);
        let handles: Vec<_> = queries
            .iter()
            .map(|q| service.submit(q.clone(), RunSpec::new().faults(fault.clone())))
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let r = h.wait();
            assert_eq!(
                r.valid, truth[i].valid,
                "round {round}: chaos changed the answer of query {i}"
            );
            assert_eq!(r.unresolved, 0, "round {round}: query {i} left unresolved");
        }
    }
    assert_eq!(service.stats().graph_epoch, 2);
}

#[test]
fn static_service_refuses_updates() {
    let g = generators::erdos_renyi(120, 400, 3, 5);
    let service = PsiService::new(Arc::new(GraphContext::new(g, config())), 2);
    let err = service
        .apply_update(&[GraphUpdate::AddNode { label: 0 }])
        .unwrap_err();
    assert!(matches!(err, UpdateError::StaticDeployment));
    let stats = service.stats();
    assert_eq!(stats.graph_epoch, 0);
    assert_eq!(stats.cache_invalidations, 0);
}

#[test]
fn erroneous_batch_leaves_the_service_untouched() {
    let (smart, _mirror, queries) = deployment(23);
    let service = evolving_service(&smart, 2);
    let q = &queries[0];
    let before = service.submit(q.clone(), RunSpec::new()).wait();
    let err = service.apply_update(&[
        GraphUpdate::AddNode { label: 0 },
        GraphUpdate::AddEdge { u: 0, v: 99_999, label: 0 },
    ]);
    assert!(matches!(err, Err(UpdateError::Graph(_))));
    let stats = service.stats();
    assert_eq!(stats.graph_epoch, 0, "failed batch must not publish");
    assert_eq!(stats.cache_invalidations, 0, "failed batch must not drop caches");
    assert_eq!(service.submit(q.clone(), RunSpec::new()).wait(), before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random interleaved update streams (duplicate edges, edges in
    /// arbitrary id order to just-added nodes, multiple depths): the
    /// incrementally maintained snapshot stays bit-exact against a
    /// from-scratch build, and queries against it answer exactly like
    /// a from-scratch engine.
    #[test]
    fn random_interleaved_evolution_stays_in_sync(
        seed in 0u64..200,
        depth in 1u32..5,
        batches in 1usize..4,
    ) {
        let g = generators::erdos_renyi(140, 420, 3, seed);
        let cfg = SmartPsiConfig { depth, ..config() };
        let query = rwr::extract_query_seeded(&g, 3, seed ^ 0xa11);
        let mut ev = EvolvingContext::new(g, cfg.clone(), CAPACITY);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd15c);
        let mut nodes = 140u32;
        for _ in 0..batches {
            let batch = random_batch(&mut rng, &mut nodes, 10);
            ev.apply(&batch).unwrap();
        }
        let snapshot = ev.current();
        let cold = GraphContext::new(snapshot.graph().clone(), cfg.clone());
        prop_assert_eq!(snapshot.epoch(), batches as u64);
        prop_assert_eq!(
            snapshot.signatures().label_count(),
            cold.signatures().label_count()
        );
        for (i, (a, b)) in snapshot
            .signatures()
            .dense()
            .expect("default deployments publish on the dense store")
            .as_flat()
            .iter()
            .zip(cold.signatures().dense().unwrap().as_flat())
            .enumerate()
        {
            prop_assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "signature entry {} diverged from from-scratch build (depth {})",
                i,
                depth
            );
        }
        if let Some(q) = query {
            let evolved = SmartPsi::from_context(snapshot.clone()).run(&q, &RunSpec::new());
            let scratch = SmartPsi::new(snapshot.graph().clone(), cfg).run(&q, &RunSpec::new());
            prop_assert_eq!(evolved, scratch, "evolved snapshot answered unlike a cold engine");
        }
    }
}
