//! Differential tests for the quantized compact signature store: a
//! deployment on [`SigStoreKind::Compact`] must answer every PSI query
//! with exactly the same valid set as the paper's dense f32 backend.
//!
//! Two regimes are exercised:
//!
//! * **Lossless** — when every depth-D signature weight stays below
//!   the u8 cap, quantization at scale `2^D` is exact (depth-D weights
//!   live on the `2^-D` grid), so dequantized rows, scores, features,
//!   and cache keys all match dense bit-for-bit and the entire
//!   [`PsiResult`] is identical.
//! * **Saturated** — a hub-heavy graph clips counters at the cap. The
//!   compact prune is then only *weaker* (monotone quantization can
//!   never turn a satisfying row into a non-satisfying one), so extra
//!   candidates cost steps but the valid set stays exact: stage 3 is
//!   exhaustive.

use proptest::prelude::*;
use psi_core::{DeploymentSpec, RunSpec, SmartPsi, SmartPsiConfig};
use psi_datasets::{generators, rwr, PaperDataset, QueryWorkload};
use psi_graph::builder::GraphBuilder;
use psi_graph::PivotedQuery;
use psi_signature::SigStoreKind;

fn config(kind: SigStoreKind) -> SmartPsiConfig {
    SmartPsiConfig {
        min_candidates_for_ml: 10,
        sig_store: kind,
        ..SmartPsiConfig::default()
    }
}

/// Engines to sweep in the differential runs: sequential, the §4.1
/// two-thread baseline, static chunks, and the work-stealing pool.
fn specs() -> Vec<RunSpec> {
    vec![
        RunSpec::new(),
        RunSpec::new().two_thread(),
        RunSpec::new().static_chunks(3),
        RunSpec::new().threads(4),
    ]
}

#[test]
fn paper_datasets_answer_identically_on_the_compact_store() {
    for (dataset, scale) in [(PaperDataset::Yeast, 0.08), (PaperDataset::Cora, 0.05)] {
        let g = dataset.generate_scaled(scale, 42);
        let w = QueryWorkload::extract(&g, 4, 4, 7).expect("workload on paper dataset");
        let dense = SmartPsi::new(g.clone(), config(SigStoreKind::Dense));
        let compact = SmartPsi::new(g, config(SigStoreKind::Compact));
        assert_eq!(compact.signatures().kind(), SigStoreKind::Compact);
        // The ≤1/3 ratio is a wide-alphabet property (the bench graph's
        // 64 labels give u8+presence = 28% of dense); few-label paper
        // graphs pay a fixed ≥8-byte presence word per row, so here we
        // only require a strict win.
        assert!(
            compact.signatures().index_bytes() < dense.signatures().index_bytes(),
            "compact index must undercut dense"
        );
        for q in &w.queries {
            let want = dense.run(q, &RunSpec::new());
            let got = compact.run(q, &RunSpec::new());
            assert_eq!(want.valid, got.valid, "{dataset:?}: valid set diverged");
        }
    }
}

/// A star around a high-degree hub: the hub's depth-2 leaf-label
/// weight is ~leaves/2 · 1 → far past the u8 cap at scale 4, so the
/// compact row saturates. The valid set must not move.
#[test]
fn saturated_hub_keeps_the_answer_exact() {
    let mut b = GraphBuilder::new();
    b.add_node(0); // hub
    for _ in 0..300 {
        let leaf = b.add_node(1);
        b.add_edge(0, leaf);
    }
    // A second, small motif so queries have non-hub candidates too.
    let a = b.add_node(0);
    let c = b.add_node(1);
    b.add_edge(a, c);
    let g = b.build().expect("star graph");

    let q = PivotedQuery::from_parts(&[0, 1], &[(0, 1)], 0).expect("star query");
    let dense = SmartPsi::new(g.clone(), config(SigStoreKind::Dense));
    let compact = SmartPsi::new(g, config(SigStoreKind::Compact));
    // Prove the regime: at least one quantized hub count is clipped,
    // i.e. dequantizing disagrees with the dense row.
    let mut buf = Vec::new();
    let hub_compact = compact.signatures().row_view(0, &mut buf).to_vec();
    let mut dbuf = Vec::new();
    let hub_dense = dense.signatures().row_view(0, &mut dbuf).to_vec();
    assert_ne!(hub_compact, hub_dense, "hub row must actually saturate");
    for spec in specs() {
        let want = dense.run(&q, &spec);
        let got = compact.run(&q, &spec);
        assert_eq!(want.valid, got.valid, "saturation changed the answer");
        assert_eq!(got.unresolved, 0);
    }
}

#[test]
fn sharded_and_evolving_deployments_agree_with_dense() {
    let g = generators::erdos_renyi(500, 2200, 4, 31);
    let queries: Vec<_> = (0..3)
        .filter_map(|s| rwr::extract_query_seeded(&g, 4, 31 ^ (s * 977)))
        .collect();
    assert!(!queries.is_empty());
    let dense = SmartPsi::new(g.clone(), config(SigStoreKind::Dense));
    let truth: Vec<_> = queries.iter().map(|q| dense.run(q, &RunSpec::new())).collect();

    let smart = SmartPsi::new(g, config(SigStoreKind::Dense));
    let deployments = [
        DeploymentSpec::new().workers(2).sig_store(SigStoreKind::Compact),
        DeploymentSpec::new()
            .workers(2)
            .shards(3)
            .halo(4)
            .sig_store(SigStoreKind::Compact),
        DeploymentSpec::new()
            .workers(2)
            .evolving(8)
            .sig_store(SigStoreKind::Compact),
        DeploymentSpec::new()
            .workers(1)
            .shards(2)
            .halo(4)
            .evolving(8)
            .sig_store(SigStoreKind::Compact),
    ];
    for (d, spec) in deployments.into_iter().enumerate() {
        let mut dep = smart.deploy(&spec);
        for (i, q) in queries.iter().enumerate() {
            let r = dep
                .submit(q.clone(), RunSpec::new())
                .expect("halo covers workload")
                .wait();
            assert_eq!(
                r.valid, truth[i].valid,
                "deployment {d}: compact valid set diverged on query {i}"
            );
        }
        dep.shutdown(std::time::Duration::from_secs(5));
    }
}

/// An evolving compact deployment stays exact across update batches:
/// the f32 maintainer repairs rows and the compact mirror re-quantizes
/// them, so post-update answers match a cold dense engine on the final
/// graph.
#[test]
fn evolving_compact_updates_match_cold_dense_engine() {
    use psi_graph::GraphUpdate;
    let g = generators::erdos_renyi(300, 1100, 3, 77);
    let q = rwr::extract_query_seeded(&g, 4, 13).expect("query");
    let smart = SmartPsi::new(g.clone(), config(SigStoreKind::Dense));
    let dep = smart.deploy(
        &DeploymentSpec::new()
            .workers(2)
            .evolving(6)
            .sig_store(SigStoreKind::Compact),
    );
    let mut mirror = psi_graph::dynamic::DynamicGraph::from_graph(&g);
    let batch = vec![
        GraphUpdate::AddNode { label: 2 },
        GraphUpdate::AddEdge { u: 300, v: 0, label: 0 },
        GraphUpdate::AddEdge { u: 5, v: 300, label: 1 },
    ];
    mirror.apply(&batch).unwrap();
    let epoch = dep.apply_update(&batch).unwrap();
    assert_eq!(epoch, 1);
    let cold = SmartPsi::new(mirror.snapshot(), config(SigStoreKind::Dense));
    let want = cold.run(&q, &RunSpec::new());
    let got = dep.submit(q, RunSpec::new()).unwrap().wait();
    assert_eq!(want.valid, got.valid, "post-update compact answer diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random graphs × depths × every executor: compact deployments in
    /// the lossless regime reproduce the dense backend's full result
    /// (valid set, steps, stage accounting), not just the answer.
    #[test]
    fn random_graphs_lossless_bitwise_equivalence(
        seed in 0u64..500,
        depth in 1u32..4,
    ) {
        let g = generators::erdos_renyi(220, 700, 4, seed);
        let Some(q) = rwr::extract_query_seeded(&g, 3, seed ^ 0xc0ffee) else {
            return Ok(());
        };
        let dense_cfg = SmartPsiConfig { depth, ..config(SigStoreKind::Dense) };
        let compact_cfg = SmartPsiConfig { depth, ..config(SigStoreKind::Compact) };
        let dense = SmartPsi::new(g.clone(), dense_cfg);
        let compact = SmartPsi::new(g, compact_cfg);

        // Only compare bit-exactly when no counter clips: sparse ER
        // graphs at these sizes stay below the cap, but guard anyway.
        let lossless = {
            let mut db = Vec::new();
            let mut cb = Vec::new();
            (0..dense.graph().node_count() as u32).all(|n| {
                dense.signatures().row_view(n, &mut db) == compact.signatures().row_view(n, &mut cb)
            })
        };
        for spec in specs() {
            let want = dense.run(&q, &spec);
            let got = compact.run(&q, &spec);
            prop_assert_eq!(&want.valid, &got.valid, "valid set diverged (depth {})", depth);
            // Every executor — including the two-thread baseline, whose
            // lockstep step bar makes its accounted cost a pure
            // function of the inputs — must cost identically in the
            // lossless regime.
            if lossless {
                prop_assert_eq!(want.steps, got.steps, "lossless runs must cost identically");
                prop_assert_eq!(want.candidates, got.candidates);
                prop_assert_eq!(want.unresolved, got.unresolved);
            }
        }
    }
}
