//! Evaluation limits for per-node PSI searches.
//!
//! SmartPSI's preemptive executor (§4.3) needs three kinds of stop
//! signal: a deterministic *step* budget (`2 × AvgT(method, plan)` of
//! the training phase), an optional wall-clock deadline, and — for the
//! two-threaded baseline — a cross-thread cancel flag raised by
//! whichever thread finishes first.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How often (in steps) [`LimitTracker::step`] polls the cancel flag
/// and deadline. The *first* step always polls, so an already-expired
/// deadline or pre-set cancel flag stops an evaluation immediately
/// instead of burning up to one polling window of work; after that,
/// polling every `POLL_INTERVAL` steps keeps the atomic load and
/// `Instant::now` call off the per-step hot path. Executors may
/// therefore assume an in-flight search unwinds within
/// `POLL_INTERVAL` steps of a stop signal.
pub const POLL_INTERVAL: u64 = 256;

/// Limits for one node evaluation.
#[derive(Debug, Clone, Default)]
pub struct EvalLimits {
    /// Maximum search steps (`0` = unlimited).
    pub max_steps: u64,
    /// Optional wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Optional cross-thread cancel flag.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Optional shared *step-count* cancel bar: the evaluation is
    /// interrupted once its own step counter reaches the published
    /// value (`u64::MAX` = not yet published). Unlike
    /// [`EvalLimits::cancel`], which stops the loser of a race at
    /// whatever step its thread happens to be on when it polls — a
    /// wall-clock-dependent count — this bar makes the interruption
    /// point a pure function of the racers' step counts: the
    /// two-thread baseline's winner publishes its finishing count via
    /// `fetch_min`, and the loser charges exactly that many steps
    /// regardless of OS scheduling ("logical lockstep").
    pub cancel_at: Option<Arc<AtomicU64>>,
}

impl EvalLimits {
    /// No limits.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Step-limited.
    pub fn steps(max_steps: u64) -> Self {
        Self {
            max_steps,
            ..Self::default()
        }
    }

    /// Cancelable limits sharing `flag`.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Limits sharing a step-count cancel bar (see
    /// [`EvalLimits::cancel_at`]).
    pub fn with_cancel_at(mut self, bar: Arc<AtomicU64>) -> Self {
        self.cancel_at = Some(bar);
        self
    }

    /// Limits with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether the *global* stop signals — cancel flag or deadline —
    /// have fired. Ignores `max_steps`, which is a per-evaluation
    /// budget rather than a global one; executors poll this between
    /// work items to stop promptly without threading a tracker through.
    pub fn expired(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

/// Live tracker for one evaluation.
#[derive(Debug)]
pub struct LimitTracker<'a> {
    limits: &'a EvalLimits,
    steps: u64,
    interrupted: bool,
}

impl<'a> LimitTracker<'a> {
    /// Start tracking.
    pub fn new(limits: &'a EvalLimits) -> Self {
        Self {
            limits,
            steps: 0,
            interrupted: false,
        }
    }

    /// Record one step; `false` means the evaluation must unwind.
    #[inline]
    pub fn step(&mut self) -> bool {
        self.steps += 1;
        if self.limits.max_steps != 0 && self.steps >= self.limits.max_steps {
            self.interrupted = true;
            return false;
        }
        if self.steps == 1 || self.steps.is_multiple_of(POLL_INTERVAL) {
            if let Some(c) = &self.limits.cancel {
                if c.load(Ordering::Relaxed) {
                    self.interrupted = true;
                    return false;
                }
            }
            if let Some(d) = self.limits.deadline {
                if Instant::now() >= d {
                    self.interrupted = true;
                    return false;
                }
            }
        }
        // The step-count bar is checked on *every* step, not just at
        // poll points: whether `steps >= bar` holds at a given step is
        // timing-dependent (the bar may be published at any moment),
        // but checking eagerly means the evaluation never runs more
        // than one step past a bar it could have seen — the *charged*
        // cost `min(steps, bar)` stays exact either way, and the
        // wasted overrun stays bounded by the publish latency instead
        // of a full polling window.
        if let Some(t) = &self.limits.cancel_at {
            if self.steps >= t.load(Ordering::Relaxed) {
                self.interrupted = true;
                return false;
            }
        }
        true
    }

    /// Steps consumed.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Whether any limit fired.
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_runs_forever() {
        let l = EvalLimits::unlimited();
        let mut t = LimitTracker::new(&l);
        for _ in 0..100_000 {
            assert!(t.step());
        }
        assert!(!t.interrupted());
    }

    #[test]
    fn step_limit() {
        let l = EvalLimits::steps(3);
        let mut t = LimitTracker::new(&l);
        assert!(t.step());
        assert!(t.step());
        assert!(!t.step());
        assert!(t.interrupted());
        assert_eq!(t.steps_used(), 3);
    }

    #[test]
    fn cancel_flag_checked_periodically() {
        let flag = Arc::new(AtomicBool::new(false));
        let l = EvalLimits::unlimited().with_cancel(flag.clone());
        let mut t = LimitTracker::new(&l);
        for _ in 0..300 {
            assert!(t.step());
        }
        flag.store(true, Ordering::Relaxed);
        let mut fired = false;
        for _ in 0..300 {
            if !t.step() {
                fired = true;
                break;
            }
        }
        assert!(fired);
        assert!(t.interrupted());
    }

    #[test]
    fn expired_tracks_cancel_and_deadline_but_not_steps() {
        assert!(!EvalLimits::steps(1).expired());
        let flag = Arc::new(AtomicBool::new(false));
        let l = EvalLimits::unlimited().with_cancel(flag.clone());
        assert!(!l.expired());
        flag.store(true, Ordering::Relaxed);
        assert!(l.expired());
        let past = EvalLimits::unlimited()
            .with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        assert!(past.expired());
    }

    #[test]
    fn expired_limits_fire_on_the_very_first_step() {
        // A pre-set cancel flag stops the evaluation at step 1, not
        // after a full polling window.
        let flag = Arc::new(AtomicBool::new(true));
        let l = EvalLimits::unlimited().with_cancel(flag);
        let mut t = LimitTracker::new(&l);
        assert!(!t.step());
        assert!(t.interrupted());
        assert_eq!(t.steps_used(), 1);

        // Same for an already-expired deadline.
        let l = EvalLimits::unlimited()
            .with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        let mut t = LimitTracker::new(&l);
        assert!(!t.step());
        assert_eq!(t.steps_used(), 1);
    }

    #[test]
    fn poll_interval_bounds_the_reaction_window() {
        // A flag raised mid-flight is noticed within POLL_INTERVAL
        // steps.
        let flag = Arc::new(AtomicBool::new(false));
        let l = EvalLimits::unlimited().with_cancel(flag.clone());
        let mut t = LimitTracker::new(&l);
        for _ in 0..10 {
            assert!(t.step());
        }
        flag.store(true, Ordering::Relaxed);
        let before = t.steps_used();
        let mut extra = 0u64;
        while t.step() {
            extra += 1;
            assert!(extra <= POLL_INTERVAL, "missed the polling window");
        }
        assert!(t.steps_used() - before <= POLL_INTERVAL);
    }

    #[test]
    fn past_deadline_fires() {
        let l = EvalLimits {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..EvalLimits::default()
        };
        let mut t = LimitTracker::new(&l);
        let mut fired = false;
        for _ in 0..512 {
            if !t.step() {
                fired = true;
                break;
            }
        }
        assert!(fired);
    }
}
