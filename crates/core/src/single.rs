//! Single-strategy PSI runners: Optimistic-only and Pessimistic-only
//! (the two non-adaptive competitors of Figure 10), plus the shared
//! candidate extraction.
//!
//! Both use the selectivity [`heuristic_plan`] for every node — the
//! paper: "the Pessimistic and Optimistic solutions use a
//! heuristic-based query evaluation plan".

use std::sync::Arc;

use psi_graph::{Graph, NodeId, PivotedQuery};
use psi_obs::{timed, Counter, Histogram, NoopRecorder, Phase, Recorder};
use psi_signature::SignatureMatrix;

use crate::evaluator::{NodeEvaluator, QueryContext, Verdict};
use crate::fault::{eval_isolated, FaultPlan, IsolatedOutcome, PsiMatcher};
use crate::limits::EvalLimits;
use crate::plan::heuristic_plan;
use crate::report::{FailureReport, PsiResult};
use crate::Strategy;

/// Options shared by the simple runners.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Signature propagation depth `D` (paper default 2).
    pub depth: u32,
    /// Per-node evaluation limits (unlimited by default — the simple
    /// runners are exact).
    pub limits: EvalLimits,
    /// Wrap each per-node evaluation in `catch_unwind` so a panicking
    /// node is recorded in the result's failure report instead of
    /// failing the sweep (default on).
    pub panic_isolation: bool,
    /// Deterministic fault schedule for chaos drills; `None` in
    /// production.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            depth: psi_signature::DEFAULT_DEPTH,
            limits: EvalLimits::unlimited(),
            panic_isolation: true,
            fault: None,
        }
    }
}

/// Candidate data nodes for a query pivot: same label, sufficient
/// degree.
pub fn pivot_candidates(g: &Graph, query: &PivotedQuery) -> Vec<NodeId> {
    let q = query.graph();
    let pivot = query.pivot();
    let deg = q.degree(pivot);
    g.nodes_with_label(query.pivot_label())
        .iter()
        .copied()
        .filter(|&u| g.degree(u) >= deg)
        .collect()
}

/// Evaluate a PSI query with one fixed strategy for every candidate
/// node, computing signatures on the fly.
pub fn psi_with_strategy(
    g: &Graph,
    query: &PivotedQuery,
    strategy: Strategy,
    options: &RunOptions,
) -> PsiResult {
    psi_with_strategy_recorded(g, query, strategy, options, &NoopRecorder)
}

/// [`psi_with_strategy`] with observability: the signature build runs
/// inside a [`Phase::Signature`] span and each node evaluation inside
/// a [`Phase::MatchS1`] span, with per-node steps feeding the
/// [`Histogram::StepsPerNode`] histogram.
pub fn psi_with_strategy_recorded(
    g: &Graph,
    query: &PivotedQuery,
    strategy: Strategy,
    options: &RunOptions,
    rec: &dyn Recorder,
) -> PsiResult {
    let sigs = psi_signature::matrix_signatures_recorded(g, options.depth, rec);
    psi_with_strategy_presig_recorded(g, &sigs, query, strategy, options, rec)
}

/// Same as [`psi_with_strategy`] but reusing precomputed data-graph
/// signatures (what a long-lived deployment does).
pub fn psi_with_strategy_presig(
    g: &Graph,
    sigs: &SignatureMatrix,
    query: &PivotedQuery,
    strategy: Strategy,
    options: &RunOptions,
) -> PsiResult {
    psi_with_strategy_presig_recorded(g, sigs, query, strategy, options, &NoopRecorder)
}

/// [`psi_with_strategy_presig`] with observability (see
/// [`psi_with_strategy_recorded`]).
pub fn psi_with_strategy_presig_recorded(
    g: &Graph,
    sigs: &SignatureMatrix,
    query: &PivotedQuery,
    strategy: Strategy,
    options: &RunOptions,
    rec: &dyn Recorder,
) -> PsiResult {
    let ctx = QueryContext::new(query.clone(), options.depth);
    let plan = ctx.compile(&heuristic_plan(g, query));
    let mut matcher = PsiMatcher::new(NodeEvaluator::new(g, sigs), options.fault.as_ref());
    let candidates = pivot_candidates(g, query);
    let mut valid = Vec::new();
    let mut steps = 0u64;
    let mut unresolved = 0usize;
    let mut failures = FailureReport::default();
    for &u in &candidates {
        match timed(rec, Phase::MatchS1, || {
            eval_isolated(
                &mut matcher,
                &ctx,
                &plan,
                u,
                strategy,
                &options.limits,
                options.panic_isolation,
            )
        }) {
            IsolatedOutcome::Finished(verdict, s) => {
                steps += s;
                rec.observe(Histogram::StepsPerNode, s);
                match verdict {
                    Verdict::Valid => valid.push(u),
                    Verdict::Invalid => {}
                    Verdict::Interrupted => unresolved += 1,
                }
            }
            IsolatedOutcome::Panicked(reason) => {
                failures.panics_recovered += 1;
                failures.record(u, reason, 1);
            }
        }
    }
    valid.sort_unstable();
    failures.sort();
    if rec.enabled() {
        rec.add(Counter::Candidates, candidates.len() as u64);
        rec.add(Counter::ResolvedS1, (candidates.len() - unresolved - failures.len()) as u64);
        rec.add(Counter::Unresolved, unresolved as u64);
        rec.add(Counter::FailedNodes, failures.len() as u64);
        rec.add(Counter::PanicsRecovered, failures.panics_recovered);
        rec.add(Counter::Steps, steps);
    }
    PsiResult {
        valid,
        candidates: candidates.len(),
        steps,
        unresolved,
        failures,
        profile: None,
        feedback: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    fn figure1() -> (Graph, PivotedQuery) {
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        (g, q)
    }

    #[test]
    fn figure1_both_runners() {
        let (g, q) = figure1();
        let opt = psi_with_strategy(&g, &q, Strategy::optimistic(), &RunOptions::default());
        let pes = psi_with_strategy(&g, &q, Strategy::pessimistic(), &RunOptions::default());
        assert_eq!(opt.valid, vec![0, 5]);
        assert_eq!(pes.valid, vec![0, 5]);
        assert_eq!(opt.candidates, 2); // two label-A nodes
        assert_eq!(opt.unresolved, 0);
        assert_eq!(pes.unresolved, 0);
    }

    #[test]
    fn candidates_respect_degree_filter() {
        // Pivot needs degree ≥ 2; node 5 (degree 1) is not a candidate.
        let (g, _) = figure1();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (0, 2)], 0).unwrap();
        let c = pivot_candidates(&g, &q);
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn unresolved_counted_under_tight_limits() {
        let (g, q) = figure1();
        let opts = RunOptions {
            limits: EvalLimits::steps(1),
            ..RunOptions::default()
        };
        let r = psi_with_strategy(&g, &q, Strategy::plain_optimistic(), &opts);
        assert!(r.unresolved > 0);
    }

    #[test]
    fn agrees_with_oracle_on_generated_data() {
        let g = psi_datasets::generators::erdos_renyi(120, 420, 4, 5);
        for size in 3..=5usize {
            let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, size as u64 * 31) else {
                continue;
            };
            let oracle = psi_match::psi_by_enumeration(
                &psi_match::Engine::TurboIso,
                &g,
                &q,
                &psi_match::SearchBudget::unlimited(),
            );
            let opt = psi_with_strategy(&g, &q, Strategy::optimistic(), &RunOptions::default());
            let pes = psi_with_strategy(&g, &q, Strategy::pessimistic(), &RunOptions::default());
            assert_eq!(opt.valid, oracle.valid, "optimistic, size {size}");
            assert_eq!(pes.valid, oracle.valid, "pessimistic, size {size}");
        }
    }
}
