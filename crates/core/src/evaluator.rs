//! The per-node PSI evaluator — Algorithm 1 of the paper, parameterized
//! by [`Strategy`].
//!
//! Given a candidate data node `u` for the query pivot, the evaluator
//! runs a depth-first search along a [`Plan`] (a connected matching
//! order rooted at the pivot) and answers *valid* as soon as one full
//! embedding exists, *invalid* when the space is exhausted, or
//! *interrupted* when the [`EvalLimits`] fire (the preemptive
//! executor's signal that a prediction was probably wrong).
//!
//! Strategy differences, exactly as in §3.3–3.4:
//!
//! * **Optimistic** — candidates of each level are scored with the
//!   satisfiability score and visited in descending order (line 5 of
//!   Algorithm 1); with a `super_cap`, the candidate list is truncated
//!   *before* sorting (line 4 — the super-optimistic pass).
//! * **Pessimistic** — no scoring or sorting; instead, candidates whose
//!   neighborhood signature does not satisfy the query node's signature
//!   are pruned immediately (line 7, justified by Proposition 3.2).

use psi_graph::{Graph, LabelId, NodeId, PivotedQuery};
use psi_signature::{SignatureMatrix, SignatureStore};

use crate::limits::{EvalLimits, LimitTracker};
use crate::plan::{plan_is_valid, Plan};
use crate::Strategy;

/// Outcome of one node evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate binds the pivot in at least one embedding.
    Valid,
    /// The whole (strategy-pruned) search space was exhausted with no
    /// embedding.
    Invalid,
    /// The limits fired before a conclusion.
    Interrupted,
}

/// Everything about a query that is shared across candidate nodes:
/// the query itself, its node signatures, and per-plan anchor tables.
#[derive(Debug, Clone)]
pub struct QueryContext {
    query: PivotedQuery,
    qsigs: SignatureMatrix,
}

impl QueryContext {
    /// Build the context, computing query-node signatures with the same
    /// matrix method and depth used for the data graph.
    pub fn new(query: PivotedQuery, depth: u32) -> Self {
        let qsigs = psi_signature::matrix_signatures(query.graph(), depth);
        Self { query, qsigs }
    }

    /// The wrapped query.
    pub fn query(&self) -> &PivotedQuery {
        &self.query
    }

    /// Signatures of the query nodes.
    pub fn signatures(&self) -> &SignatureMatrix {
        &self.qsigs
    }

    /// Precompile a plan into the anchor table the evaluator consumes.
    ///
    /// # Panics
    /// Panics if the plan is not a valid connected order for this query.
    pub fn compile(&self, plan: &Plan) -> CompiledPlan {
        assert!(plan_is_valid(&self.query, plan), "invalid plan {plan:?}");
        let q = self.query.graph();
        let mut pos = vec![usize::MAX; q.node_count()];
        for (i, &v) in plan.iter().enumerate() {
            pos[v as usize] = i;
        }
        let mut anchors = Vec::with_capacity(plan.len());
        for (i, &v) in plan.iter().enumerate() {
            if i == 0 {
                anchors.push((u32::MAX, 0));
                continue;
            }
            let (mut bp, mut bn) = (usize::MAX, u32::MAX);
            for &n in q.neighbors(v) {
                if pos[n as usize] < i && pos[n as usize] < bp {
                    bp = pos[n as usize];
                    bn = n;
                }
            }
            anchors.push((bn, q.edge_label(v, bn).expect("anchor is a neighbor")));
        }
        CompiledPlan {
            order: plan.clone(),
            anchors,
        }
    }
}

/// A plan plus its precomputed anchor table.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    order: Plan,
    /// For position i > 0: (anchor query node, edge label to it).
    anchors: Vec<(NodeId, LabelId)>,
}

impl CompiledPlan {
    /// The underlying matching order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }
}

/// Reusable evaluator bound to one data graph and its signatures.
///
/// Holds generation-stamped scratch so evaluating millions of candidate
/// nodes performs no per-candidate allocation.
pub struct NodeEvaluator<'g> {
    g: &'g Graph,
    sigs: &'g dyn SignatureStore,
    used_stamp: Vec<u32>,
    stamp: u32,
}

impl<'g> NodeEvaluator<'g> {
    /// Create an evaluator for `g` with its precomputed dense
    /// signatures (convenience for the common matrix case; see
    /// [`NodeEvaluator::from_store`] for other backends).
    pub fn new(g: &'g Graph, sigs: &'g SignatureMatrix) -> Self {
        Self::from_store(g, sigs)
    }

    /// Create an evaluator for `g` over any signature storage backend.
    pub fn from_store(g: &'g Graph, sigs: &'g dyn SignatureStore) -> Self {
        assert_eq!(sigs.node_count(), g.node_count(), "signatures must cover the graph");
        Self {
            g,
            sigs,
            used_stamp: vec![0; g.node_count()],
            stamp: 0,
        }
    }

    /// The data graph this evaluator is bound to.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Evaluate `candidate` for the pivot of `ctx` with `strategy`,
    /// following `plan`. Returns the verdict and the steps spent.
    ///
    /// With `Strategy::Optimistic { super_cap: Some(k) }` this runs the
    /// two-pass scheme of §3.3: a capped "super-optimistic" pass first;
    /// only if it fails is the full optimistic search run.
    pub fn evaluate(
        &mut self,
        ctx: &QueryContext,
        plan: &CompiledPlan,
        candidate: NodeId,
        strategy: Strategy,
        limits: &EvalLimits,
    ) -> (Verdict, u64) {
        match strategy {
            Strategy::Optimistic { super_cap: Some(cap) } => {
                let mut truncated = false;
                let (v, s1) =
                    self.evaluate_once(ctx, plan, candidate, strategy, Some(cap), limits, &mut truncated);
                match v {
                    Verdict::Valid | Verdict::Interrupted => (v, s1),
                    // If the cap never actually cut a candidate list,
                    // the capped pass explored the full space and its
                    // Invalid verdict is conclusive.
                    Verdict::Invalid if !truncated => (v, s1),
                    Verdict::Invalid => {
                        // The capped pass may have missed embeddings;
                        // rerun uncapped.
                        let mut t = false;
                        let (v2, s2) =
                            self.evaluate_once(ctx, plan, candidate, strategy, None, limits, &mut t);
                        (v2, s1 + s2)
                    }
                }
            }
            _ => {
                let mut t = false;
                self.evaluate_once(ctx, plan, candidate, strategy, None, limits, &mut t)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn evaluate_once(
        &mut self,
        ctx: &QueryContext,
        plan: &CompiledPlan,
        candidate: NodeId,
        strategy: Strategy,
        cap: Option<usize>,
        limits: &EvalLimits,
        truncated: &mut bool,
    ) -> (Verdict, u64) {
        let q = ctx.query.graph();
        let pivot = ctx.query.pivot();
        let mut tracker = LimitTracker::new(limits);
        // Pivot-level checks.
        if self.g.label(candidate) != q.label(pivot) || self.g.degree(candidate) < q.degree(pivot) {
            return (Verdict::Invalid, tracker.steps_used());
        }
        if strategy == Strategy::Pessimistic
            && !self.sigs.row_satisfies(candidate, ctx.qsigs.row(pivot))
        {
            return (Verdict::Invalid, tracker.steps_used());
        }
        // Fresh generation stamp; wrap-around resets the array.
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.used_stamp.fill(0);
            self.stamp = 1;
        }
        let mut mapping = vec![u32::MAX; q.node_count()];
        mapping[pivot as usize] = candidate;
        self.used_stamp[candidate as usize] = self.stamp;
        let mut search = Search {
            g: self.g,
            sigs: self.sigs,
            q,
            qsigs: &ctx.qsigs,
            plan,
            strategy,
            cap,
            truncated,
            used_stamp: &mut self.used_stamp,
            stamp: self.stamp,
            mapping: &mut mapping,
        };
        let verdict = match search.descend(1, &mut tracker) {
            Ok(true) => Verdict::Valid,
            Ok(false) => Verdict::Invalid,
            Err(()) => Verdict::Interrupted,
        };
        (verdict, tracker.steps_used())
    }
}

/// Borrowed state of one in-flight evaluation.
struct Search<'a> {
    g: &'a Graph,
    sigs: &'a dyn SignatureStore,
    q: &'a Graph,
    qsigs: &'a SignatureMatrix,
    plan: &'a CompiledPlan,
    strategy: Strategy,
    cap: Option<usize>,
    truncated: &'a mut bool,
    used_stamp: &'a mut [u32],
    stamp: u32,
    mapping: &'a mut [NodeId],
}

impl Search<'_> {
    /// `Ok(true)` = embedding found, `Ok(false)` = exhausted,
    /// `Err(())` = interrupted.
    fn descend(&mut self, depth: usize, tracker: &mut LimitTracker<'_>) -> Result<bool, ()> {
        if depth == self.plan.order.len() {
            return Ok(true);
        }
        let v = self.plan.order[depth];
        let (anchor_q, tree_el) = self.plan.anchors[depth];
        let anchor_d = self.mapping[anchor_q as usize];
        let v_label = self.q.label(v);
        let v_deg = self.q.degree(v);

        match self.strategy {
            Strategy::Pessimistic => {
                // Stream candidates without collecting; prune by
                // signature satisfaction. (`g` is copied out of `self`
                // so the iterator does not pin `self` immutably.)
                let g = self.g;
                for (u, el) in g.neighbors_with_labels(anchor_d) {
                    if !tracker.step() {
                        return Err(());
                    }
                    if el != tree_el || !self.basic_ok(v, u, v_label, v_deg, anchor_q) {
                        continue;
                    }
                    if !self.sigs.row_satisfies(u, self.qsigs.row(v)) {
                        continue; // Proposition 3.2 pruning
                    }
                    if self.try_extend(v, u, depth, tracker)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Strategy::Optimistic { .. } => {
                // Gather and score every feasible candidate.
                let mut cands: Vec<(f32, NodeId)> = Vec::new();
                for (u, el) in self.g.neighbors_with_labels(anchor_d) {
                    if !tracker.step() {
                        return Err(());
                    }
                    if el != tree_el || !self.basic_ok(v, u, v_label, v_deg, anchor_q) {
                        continue;
                    }
                    let score = self.sigs.row_score(u, self.qsigs.row(v));
                    cands.push((score, u));
                }
                if let Some(cap) = self.cap {
                    // Super-optimistic pass (line 4): explore only the
                    // `cap` most-promising branches; a selection pass
                    // replaces the full sort. Dropping candidates makes
                    // an Invalid outcome inconclusive.
                    if cands.len() > cap {
                        *self.truncated = true;
                        cands.select_nth_unstable_by(cap - 1, |a, b| {
                            b.0.partial_cmp(&a.0).unwrap()
                        });
                        cands.truncate(cap);
                    }
                }
                cands.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                for (_, u) in cands {
                    if self.try_extend(v, u, depth, tracker)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Label, degree, injectivity and back-edge checks shared by both
    /// strategies.
    #[inline]
    fn basic_ok(&self, v: NodeId, u: NodeId, v_label: LabelId, v_deg: usize, anchor_q: NodeId) -> bool {
        if self.used_stamp[u as usize] == self.stamp
            || self.g.label(u) != v_label
            || self.g.degree(u) < v_deg
        {
            return false;
        }
        for (qn, qel) in self.q.neighbors_with_labels(v) {
            if qn == anchor_q {
                continue;
            }
            let dm = self.mapping[qn as usize];
            if dm != u32::MAX {
                match self.g.edge_label(u, dm) {
                    Some(gel) if gel == qel => {}
                    _ => return false,
                }
            }
        }
        true
    }

    #[inline]
    fn try_extend(
        &mut self,
        v: NodeId,
        u: NodeId,
        depth: usize,
        tracker: &mut LimitTracker<'_>,
    ) -> Result<bool, ()> {
        self.mapping[v as usize] = u;
        self.used_stamp[u as usize] = self.stamp;
        let r = self.descend(depth + 1, tracker);
        self.used_stamp[u as usize] = self.stamp.wrapping_sub(1);
        self.mapping[v as usize] = u32::MAX;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::heuristic_plan;
    use psi_graph::builder::graph_from;
    use psi_signature::matrix_signatures;

    /// Figure 1 of the paper.
    fn figure1() -> (Graph, PivotedQuery) {
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        (g, q)
    }

    fn eval_all(g: &Graph, q: &PivotedQuery, strategy: Strategy) -> Vec<NodeId> {
        let sigs = matrix_signatures(g, 2);
        let ctx = QueryContext::new(q.clone(), 2);
        let plan = ctx.compile(&heuristic_plan(g, q));
        let mut ev = NodeEvaluator::new(g, &sigs);
        let mut valid = Vec::new();
        for u in g.node_ids() {
            let (v, _) = ev.evaluate(&ctx, &plan, u, strategy, &EvalLimits::unlimited());
            if v == Verdict::Valid {
                valid.push(u);
            }
        }
        valid
    }

    #[test]
    fn figure1_all_strategies_find_u1_u6() {
        let (g, q) = figure1();
        assert_eq!(eval_all(&g, &q, Strategy::optimistic()), vec![0, 5]);
        assert_eq!(eval_all(&g, &q, Strategy::plain_optimistic()), vec![0, 5]);
        assert_eq!(eval_all(&g, &q, Strategy::pessimistic()), vec![0, 5]);
    }

    #[test]
    fn invalid_node_rejected_by_both() {
        let (g, q) = figure1();
        let sigs = matrix_signatures(&g, 2);
        let ctx = QueryContext::new(q.clone(), 2);
        let plan = ctx.compile(&heuristic_plan(&g, &q));
        let mut ev = NodeEvaluator::new(&g, &sigs);
        // Node 1 has label B, not the pivot's A.
        for s in [Strategy::optimistic(), Strategy::pessimistic()] {
            let (v, _) = ev.evaluate(&ctx, &plan, 1, s, &EvalLimits::unlimited());
            assert_eq!(v, Verdict::Invalid);
        }
    }

    #[test]
    fn pessimistic_prunes_more_but_agrees() {
        // Star data graph where signature pruning bites: pivot label 0
        // surrounded by label-1 nodes, some of which lack the label-2
        // neighbor the query demands two hops out.
        let g = graph_from(
            &[0, 1, 1, 1, 2],
            &[(0, 1), (0, 2), (0, 3), (3, 4)],
        )
        .unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let o = eval_all(&g, &q, Strategy::plain_optimistic());
        let p = eval_all(&g, &q, Strategy::pessimistic());
        assert_eq!(o, p);
        assert_eq!(o, vec![0]);
    }

    #[test]
    fn super_optimistic_escalates_to_full_search() {
        // Hub with 15 label-1 leaves; only the *last* leaf (highest id)
        // has the label-2 continuation. With cap 10 and ids in natural
        // order the capped pass misses it, the full pass must find it.
        let mut labels = vec![0u16];
        let mut edges = Vec::new();
        for i in 1..=15u32 {
            labels.push(1);
            edges.push((0, i));
        }
        labels.push(2); // node 16
        edges.push((15, 16));
        let g = graph_from(&labels, &edges).unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let valid = eval_all(&g, &q, Strategy::optimistic());
        assert_eq!(valid, vec![0]);
    }

    #[test]
    fn interrupted_on_step_limit() {
        let (g, q) = figure1();
        let sigs = matrix_signatures(&g, 2);
        let ctx = QueryContext::new(q.clone(), 2);
        let plan = ctx.compile(&heuristic_plan(&g, &q));
        let mut ev = NodeEvaluator::new(&g, &sigs);
        let (v, steps) = ev.evaluate(
            &ctx,
            &plan,
            0,
            Strategy::plain_optimistic(),
            &EvalLimits::steps(1),
        );
        assert_eq!(v, Verdict::Interrupted);
        assert_eq!(steps, 1);
    }

    #[test]
    fn single_node_query() {
        let g = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let q = PivotedQuery::from_parts(&[0], &[], 0).unwrap();
        assert_eq!(eval_all(&g, &q, Strategy::optimistic()), vec![0, 2]);
        assert_eq!(eval_all(&g, &q, Strategy::pessimistic()), vec![0, 2]);
    }

    #[test]
    fn agrees_with_enumeration_psi_on_random_inputs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..30 {
            let n = rng.gen_range(6..14);
            let labels: Vec<u16> = (0..n).map(|_| rng.gen_range(0..3)).collect();
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.3) {
                        edges.push((a, b));
                    }
                }
            }
            let g = graph_from(&labels, &edges).unwrap();
            let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, 3, round) else {
                continue;
            };
            let oracle = psi_match::psi_by_enumeration(
                &psi_match::Engine::Vf2,
                &g,
                &q,
                &psi_match::SearchBudget::unlimited(),
            );
            for s in [
                Strategy::optimistic(),
                Strategy::plain_optimistic(),
                Strategy::pessimistic(),
            ] {
                assert_eq!(
                    eval_all(&g, &q, s),
                    oracle.valid,
                    "strategy {} round {round}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_sound_across_candidates() {
        // Evaluate every node twice; verdicts must be identical (stamp
        // bookkeeping must not leak between evaluations).
        let (g, q) = figure1();
        let a = eval_all(&g, &q, Strategy::optimistic());
        let b = eval_all(&g, &q, Strategy::optimistic());
        assert_eq!(a, b);
    }
}
