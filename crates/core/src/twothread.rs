//! The two-threaded baseline (§4.1, Figure 5).
//!
//! For each candidate node, run the optimistic and the pessimistic
//! method concurrently on two real threads; whichever finishes first
//! wins the race and its verdict is taken. The paper proposes this as
//! the straw-man that motivates SmartPSI: it is correct and per-node
//! near-optimal in wall-clock, but (*i*) it burns two threads per task
//! and (*ii*) it pays thread create/join overhead for every one of
//! potentially millions of candidates — both costs are deliberately
//! reproduced here (a fresh `crossbeam` scope per candidate), not
//! optimized away.
//!
//! ## Deterministic step accounting (logical lockstep)
//!
//! An earlier version stopped the loser with a wall-clock cancel flag,
//! which made the per-node step total depend on OS scheduling: the
//! loser was charged however many steps its thread happened to reach
//! before it polled the flag. The race now cancels through a shared
//! *step-count bar* ([`EvalLimits::cancel_at`]): each side that
//! finishes with a real verdict publishes its own step count via
//! `fetch_min`, every side clamps its charged steps to the final bar
//! `W = min(natural step counts)`, and the reported per-node cost is
//! exactly `2·W` — as if both racers advanced in lockstep and stopped
//! the instant the faster method finished. Threads still race in wall
//! time (the loser may *execute* a few steps past `W` before it
//! observes the bar), but the *accounted* cost is a pure function of
//! the inputs, so the two-thread driver participates in bit-exact cost
//! comparisons like any sequential executor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use psi_graph::{Graph, PivotedQuery};
use psi_obs::{timed, Counter, Histogram, NoopRecorder, Phase, Recorder};

use crate::evaluator::{NodeEvaluator, QueryContext, Verdict};
use crate::fault::{eval_isolated, IsolatedOutcome, PsiMatcher};
use crate::limits::EvalLimits;
use crate::plan::heuristic_plan;
use crate::report::{FailureReport, PsiResult};
use crate::single::{pivot_candidates, RunOptions};
use crate::Strategy;

/// One racing thread's result: a finished (verdict, steps), or the
/// reason its evaluation panicked.
type RaceOutcome = Result<(Verdict, u64), String>;

/// Evaluate a PSI query with the two-threaded baseline.
///
/// Fault behavior: each racing thread catches its own panics (under
/// `options.panic_isolation`), so a broken matcher on one side simply
/// loses the race — the other side's exhaustive run still decides the
/// node. The node fails (recorded in the result's failure report) only
/// when *both* sides panic.
pub fn two_threaded_psi(g: &Graph, query: &PivotedQuery, options: &RunOptions) -> PsiResult {
    two_threaded_psi_recorded(g, query, options, &NoopRecorder)
}

/// [`two_threaded_psi`] with observability: the signature build runs
/// inside a [`Phase::Signature`] span and each per-candidate race
/// inside a [`Phase::MatchS1`] span (timed from the parent thread —
/// the race's wall time, not the two racers' CPU sum).
pub fn two_threaded_psi_recorded(
    g: &Graph,
    query: &PivotedQuery,
    options: &RunOptions,
    rec: &dyn Recorder,
) -> PsiResult {
    let sigs = psi_signature::matrix_signatures_recorded(g, options.depth, rec);
    two_threaded_psi_presig(g, &sigs, query, None, options, rec)
}

/// [`two_threaded_psi_recorded`] against *precomputed* signatures —
/// the entry point used by
/// [`ExecutorKind::TwoThread`](crate::ExecutorKind::TwoThread), where
/// the deployment's [`GraphContext`](crate::GraphContext) already owns
/// the matrix. `subset` restricts the sweep to the given candidates
/// (`None` = all pivot candidates).
pub(crate) fn two_threaded_psi_presig(
    g: &Graph,
    sigs: &dyn psi_signature::SignatureStore,
    query: &PivotedQuery,
    subset: Option<&[psi_graph::NodeId]>,
    options: &RunOptions,
    rec: &dyn Recorder,
) -> PsiResult {
    let ctx = QueryContext::new(query.clone(), options.depth);
    let plan = ctx.compile(&heuristic_plan(g, query));
    let candidates = match subset {
        Some(s) => s.to_vec(),
        None => pivot_candidates(g, query),
    };

    let mut valid = Vec::new();
    let mut steps = 0u64;
    let mut unresolved = 0usize;
    let mut failures = FailureReport::default();

    for &u in &candidates {
        // The lockstep bar: each racer that reaches a real verdict
        // publishes its step count, and both racers stop (and are
        // charged) at the minimum published count. `u64::MAX` means
        // "no one has finished yet".
        let bar = Arc::new(AtomicU64::new(u64::MAX));
        let run = |strategy: Strategy| -> RaceOutcome {
            let limits = EvalLimits {
                max_steps: options.limits.max_steps,
                deadline: options.limits.deadline,
                cancel: options.limits.cancel.clone(),
                cancel_at: Some(bar.clone()),
            };
            let mut matcher =
                PsiMatcher::new(NodeEvaluator::from_store(g, sigs), options.fault.as_ref());
            match eval_isolated(
                &mut matcher,
                &ctx,
                &plan,
                u,
                strategy,
                &limits,
                options.panic_isolation,
            ) {
                IsolatedOutcome::Finished(verdict, s) => {
                    if verdict != Verdict::Interrupted {
                        // Publish our natural finishing count; fetch_min
                        // keeps the bar at the *fastest* finisher even
                        // if both sides complete.
                        bar.fetch_min(s, Ordering::Relaxed);
                    }
                    Ok((verdict, s))
                }
                IsolatedOutcome::Panicked(reason) => Err(reason),
            }
        };
        // A join error means the thread died outside the isolated
        // evaluation; fold it into the same "panicked" arm.
        let (opt_out, pes_out) = match timed(rec, Phase::MatchS1, || {
            crossbeam::thread::scope(|scope| {
                let h1 = scope.spawn(|_| run(Strategy::optimistic()));
                let h2 = scope.spawn(|_| run(Strategy::Pessimistic));
                (
                    h1.join().unwrap_or_else(|_| Err("optimistic thread died".into())),
                    h2.join().unwrap_or_else(|_| Err("pessimistic thread died".into())),
                )
            })
        }) {
            Ok(pair) => pair,
            Err(_) => (Err("race scope died".into()), Err("race scope died".into())),
        };

        // Charge each side min(own steps, W): the loser may have
        // *executed* slightly past the bar before observing it, but the
        // accounted cost is the lockstep ideal — deterministic across
        // thread interleavings.
        let w = bar.load(Ordering::Relaxed);
        let node_steps =
            opt_out.as_ref().map_or(0, |o| o.1.min(w)) + pes_out.as_ref().map_or(0, |p| p.1.min(w));
        rec.observe(Histogram::StepsPerNode, node_steps);
        steps += node_steps;
        // Every contained panic counts, even when the surviving racer
        // decided the node.
        failures.panics_recovered += u64::from(opt_out.is_err()) + u64::from(pes_out.is_err());
        // Prefer whichever thread reached a conclusion.
        let verdicts = (
            opt_out.as_ref().map_or(Verdict::Interrupted, |o| o.0),
            pes_out.as_ref().map_or(Verdict::Interrupted, |p| p.0),
        );
        match verdicts {
            (Verdict::Valid, _) | (_, Verdict::Valid) => valid.push(u),
            (Verdict::Invalid, _) | (_, Verdict::Invalid) => {}
            _ => {
                if let (Err(r1), Err(r2)) = (&opt_out, &pes_out) {
                    // Both sides panicked: the node is genuinely broken.
                    failures.record(u, format!("optimist: {r1}; pessimist: {r2}"), 2);
                } else {
                    unresolved += 1;
                }
            }
        }
    }
    valid.sort_unstable();
    failures.sort();
    if rec.enabled() {
        rec.add(Counter::Candidates, candidates.len() as u64);
        rec.add(
            Counter::ResolvedS1,
            (candidates.len() - unresolved - failures.len()) as u64,
        );
        rec.add(Counter::Unresolved, unresolved as u64);
        rec.add(Counter::FailedNodes, failures.len() as u64);
        rec.add(Counter::PanicsRecovered, failures.panics_recovered);
        rec.add(Counter::Steps, steps);
    }
    PsiResult {
        valid,
        candidates: candidates.len(),
        steps,
        unresolved,
        failures,
        profile: None,
        feedback: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    #[test]
    fn figure1_answer() {
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let r = two_threaded_psi(&g, &q, &RunOptions::default());
        assert_eq!(r.valid, vec![0, 5]);
        assert_eq!(r.unresolved, 0);
    }

    #[test]
    fn agrees_with_single_strategy_runners() {
        let g = psi_datasets::generators::erdos_renyi(80, 240, 4, 9);
        for size in 3..=4usize {
            let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, size as u64) else {
                continue;
            };
            let two = two_threaded_psi(&g, &q, &RunOptions::default());
            let one = crate::single::psi_with_strategy(
                &g,
                &q,
                Strategy::pessimistic(),
                &RunOptions::default(),
            );
            assert_eq!(two.valid, one.valid, "size {size}");
        }
    }

    #[test]
    fn step_accounting_is_deterministic_and_bounded() {
        // Lockstep accounting charges exactly 2·min(optimist,
        // pessimist) natural steps per node, so (a) repeated runs agree
        // bit-for-bit despite real thread racing, and (b) the total
        // never exceeds twice the single pessimistic run (min ≤
        // pessimist per node).
        let g = psi_datasets::generators::erdos_renyi(60, 200, 3, 4);
        let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, 3, 2) else {
            return;
        };
        let first = two_threaded_psi(&g, &q, &RunOptions::default());
        assert!(first.steps > 0);
        for trial in 0..5 {
            let again = two_threaded_psi(&g, &q, &RunOptions::default());
            assert_eq!(again.valid, first.valid, "trial {trial}");
            assert_eq!(again.steps, first.steps, "trial {trial}");
        }
        let one = crate::single::psi_with_strategy(
            &g,
            &q,
            Strategy::pessimistic(),
            &RunOptions::default(),
        );
        assert!(
            first.steps <= 2 * one.steps,
            "two {} one {}",
            first.steps,
            one.steps
        );
    }
}
