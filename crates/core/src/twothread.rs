//! The two-threaded baseline (§4.1, Figure 5).
//!
//! For each candidate node, run the optimistic and the pessimistic
//! method concurrently on two real threads; whichever finishes first
//! raises a shared cancel flag that stops the other, and its verdict is
//! taken. The paper proposes this as the straw-man that motivates
//! SmartPSI: it is correct and per-node near-optimal in wall-clock, but
//! (*i*) it burns two threads per task and (*ii*) it pays thread
//! create/join overhead for every one of potentially millions of
//! candidates — both costs are deliberately reproduced here (a fresh
//! `crossbeam` scope per candidate), not optimized away.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use psi_graph::{Graph, PivotedQuery};

use crate::evaluator::{NodeEvaluator, QueryContext, Verdict};
use crate::limits::EvalLimits;
use crate::plan::heuristic_plan;
use crate::report::PsiResult;
use crate::single::{pivot_candidates, RunOptions};
use crate::Strategy;

/// Evaluate a PSI query with the two-threaded baseline.
pub fn two_threaded_psi(g: &Graph, query: &PivotedQuery, options: &RunOptions) -> PsiResult {
    let sigs = psi_signature::matrix_signatures(g, options.depth);
    let ctx = QueryContext::new(query.clone(), options.depth);
    let plan = ctx.compile(&heuristic_plan(g, query));
    let candidates = pivot_candidates(g, query);

    let mut valid = Vec::new();
    let mut steps = 0u64;
    let mut unresolved = 0usize;

    for &u in &candidates {
        let done = Arc::new(AtomicBool::new(false));
        // Each thread gets the shared flag both as its cancel signal
        // and as the "I won" latch.
        let run = |strategy: Strategy| {
            let limits = EvalLimits {
                max_steps: options.limits.max_steps,
                deadline: options.limits.deadline,
                cancel: Some(done.clone()),
            };
            let mut ev = NodeEvaluator::new(g, &sigs);
            let (verdict, s) = ev.evaluate(&ctx, &plan, u, strategy, &limits);
            if verdict != Verdict::Interrupted {
                done.store(true, Ordering::Relaxed);
            }
            (verdict, s)
        };
        let (opt_out, pes_out) = crossbeam::thread::scope(|scope| {
            let h1 = scope.spawn(|_| run(Strategy::optimistic()));
            let h2 = scope.spawn(|_| run(Strategy::Pessimistic));
            (h1.join().expect("optimistic thread"), h2.join().expect("pessimistic thread"))
        })
        .expect("two-threaded scope");

        steps += opt_out.1 + pes_out.1;
        // Prefer whichever thread reached a conclusion.
        let verdict = match (opt_out.0, pes_out.0) {
            (Verdict::Valid, _) | (_, Verdict::Valid) => Verdict::Valid,
            (Verdict::Invalid, _) | (_, Verdict::Invalid) => Verdict::Invalid,
            _ => Verdict::Interrupted,
        };
        match verdict {
            Verdict::Valid => valid.push(u),
            Verdict::Invalid => {}
            Verdict::Interrupted => unresolved += 1,
        }
    }
    valid.sort_unstable();
    PsiResult {
        valid,
        candidates: candidates.len(),
        steps,
        unresolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    #[test]
    fn figure1_answer() {
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let r = two_threaded_psi(&g, &q, &RunOptions::default());
        assert_eq!(r.valid, vec![0, 5]);
        assert_eq!(r.unresolved, 0);
    }

    #[test]
    fn agrees_with_single_strategy_runners() {
        let g = psi_datasets::generators::erdos_renyi(80, 240, 4, 9);
        for size in 3..=4usize {
            let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, size as u64) else {
                continue;
            };
            let two = two_threaded_psi(&g, &q, &RunOptions::default());
            let one = crate::single::psi_with_strategy(
                &g,
                &q,
                Strategy::pessimistic(),
                &RunOptions::default(),
            );
            assert_eq!(two.valid, one.valid, "size {size}");
        }
    }

    #[test]
    fn total_steps_reflect_double_work() {
        // The baseline runs both methods, so its combined step count
        // must be at least the single pessimistic run's.
        let g = psi_datasets::generators::erdos_renyi(60, 200, 3, 4);
        let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, 3, 2) else {
            return;
        };
        let two = two_threaded_psi(&g, &q, &RunOptions::default());
        let one = crate::single::psi_with_strategy(
            &g,
            &q,
            Strategy::pessimistic(),
            &RunOptions::default(),
        );
        assert!(two.steps >= one.steps, "two {} one {}", two.steps, one.steps);
    }
}
