//! SmartPSI — "the realist" (§4.2–4.3, Figure 6).
//!
//! The full system:
//!
//! 1. Load the graph and precompute all neighborhood signatures
//!    (matrix method).
//! 2. Per query, extract the pivot's candidate nodes and *train on a
//!    small random sample* of them (paper: ~10% up to 1000 nodes):
//!    each training node is evaluated with the pessimistic method to
//!    obtain its true type (Model α's label), and with a sample of
//!    execution plans under an escalating step limit to find its
//!    cheapest plan (Model β's label).
//! 3. Fit two Random-Forest classifiers on the signature feature
//!    vectors: **Model α** (valid/invalid → optimistic/pessimistic)
//!    and **Model β** (best plan).
//! 4. Evaluate the remaining candidates with the predicted method and
//!    plan under the **preemptive executor**: a step budget of
//!    `2 × AvgT(method, plan)` (training averages) detects likely
//!    mispredictions; recovery retries with the opposite method
//!    (stage 2) and finally with the predicted method and the
//!    heuristic plan, unlimited (stage 3). Exactness is guaranteed:
//!    stage 3 has no limit and both methods are exhaustive.
//! 5. Cache conclusions keyed by the exact signature row, so
//!    structurally identical nodes skip both prediction and, when the
//!    cached verdict exists, any further cost.
//!
//! Steps 2–3 are factored into [`TrainedSession`] and step 4 into
//! [`SmartPsi::eval_rest_node`] so the sequential evaluator and the
//! work-stealing pool in [`crate::parallel`] share one code path: the
//! models are trained exactly once per query regardless of worker
//! count, and every executor resolves candidates identically.
//!
//! # The unified entry point
//!
//! All executors are fronted by [`SmartPsi::run`], which takes a
//! builder-style [`RunSpec`] (`.threads(n)`, `.limits(..)`,
//! `.retry(..)`, `.faults(..)`, `.recorder(..)`) and returns a
//! [`PsiResult`] carrying a [`QueryProfile`] — per-phase wall times,
//! the metrics-registry counters, and log₂ step histograms (see
//! [`psi_obs`]). The historical six-method surface (`evaluate`,
//! `evaluate_candidates`, …) survives as `#[deprecated]` wrappers that
//! delegate to `run` and reconstruct the legacy [`SmartPsiReport`]
//! from the profile.

use std::sync::Arc;
use std::time::{Duration, Instant};

use psi_graph::{Graph, NodeId, PivotedQuery};
use psi_ml::forest::{ForestConfig, RandomForest};
use psi_ml::{Classifier, Dataset};
use psi_obs::{timed, Counter, Histogram, MetricsRecorder, NoopRecorder, Phase, QueryProfile, Recorder};
use psi_signature::SignatureMatrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::evaluator::{CompiledPlan, NodeEvaluator, QueryContext, Verdict};
use crate::fault::{eval_isolated, FaultPlan, IsolatedOutcome, NodeMatcher, PsiMatcher};
use crate::limits::EvalLimits;
use crate::parallel::{self, PredictionCache, WorkStealingOptions};
use crate::plan::{heuristic_plan, sample_plans};
use crate::report::{FailureReport, PsiResult, StageTimings};
use crate::single::pivot_candidates;
use crate::Strategy;

/// How the preemptive executor retries a node whose evaluation was
/// interrupted by its step budget, spuriously interrupted, or panicked
/// (§4.3 recovery, generalized into an explicit ladder).
///
/// The ladder runs `max_attempts` *limited* attempts — the predicted
/// method first, then alternating with the opposite method, each under
/// a budget of `2×AvgT × budget_multiplier^attempt` — and then one
/// final unlimited attempt: the pessimist exact matcher on the
/// heuristic plan when `escalate_to_exact` is set (the predicted
/// method otherwise). Both methods are exhaustive, so the final
/// attempt is conclusive unless the node's matcher itself is broken,
/// in which case the node is reported in
/// [`FailureReport`](crate::report::FailureReport) instead of being
/// silently dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Limited (budgeted) attempts before the unlimited fallback.
    pub max_attempts: u32,
    /// Budget growth per limited attempt (clamped to ≥ 1.0).
    pub budget_multiplier: f64,
    /// Run the final unlimited attempt with the pessimist exact
    /// matcher on the heuristic plan rather than the predicted method.
    pub escalate_to_exact: bool,
}

impl Default for RetryPolicy {
    /// Two limited attempts (predicted, then opposite at 2× budget),
    /// then the exact fallback — the paper's three-stage executor
    /// expressed as a policy.
    fn default() -> Self {
        Self {
            max_attempts: 2,
            budget_multiplier: 2.0,
            escalate_to_exact: true,
        }
    }
}

impl RetryPolicy {
    /// Step budget for limited attempt `attempt` (0-based) given the
    /// trained base budget. Saturates instead of overflowing.
    pub fn budget(&self, base: u64, attempt: u32) -> u64 {
        let m = self.budget_multiplier.max(1.0);
        let scaled = base as f64 * m.powi(attempt.min(64) as i32);
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            (scaled as u64).max(base).max(1)
        }
    }
}

/// Which executor [`SmartPsi::run`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// One thread, candidates in shuffled training order.
    #[default]
    Sequential,
    /// The work-stealing pool ([`crate::parallel`]): train once, share
    /// the models and the prediction cache across workers.
    WorkStealing,
    /// The pre-work-stealing baseline: one static candidate chunk per
    /// thread, each with its own training run and cache. Kept for the
    /// Figure 9 load-imbalance comparison.
    StaticChunks,
}

/// Builder-style specification of one [`SmartPsi::run`] call: executor
/// choice, thread count, global limits, candidate subset, and per-run
/// overrides of the deployment's retry/fault/isolation knobs, plus an
/// optional [`MetricsRecorder`] for fine-grained profiling.
///
/// `RunSpec::default()` is a sequential, unlimited, unprofiled run
/// with every knob deferring to the deployment's
/// [`SmartPsiConfig`].
///
/// ```no_run
/// # use psi_core::smart::{RunSpec, RetryPolicy};
/// # use psi_core::limits::EvalLimits;
/// # use std::sync::Arc;
/// let rec = Arc::new(psi_obs::MetricsRecorder::new());
/// let spec = RunSpec::new()
///     .threads(4)
///     .limits(EvalLimits::unlimited())
///     .retry(RetryPolicy::default())
///     .recorder(rec.clone());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunSpec {
    executor: ExecutorKind,
    threads: usize,
    grab: usize,
    shared_cache: Option<bool>,
    limits: EvalLimits,
    subset: Option<Vec<NodeId>>,
    retry: Option<RetryPolicy>,
    node_timeout: Option<Option<Duration>>,
    panic_isolation: Option<bool>,
    fault: Option<Arc<FaultPlan>>,
    recorder: Option<Arc<MetricsRecorder>>,
}

impl RunSpec {
    /// A sequential, unlimited, unprofiled run (same as `default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Run on the work-stealing pool with `n` workers (`0` = the
    /// config's `workers`, which at `0` in turn means one per
    /// available hardware thread).
    pub fn threads(mut self, n: usize) -> Self {
        self.executor = ExecutorKind::WorkStealing;
        self.threads = n;
        self
    }

    /// Run sequentially on the calling thread (the default).
    pub fn sequential(mut self) -> Self {
        self.executor = ExecutorKind::Sequential;
        self
    }

    /// Run the static chunk-per-thread baseline with `n ≥ 1` threads.
    pub fn static_chunks(mut self, n: usize) -> Self {
        self.executor = ExecutorKind::StaticChunks;
        self.threads = n;
        self
    }

    /// Candidates per work-stealing queue grab (`0` = config default).
    pub fn grab(mut self, n: usize) -> Self {
        self.grab = n;
        self
    }

    /// Override the config's `shared_cache` for this run.
    pub fn shared_cache(mut self, share: bool) -> Self {
        self.shared_cache = Some(share);
        self
    }

    /// Global deadline / cancel flag observed by the whole run
    /// (`max_steps` is ignored — per-node budgets are SmartPSI's own).
    pub fn limits(mut self, limits: EvalLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Restrict the run to a candidate subset (used by the FSM miner,
    /// which evaluates specific extension nodes).
    pub fn candidates(mut self, subset: Vec<NodeId>) -> Self {
        self.subset = Some(subset);
        self
    }

    /// Override the config's retry/escalation policy for this run.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Override the config's per-node wall-clock timeout for this run
    /// (`None` disables it).
    pub fn node_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.node_timeout = Some(timeout);
        self
    }

    /// Override the config's panic isolation for this run.
    pub fn panic_isolation(mut self, on: bool) -> Self {
        self.panic_isolation = Some(on);
        self
    }

    /// Inject a deterministic fault schedule for this run (chaos
    /// drills and the fault-injection tests).
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Record fine-grained spans, counters, and histograms into `rec`;
    /// the run's [`QueryProfile`] absorbs the recorder's totals at
    /// query end. Without a recorder the instrumentation seam is the
    /// no-op [`psi_obs::NoopRecorder`] — one predictable branch per
    /// site — and the profile still carries the coarse timings and the
    /// exact accounting counters.
    ///
    /// Pass a fresh recorder per query for per-query profiles; a
    /// long-lived recorder accumulates across runs (and the profile of
    /// each run then absorbs the running totals).
    pub fn recorder(mut self, rec: Arc<MetricsRecorder>) -> Self {
        self.recorder = Some(rec);
        self
    }
}

/// Per-run knobs resolved from config + [`RunSpec`] overrides, threaded
/// through training, the retry ladder, the plain sweep, and the pool
/// workers so one `run` call sees one consistent set.
#[derive(Clone)]
pub(crate) struct RunParams {
    pub(crate) retry: RetryPolicy,
    pub(crate) node_timeout: Option<Duration>,
    pub(crate) panic_isolation: bool,
    pub(crate) fault: Option<Arc<FaultPlan>>,
}

impl RunParams {
    pub(crate) fn resolve(cfg: &SmartPsiConfig, spec: &RunSpec) -> Self {
        Self {
            retry: spec.retry.unwrap_or(cfg.retry),
            node_timeout: spec.node_timeout.unwrap_or(cfg.node_timeout),
            panic_isolation: spec.panic_isolation.unwrap_or(cfg.panic_isolation),
            fault: spec.fault.clone().or_else(|| cfg.fault.clone()),
        }
    }

}

/// SmartPSI configuration (defaults follow the paper).
#[derive(Debug, Clone)]
pub struct SmartPsiConfig {
    /// Signature propagation depth `D`.
    pub depth: u32,
    /// Fraction of candidates used for training ("around 10%").
    pub train_fraction: f64,
    /// Hard cap on training nodes ("up to a maximum value"; the
    /// experiments use 1000).
    pub max_train_nodes: usize,
    /// Skip ML below this many candidates (training would dominate);
    /// all nodes are then evaluated pessimistically.
    pub min_candidates_for_ml: usize,
    /// Number of execution plans sampled for Model β.
    pub plan_sample: usize,
    /// Candidate cap of the super-optimistic pass.
    pub super_cap: usize,
    /// Random-forest hyper-parameters for both models.
    pub forest: ForestConfig,
    /// Train and use Model β (false = heuristic plan everywhere; used
    /// by the ablation bench).
    pub enable_beta: bool,
    /// Use the prediction cache.
    pub enable_cache: bool,
    /// Use the preemptive executor (false = trust predictions and run
    /// without limits; used by the ablation bench).
    pub enable_recovery: bool,
    /// Initial step limit when timing candidate plans during training;
    /// doubled until at least one plan finishes (§4.2.2).
    pub initial_plan_limit: u64,
    /// RNG seed (training-sample selection, plan sampling, forests).
    pub seed: u64,
    /// Worker threads for the work-stealing executor when the caller
    /// does not pin a count (`0` = one per available hardware thread).
    pub workers: usize,
    /// Candidates pulled from the shared work queue per grab. Small
    /// grabs keep hard (pessimistic) nodes from serializing a whole
    /// chunk behind one worker; large grabs reduce queue traffic.
    pub grab_size: usize,
    /// Share one prediction cache across all pool workers (the paper's
    /// cache-reuse optimization under parallelism). `false` gives each
    /// worker a private cache — the ablation baseline.
    pub shared_cache: bool,
    /// Shards of the concurrent prediction cache (rounded up to a
    /// power of two). More shards = less lock contention.
    pub cache_shards: usize,
    /// Retry/escalation policy of the preemptive executor.
    pub retry: RetryPolicy,
    /// Optional wall-clock budget per candidate node. A node that
    /// cannot be resolved within it (even by the exact fallback) is
    /// reported in `FailureReport` instead of stalling the query.
    pub node_timeout: Option<Duration>,
    /// Wrap every per-node evaluation in `catch_unwind` so a panicking
    /// matcher fails one node, not the query. On by default; the
    /// robustness bench turns it off to measure the clean-path cost.
    pub panic_isolation: bool,
    /// Deterministic fault schedule for chaos drills and the
    /// fault-injection tests; `None` in production.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for SmartPsiConfig {
    fn default() -> Self {
        Self {
            depth: psi_signature::DEFAULT_DEPTH,
            train_fraction: 0.10,
            max_train_nodes: 1000,
            min_candidates_for_ml: 40,
            plan_sample: 4,
            super_cap: 10,
            forest: ForestConfig::default(),
            enable_beta: true,
            enable_cache: true,
            enable_recovery: true,
            initial_plan_limit: 2_000,
            seed: 0x05aa_7951,
            workers: 0,
            grab_size: 8,
            shared_cache: true,
            cache_shards: 16,
            retry: RetryPolicy::default(),
            node_timeout: None,
            panic_isolation: true,
            fault: None,
        }
    }
}

impl SmartPsiConfig {
    /// Preset matching the paper's *effective* training ratio on the
    /// web-scale datasets. The paper trains at most 1000 of roughly
    /// 450k candidates (~0.2%); our scaled-down YouTube/Twitter/Weibo
    /// have candidate sets two orders of magnitude smaller, so keeping
    /// `train_fraction = 0.10` would inflate the training share of the
    /// total far beyond anything the paper measured (see Table 4).
    /// This preset restores the paper's ratio at laptop scale.
    pub fn web_scale() -> Self {
        Self {
            train_fraction: 0.02,
            max_train_nodes: 120,
            plan_sample: 3,
            ..Self::default()
        }
    }
}

/// A SmartPSI deployment: one data graph, loaded in memory with all
/// node signatures precomputed.
pub struct SmartPsi {
    g: Graph,
    sigs: SignatureMatrix,
    config: SmartPsiConfig,
    signature_build: std::time::Duration,
}

/// Full evaluation report — the legacy shape returned by the
/// `#[deprecated]` `evaluate*` wrappers. New code reads the same
/// numbers (and more) from the [`QueryProfile`] attached to
/// [`SmartPsi::run`]'s [`PsiResult`]; [`SmartPsiReport::from_result`]
/// is the lossless conversion the wrappers use.
#[derive(Debug, Clone)]
pub struct SmartPsiReport {
    /// The PSI answer.
    pub result: PsiResult,
    /// Wall-clock stage breakdown (Table 4).
    pub timings: StageTimings,
    /// Training nodes used.
    pub trained_nodes: usize,
    /// Candidates whose (method, plan) came from the cache.
    pub cache_hits: usize,
    /// Candidates resolved in stage 1 (prediction trusted and
    /// confirmed by the budget).
    pub resolved_stage1: usize,
    /// Candidates that needed the opposite method (stage 2).
    pub recovered_stage2: usize,
    /// Candidates that fell back to the heuristic plan, unlimited
    /// (stage 3).
    pub recovered_stage3: usize,
    /// Candidates Model α predicted valid.
    pub predicted_valid: usize,
    /// Accuracy of Model α measured against the final ground truth of
    /// every predicted candidate (Figure 11's metric). Candidates left
    /// unresolved by a deadline/cancel count as mispredicted.
    pub alpha_accuracy: f64,
}

impl Default for SmartPsiReport {
    /// An empty report (no candidates, nothing resolved).
    fn default() -> Self {
        unresolved_report(0, 0)
    }
}

impl SmartPsiReport {
    /// Reconstruct the legacy report from a [`SmartPsi::run`] result.
    /// Lossless when the result carries a profile (every `run` result
    /// does): the stage counters, timings, and α-accuracy are read
    /// back from the [`QueryProfile`].
    pub fn from_result(result: PsiResult) -> Self {
        let fields = match result.profile.as_deref() {
            Some(p) => (
                StageTimings {
                    training_and_prediction: Duration::from_nanos(p.train_ns),
                    evaluation: Duration::from_nanos(p.evaluation_ns),
                },
                p.counter(Counter::TrainedNodes) as usize,
                p.counter(Counter::CacheHits) as usize,
                p.counter(Counter::ResolvedS1) as usize,
                p.counter(Counter::RecoveredS2) as usize,
                p.counter(Counter::RecoveredS3) as usize,
                p.counter(Counter::PredictedValid) as usize,
                p.alpha_accuracy,
            ),
            None => (StageTimings::default(), 0, 0, 0, 0, 0, 0, 0.0),
        };
        Self {
            result,
            timings: fields.0,
            trained_nodes: fields.1,
            cache_hits: fields.2,
            resolved_stage1: fields.3,
            recovered_stage2: fields.4,
            recovered_stage3: fields.5,
            predicted_valid: fields.6,
            alpha_accuracy: fields.7,
        }
    }
}

/// Everything [`TrainedSession`]-building can conclude.
pub(crate) enum TrainOutcome {
    /// Too few candidates for ML to pay off; run the plain sweep.
    TooFew,
    /// A *global* deadline or cancel flag fired during training;
    /// `steps` were spent and `failures` accumulated before stopping.
    Interrupted { steps: u64, failures: FailureReport },
    /// Models are fitted and ready.
    Trained(Box<TrainedSession>),
}

/// Per-query state produced by the training phase (§4.2), shared
/// read-only by every executor worker: compiled plans, both models,
/// the step-budget tables and the candidate split.
pub(crate) struct TrainedSession {
    pub(crate) ctx: QueryContext,
    pub(crate) plans: Vec<CompiledPlan>,
    pub(crate) heuristic: CompiledPlan,
    pub(crate) strategies: [Strategy; 2],
    alpha: RandomForest,
    beta: Option<RandomForest>,
    sum_steps: Vec<Vec<u64>>,
    cnt_steps: Vec<Vec<u64>>,
    global_avg: u64,
    /// Valid nodes discovered among the training sample.
    pub(crate) train_valid: Vec<NodeId>,
    /// Steps spent during training.
    pub(crate) train_steps: u64,
    pub(crate) n_train: usize,
    /// The candidates left for the main loop (shuffled order).
    pub(crate) rest: Vec<NodeId>,
    pub(crate) total_candidates: usize,
    pub(crate) training_and_prediction: Duration,
    /// Faults survived while training (failed training nodes are not
    /// in `train_valid`, `rest`, or `n_train`).
    pub(crate) failures: FailureReport,
}

impl TrainedSession {
    /// `MaxTime(u) = 2 × AvgT(method, plan)` (§4.3), with a floor so a
    /// zero-cost training average cannot starve stage 1.
    fn max_time(&self, method_idx: usize, plan_idx: usize) -> u64 {
        let c = self.cnt_steps[method_idx][plan_idx];
        match (2 * self.sum_steps[method_idx][plan_idx]).checked_div(c) {
            None => 2 * self.global_avg,
            Some(avg) => avg.max(32),
        }
    }

    /// Predict (method index, plan index) for a signature row. Each
    /// forest call is one recorded ML inference.
    fn predict(&self, row: &[f32], rec: &dyn Recorder) -> (usize, usize) {
        let m = 1 - self.alpha.predict_recorded(row, rec).min(1); // class 1 (valid) → optimistic (0)
        let p = self
            .beta
            .as_ref()
            .map_or(0, |b| b.predict_recorded(row, rec).min(self.plans.len() - 1));
        (m, p)
    }
}

/// Retry/isolation cost of one candidate, folded into the failure
/// report's counters by [`absorb_outcome`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeCost {
    pub(crate) steps: u64,
    pub(crate) panics_recovered: u64,
    pub(crate) escalations: u64,
}

/// Outcome of one main-loop candidate (see [`SmartPsi::eval_rest_node`]).
#[derive(Debug, Clone)]
pub(crate) enum NodeOutcome {
    /// The candidate resolved (stage 1–3), or the *global*
    /// deadline/cancel fired first (stage 0, verdict `Interrupted`).
    Done {
        verdict: Verdict,
        /// Resolving stage (1–3); 0 = unresolved (global stop).
        stage: u8,
        cache_hit: bool,
        predicted_valid: bool,
        cost: NodeCost,
    },
    /// The candidate could not be resolved despite panic isolation and
    /// the full retry ladder — its matcher is broken or its per-node
    /// timeout expired.
    Failed {
        reason: String,
        attempts: u32,
        cache_hit: bool,
        predicted_valid: bool,
        cost: NodeCost,
    },
}

impl NodeOutcome {
    /// Whether the executor must stop sweeping (global limits fired).
    pub(crate) fn is_global_stop(&self) -> bool {
        matches!(self, NodeOutcome::Done { stage: 0, .. })
    }
}

/// Step-limited stage limits inheriting the global deadline/cancel.
fn stage_limits(max_steps: u64, global: &EvalLimits) -> EvalLimits {
    stage_limits_node(max_steps, global, None)
}

/// [`stage_limits`] with an additional per-node deadline; the earlier
/// of the global and node deadline wins.
fn stage_limits_node(
    max_steps: u64,
    global: &EvalLimits,
    node_deadline: Option<Instant>,
) -> EvalLimits {
    let deadline = match (global.deadline, node_deadline) {
        (Some(g), Some(n)) => Some(g.min(n)),
        (g, n) => g.or(n),
    };
    EvalLimits {
        max_steps,
        deadline,
        cancel: global.cancel.clone(),
    }
}

impl SmartPsi {
    /// Load a graph: precomputes all neighborhood signatures with the
    /// matrix method (§3.1's optimization).
    pub fn new(g: Graph, config: SmartPsiConfig) -> Self {
        Self::new_recorded(g, config, &NoopRecorder)
    }

    /// [`SmartPsi::new`] with the signature build recorded into `rec`
    /// (a [`Phase::Signature`] span plus a
    /// [`Counter::SignatureRows`] count).
    pub fn new_recorded(g: Graph, config: SmartPsiConfig, rec: &dyn Recorder) -> Self {
        let t0 = Instant::now();
        let sigs = psi_signature::matrix_signatures_recorded(&g, config.depth, rec);
        let signature_build = t0.elapsed();
        Self {
            g,
            sigs,
            config,
            signature_build,
        }
    }

    /// The data graph.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Precomputed node signatures.
    pub fn signatures(&self) -> &SignatureMatrix {
        &self.sigs
    }

    /// The configuration this deployment runs with.
    pub fn config(&self) -> &SmartPsiConfig {
        &self.config
    }

    /// Time spent building the signatures in [`SmartPsi::new`].
    pub fn signature_build_time(&self) -> std::time::Duration {
        self.signature_build
    }

    /// A per-worker node matcher: the bare evaluator, chaos-wrapped
    /// when the run carries a fault schedule.
    pub(crate) fn matcher(&self, params: &RunParams) -> PsiMatcher<'_> {
        PsiMatcher::new(
            NodeEvaluator::new(&self.g, &self.sigs),
            params.fault.as_ref(),
        )
    }

    /// Evaluate one PSI query — the unified entry point fronting every
    /// executor. The returned [`PsiResult`] always carries a
    /// [`QueryProfile`]: coarse stage timings and the exact accounting
    /// counters (satisfying `trained + s1 + s2 + s3 + failed +
    /// unresolved == candidates`) unconditionally, plus per-phase
    /// spans and histograms when the spec supplies a
    /// [`MetricsRecorder`].
    pub fn run(&self, query: &PivotedQuery, spec: &RunSpec) -> PsiResult {
        let t0 = Instant::now();
        let params = RunParams::resolve(&self.config, spec);
        let rec: &dyn Recorder = match spec.recorder.as_deref() {
            Some(r) => r,
            None => &NoopRecorder,
        };
        let report = match spec.executor {
            ExecutorKind::Sequential => {
                self.seq_run(query, spec.subset.as_deref(), &spec.limits, &params, rec)
            }
            ExecutorKind::WorkStealing => parallel::work_stealing(
                self,
                query,
                &WorkStealingOptions {
                    threads: spec.threads,
                    grab: spec.grab,
                    shared_cache: spec.shared_cache,
                    limits: spec.limits.clone(),
                },
                spec.subset.as_deref(),
                &params,
                rec,
            ),
            ExecutorKind::StaticChunks => self.static_chunks(
                query,
                spec.threads.max(1),
                spec.subset.as_deref(),
                &spec.limits,
                &params,
                rec,
            ),
        };
        self.finish(report, t0, spec.recorder.as_deref())
    }

    /// Build the [`QueryProfile`] for one finished run and attach it.
    fn finish(
        &self,
        report: SmartPsiReport,
        t0: Instant,
        rec: Option<&MetricsRecorder>,
    ) -> PsiResult {
        let mut profile = QueryProfile::new();
        if let Some(r) = rec {
            profile.absorb(r);
        }
        profile.total_wall_ns = t0.elapsed().as_nanos() as u64;
        profile.signature_build_ns = self.signature_build.as_nanos() as u64;
        profile.train_ns = report.timings.training_and_prediction.as_nanos() as u64;
        profile.evaluation_ns = report.timings.evaluation.as_nanos() as u64;
        profile.alpha_accuracy = report.alpha_accuracy;
        // The executor's own bookkeeping overrides whatever the
        // recorder sampled: the accounting identity must be exact even
        // on unprofiled runs (and recorder totals may span several
        // queries when the caller reuses one registry).
        let f = &report.result.failures;
        profile.set_counter(Counter::Candidates, report.result.candidates as u64);
        profile.set_counter(Counter::TrainedNodes, report.trained_nodes as u64);
        profile.set_counter(Counter::ResolvedS1, report.resolved_stage1 as u64);
        profile.set_counter(Counter::RecoveredS2, report.recovered_stage2 as u64);
        profile.set_counter(Counter::RecoveredS3, report.recovered_stage3 as u64);
        profile.set_counter(Counter::FailedNodes, f.len() as u64);
        profile.set_counter(Counter::Unresolved, report.result.unresolved as u64);
        profile.set_counter(Counter::PredictedValid, report.predicted_valid as u64);
        profile.set_counter(Counter::CacheHits, report.cache_hits as u64);
        profile.set_counter(Counter::Steps, report.result.steps);
        profile.set_counter(Counter::Escalations, f.escalations);
        profile.set_counter(Counter::PanicsRecovered, f.panics_recovered);
        profile.set_counter(Counter::WorkerDeaths, f.worker_deaths as u64);
        profile.set_counter(Counter::Requeued, f.requeued as u64);
        let mut result = report.result;
        result.profile = Some(Box::new(profile));
        result
    }

    /// Evaluate one PSI query.
    #[deprecated(note = "use `SmartPsi::run` with a `RunSpec`")]
    pub fn evaluate(&self, query: &PivotedQuery) -> SmartPsiReport {
        SmartPsiReport::from_result(self.run(query, &RunSpec::new()))
    }

    /// Evaluate restricted to a candidate subset (used by the parallel
    /// driver and by FSM, which evaluates specific extension nodes).
    #[deprecated(note = "use `SmartPsi::run` with `RunSpec::candidates`")]
    pub fn evaluate_candidates(
        &self,
        query: &PivotedQuery,
        subset: Option<&[NodeId]>,
    ) -> SmartPsiReport {
        let mut spec = RunSpec::new();
        if let Some(s) = subset {
            spec = spec.candidates(s.to_vec());
        }
        SmartPsiReport::from_result(self.run(query, &spec))
    }

    /// Evaluate a candidate subset under global limits: a `deadline`
    /// or `cancel` flag in `limits` stops the evaluation early,
    /// reporting the untouched candidates as `unresolved` (`max_steps`
    /// is ignored — per-node budgets are SmartPSI's own).
    #[deprecated(note = "use `SmartPsi::run` with `RunSpec::candidates` + `RunSpec::limits`")]
    pub fn evaluate_candidates_limited(
        &self,
        query: &PivotedQuery,
        subset: Option<&[NodeId]>,
        limits: &EvalLimits,
    ) -> SmartPsiReport {
        let mut spec = RunSpec::new().limits(limits.clone());
        if let Some(s) = subset {
            spec = spec.candidates(s.to_vec());
        }
        SmartPsiReport::from_result(self.run(query, &spec))
    }

    /// Evaluate with the work-stealing pool (see [`crate::parallel`]):
    /// `threads` workers pull candidates from a shared queue in small
    /// grabs and share one sharded prediction cache, so one hard node
    /// no longer serializes a chunk and a prediction learned by any
    /// worker serves all. `threads = 0` uses the configured default.
    #[deprecated(note = "use `SmartPsi::run` with `RunSpec::threads`")]
    pub fn evaluate_parallel(&self, query: &PivotedQuery, threads: usize) -> SmartPsiReport {
        SmartPsiReport::from_result(self.run(query, &RunSpec::new().threads(threads)))
    }

    /// Work-stealing evaluation with full control over thread count,
    /// grab size, cache sharing and global limits.
    #[deprecated(note = "use `SmartPsi::run` with `RunSpec::threads`/`grab`/`shared_cache`/`limits`")]
    pub fn evaluate_work_stealing(
        &self,
        query: &PivotedQuery,
        options: &WorkStealingOptions,
    ) -> SmartPsiReport {
        let mut spec = RunSpec::new()
            .threads(options.threads)
            .grab(options.grab)
            .limits(options.limits.clone());
        if let Some(share) = options.shared_cache {
            spec = spec.shared_cache(share);
        }
        SmartPsiReport::from_result(self.run(query, &spec))
    }

    /// The pre-work-stealing parallel driver: split the candidates
    /// into one static chunk per thread, each evaluated independently
    /// (its own training run and its own cache). Kept as the
    /// load-imbalance baseline for the Figure 9 comparison; prefer
    /// [`RunSpec::threads`].
    #[deprecated(note = "use `SmartPsi::run` with `RunSpec::static_chunks`")]
    pub fn evaluate_parallel_static(&self, query: &PivotedQuery, threads: usize) -> SmartPsiReport {
        assert!(threads >= 1);
        SmartPsiReport::from_result(self.run(query, &RunSpec::new().static_chunks(threads)))
    }

    /// Sequential evaluation: train, then sweep the remaining
    /// candidates on the calling thread. The body behind
    /// `ExecutorKind::Sequential` (and the `threads ≤ 1` degenerate
    /// case of the pool).
    pub(crate) fn seq_run(
        &self,
        query: &PivotedQuery,
        subset: Option<&[NodeId]>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        let candidates = match subset {
            Some(s) => s.to_vec(),
            None => pivot_candidates(&self.g, query),
        };
        let total = candidates.len();
        let mut matcher = self.matcher(params);

        let sess = match self.train_session(query, candidates, limits, params, rec) {
            TrainOutcome::TooFew => {
                let ctx = QueryContext::new(query.clone(), self.config.depth);
                return self.plain_sweep(
                    &ctx,
                    &mut matcher,
                    subset_or(&self.g, query, subset),
                    limits,
                    params,
                    rec,
                );
            }
            TrainOutcome::Interrupted { steps, failures } => {
                let mut r = unresolved_report(total, steps);
                r.result.failures = failures;
                return r;
            }
            TrainOutcome::Trained(sess) => sess,
        };

        // ---- Main loop over the remaining candidates -----------------
        let t_eval = Instant::now();
        let cache = self
            .config
            .enable_cache
            .then(|| PredictionCache::new(self.config.cache_shards));
        let mut report = SmartPsiReport {
            result: PsiResult {
                valid: Vec::new(),
                candidates: total,
                steps: 0,
                unresolved: 0,
                failures: sess.failures.clone(),
                profile: None,
            },
            timings: StageTimings::default(),
            trained_nodes: sess.n_train,
            cache_hits: 0,
            resolved_stage1: 0,
            recovered_stage2: 0,
            recovered_stage3: 0,
            predicted_valid: 0,
            alpha_accuracy: 0.0,
        };
        let mut alpha_correct = 0usize;
        for (i, &u) in sess.rest.iter().enumerate() {
            let out = self.eval_rest_node(&sess, &mut matcher, cache.as_ref(), u, limits, params, rec);
            let stop = out.is_global_stop();
            absorb_outcome(&mut report, &mut alpha_correct, u, &out);
            if stop {
                // Global limits fired: everything not yet evaluated is
                // unresolved.
                report.result.unresolved += sess.rest.len() - i - 1;
                break;
            }
        }

        report.result.valid.extend_from_slice(&sess.train_valid);
        report.result.valid.sort_unstable();
        report.result.failures.sort();
        report.result.steps += sess.train_steps;
        report.alpha_accuracy = if sess.rest.is_empty() {
            1.0
        } else {
            alpha_correct as f64 / sess.rest.len() as f64
        };
        report.timings = StageTimings {
            training_and_prediction: sess.training_and_prediction,
            evaluation: t_eval.elapsed(),
        };
        report
    }

    /// Training phase (§4.2): sample training nodes, obtain ground
    /// truth and plan timings, fit Models α and β. Runs exactly once
    /// per query; the result is shared read-only across executor
    /// workers. Wrapped in a [`Phase::Train`] span.
    pub(crate) fn train_session(
        &self,
        query: &PivotedQuery,
        candidates: Vec<NodeId>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> TrainOutcome {
        timed(rec, Phase::Train, || {
            self.train_session_inner(query, candidates, limits, params, rec)
        })
    }

    fn train_session_inner(
        &self,
        query: &PivotedQuery,
        candidates: Vec<NodeId>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> TrainOutcome {
        if candidates.len() < self.config.min_candidates_for_ml {
            return TrainOutcome::TooFew;
        }
        let ctx = QueryContext::new(query.clone(), self.config.depth);
        let mut matcher = self.matcher(params);
        let m: &mut dyn NodeMatcher = &mut matcher;
        let isolate = params.panic_isolation;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let t_setup = Instant::now();

        // ---- Plans -------------------------------------------------
        let plan_orders = sample_plans(&self.g, query, self.config.plan_sample.max(1), rng.gen());
        let plans: Vec<CompiledPlan> = plan_orders.iter().map(|p| ctx.compile(p)).collect();
        let heuristic = ctx.compile(&heuristic_plan(&self.g, query));

        // ---- Training sample ---------------------------------------
        let n_train = ((candidates.len() as f64 * self.config.train_fraction).ceil() as usize)
            .clamp(1, self.config.max_train_nodes.min(candidates.len()));
        let total_candidates = candidates.len();
        let mut shuffled = candidates;
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let rest = shuffled.split_off(n_train);
        let train_nodes = shuffled;

        // ---- Ground truth + plan timing on the training nodes ------
        let mut valid = Vec::new();
        let mut steps = 0u64;
        let mut failures = FailureReport::default();
        let strategies = [
            Strategy::Optimistic { super_cap: Some(self.config.super_cap) },
            Strategy::Pessimistic,
        ];
        // avg_steps[method][plan] from training runs.
        let mut sum_steps = vec![vec![0u64; plans.len()]; 2];
        let mut cnt_steps = vec![vec![0u64; plans.len()]; 2];
        let mut alpha_rows: Vec<(NodeId, usize)> = Vec::with_capacity(n_train);
        let mut beta_rows: Vec<(NodeId, usize)> = Vec::with_capacity(n_train);
        'train: for &u in &train_nodes {
            // True type via the pessimistic method (§4.2.1: "more
            // stable and performs better on average"), isolated and
            // retried so one broken training node cannot fail the
            // query.
            let mut truth: Option<(Verdict, u64)> = None;
            let mut attempts = 0u32;
            let mut last_reason = String::new();
            while truth.is_none() && attempts <= params.retry.max_attempts {
                attempts += 1;
                let node_deadline = params.node_timeout.map(|t| Instant::now() + t);
                let lim = stage_limits_node(0, limits, node_deadline);
                match eval_isolated(m, &ctx, &heuristic, u, Strategy::Pessimistic, &lim, isolate) {
                    IsolatedOutcome::Finished(v, s) => {
                        steps += s;
                        if v != Verdict::Interrupted {
                            truth = Some((v, s));
                        } else if limits.expired() {
                            // Only the global deadline/cancel — not a
                            // node fault — aborts training.
                            return TrainOutcome::Interrupted { steps, failures };
                        } else {
                            // Per-node timeout or a matcher claiming a
                            // budget it never had.
                            failures.escalations += 1;
                            last_reason = "node timeout during training".into();
                        }
                    }
                    IsolatedOutcome::Panicked(reason) => {
                        failures.panics_recovered += 1;
                        last_reason = reason;
                    }
                }
            }
            let Some((truth_verdict, s_truth)) = truth else {
                failures.record(u, last_reason, attempts);
                continue 'train;
            };
            let is_valid = truth_verdict == Verdict::Valid;
            if is_valid {
                valid.push(u);
            }
            alpha_rows.push((u, is_valid as usize));
            let method_idx = !is_valid as usize; // 0 = optimistic (valid), 1 = pessimistic
            // Best plan under escalating limits (§4.2.2). Bounded:
            // past MAX_PLAN_ESCALATIONS doublings (or when every plan
            // panics, which no budget can fix) the node falls back to
            // the heuristic order instead of looping.
            const MAX_PLAN_ESCALATIONS: u32 = 20;
            let strategy = strategies[method_idx];
            let mut limit = self.config.initial_plan_limit;
            let mut first_round = true;
            let mut rounds = 0u32;
            let best_plan = loop {
                let mut best: Option<(u64, usize)> = None;
                let mut any_interrupted = false;
                for (pi, plan) in plans.iter().enumerate() {
                    // The ground-truth run above already timed the
                    // pessimistic method on the heuristic plan
                    // (plans[0] starts as the heuristic order); reuse
                    // it instead of re-evaluating.
                    let outcome = if first_round && pi == 0 && method_idx == 1 {
                        Some((truth_verdict, s_truth)) // reuse, costs nothing extra
                    } else {
                        let lim = stage_limits(limit, limits);
                        match eval_isolated(m, &ctx, plan, u, strategy, &lim, isolate) {
                            IsolatedOutcome::Finished(v, s) => {
                                steps += s;
                                Some((v, s))
                            }
                            IsolatedOutcome::Panicked(_) => {
                                failures.panics_recovered += 1;
                                None
                            }
                        }
                    };
                    match outcome {
                        Some((v, s)) if v != Verdict::Interrupted => {
                            sum_steps[method_idx][pi] += s;
                            cnt_steps[method_idx][pi] += 1;
                            if best.is_none_or(|(bs, _)| s < bs) {
                                best = Some((s, pi));
                            }
                        }
                        Some(_) => any_interrupted = true,
                        None => {}
                    }
                }
                rounds += 1;
                match best {
                    Some((_, pi)) => break pi,
                    None => {
                        if limits.expired() {
                            // The interruptions were the global limits,
                            // not the escalating step cap: doubling the
                            // cap would loop forever.
                            return TrainOutcome::Interrupted { steps, failures };
                        }
                        if !any_interrupted || rounds > MAX_PLAN_ESCALATIONS {
                            break 0;
                        }
                        failures.escalations += 1;
                        limit = limit.saturating_mul(2);
                        first_round = false;
                    }
                }
            };
            beta_rows.push((u, best_plan));
        }

        if alpha_rows.is_empty() {
            // Every training node failed: no model can be fitted. The
            // plain exact sweep (which is itself fault-isolated) covers
            // all candidates instead.
            return TrainOutcome::TooFew;
        }

        // ---- Fit the models -----------------------------------------
        let dim = self.sigs.label_count();
        let mut alpha_ds = Dataset::with_capacity(dim, alpha_rows.len());
        for &(u, label) in &alpha_rows {
            alpha_ds.push(self.sigs.row(u), label);
        }
        let mut alpha = RandomForest::new(self.config.forest);
        alpha.fit(&alpha_ds, rng.gen());

        let beta = if self.config.enable_beta && plans.len() > 1 {
            let mut beta_ds = Dataset::with_capacity(dim, beta_rows.len());
            for &(u, label) in &beta_rows {
                beta_ds.push(self.sigs.row(u), label);
            }
            let mut f = RandomForest::new(self.config.forest);
            f.fit(&beta_ds, rng.gen());
            Some(f)
        } else {
            None
        };

        let global_avg = {
            let total: u64 = sum_steps.iter().flatten().sum();
            let cnt: u64 = cnt_steps.iter().flatten().sum();
            match total.checked_div(cnt) {
                None => self.config.initial_plan_limit,
                Some(avg) => avg.max(16),
            }
        };
        rec.add(Counter::TrainedNodes, (n_train - failures.len()) as u64);
        rec.add(Counter::Steps, steps);
        TrainOutcome::Trained(Box::new(TrainedSession {
            ctx,
            plans,
            heuristic,
            strategies,
            alpha,
            beta,
            sum_steps,
            cnt_steps,
            global_avg,
            train_valid: valid,
            train_steps: steps,
            // Failed training nodes are accounted in `failures`, not
            // as trained (keeps `trained + stages + failed + unresolved
            // == candidates` exact).
            n_train: n_train - failures.len(),
            rest,
            total_candidates,
            training_and_prediction: t_setup.elapsed(),
            failures,
        }))
    }

    /// Evaluate one non-training candidate with the preemptive
    /// executor (§4.3), generalized into the [`RetryPolicy`] ladder:
    /// predict (or fetch from `cache`) the method and plan, then run
    /// up to `max_attempts` *limited* attempts — the predicted method
    /// first (stage 1), then alternating with the opposite method
    /// under escalating budgets (stage 2) — and finally one unlimited
    /// attempt with the exact fallback (stage 3). Every attempt is
    /// panic-isolated; a panic costs the attempt, not the query.
    ///
    /// Exits: `Done { stage: 1..3 }` (conclusive), `Done { stage: 0 }`
    /// (global deadline/cancel fired — the only inexact exit), or
    /// `Failed` (the node's matcher is broken or its per-node timeout
    /// expired; recorded instead of silently dropped).
    ///
    /// Instrumentation: prediction runs inside a [`Phase::Predict`]
    /// span, the ladder attempts inside [`Phase::MatchS1`] /
    /// [`Phase::MatchS2`] / [`Phase::MatchS3`] spans, and the node's
    /// totals feed the step histogram and the cache/retry counters.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_rest_node(
        &self,
        sess: &TrainedSession,
        m: &mut dyn NodeMatcher,
        cache: Option<&PredictionCache>,
        u: NodeId,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> NodeOutcome {
        let out = self.eval_rest_node_inner(sess, m, cache, u, limits, params, rec);
        let (cache_hit, predicted_valid, cost) = match &out {
            NodeOutcome::Done {
                cache_hit,
                predicted_valid,
                cost,
                ..
            }
            | NodeOutcome::Failed {
                cache_hit,
                predicted_valid,
                cost,
                ..
            } => (*cache_hit, *predicted_valid, *cost),
        };
        if rec.enabled() {
            rec.add(
                if cache_hit { Counter::CacheHits } else { Counter::CacheMisses },
                1,
            );
            rec.add(
                if predicted_valid { Counter::NodesOptimistic } else { Counter::NodesPessimistic },
                1,
            );
            rec.add(Counter::Steps, cost.steps);
            rec.add(Counter::Escalations, cost.escalations);
            rec.add(Counter::PanicsRecovered, cost.panics_recovered);
            rec.observe(Histogram::StepsPerNode, cost.steps);
            match &out {
                NodeOutcome::Done { stage, .. } => match stage {
                    1 => rec.add(Counter::ResolvedS1, 1),
                    2 => rec.add(Counter::RecoveredS2, 1),
                    3 => rec.add(Counter::RecoveredS3, 1),
                    _ => rec.add(Counter::Unresolved, 1),
                },
                NodeOutcome::Failed { .. } => rec.add(Counter::FailedNodes, 1),
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_rest_node_inner(
        &self,
        sess: &TrainedSession,
        m: &mut dyn NodeMatcher,
        cache: Option<&PredictionCache>,
        u: NodeId,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> NodeOutcome {
        let row = self.sigs.row(u);
        let key = cache.map(|_| psi_signature::SignatureKey::exact(row));
        let cached = match (cache, &key) {
            (Some(c), Some(k)) => c.get(k),
            _ => None,
        };
        let (method_idx, plan_idx) =
            cached.unwrap_or_else(|| timed(rec, Phase::Predict, || sess.predict(row, rec)));
        let cache_hit = cached.is_some();
        let predicted_valid = method_idx == 0;
        let plan = &sess.plans[plan_idx];
        let node_deadline = params.node_timeout.map(|t| Instant::now() + t);
        let isolate = params.panic_isolation;
        let retry = params.retry;
        let mut cost = NodeCost::default();
        let mut attempts = 0u32;

        let (verdict, stage) = 'ladder: {
            if self.config.enable_recovery {
                // Limited attempts: predicted method first, then
                // alternating with the opposite, budgets escalating by
                // the policy's multiplier.
                for attempt in 0..retry.max_attempts {
                    let mi = if attempt % 2 == 0 { method_idx } else { 1 - method_idx };
                    let budget = retry.budget(sess.max_time(mi, plan_idx), attempt);
                    let lim = stage_limits_node(budget, limits, node_deadline);
                    attempts += 1;
                    if attempt > 0 {
                        rec.add(Counter::Retries, 1);
                    }
                    let phase = if attempt == 0 { Phase::MatchS1 } else { Phase::MatchS2 };
                    match timed(rec, phase, || {
                        eval_isolated(m, &sess.ctx, plan, u, sess.strategies[mi], &lim, isolate)
                    }) {
                        IsolatedOutcome::Finished(v, s) => {
                            cost.steps += s;
                            if v != Verdict::Interrupted {
                                break 'ladder (v, if attempt == 0 { 1 } else { 2 });
                            }
                            if limits.expired() {
                                break 'ladder (Verdict::Interrupted, 0);
                            }
                            cost.escalations += 1;
                        }
                        IsolatedOutcome::Panicked(_) => cost.panics_recovered += 1,
                    }
                }
            }
            // Final attempt, no step budget: the exact fallback (the
            // pessimist on the heuristic plan) by default; the
            // predicted method when the policy opts out of escalation
            // or recovery is disabled.
            let (final_mi, final_plan) = if !self.config.enable_recovery {
                (method_idx, plan)
            } else if retry.escalate_to_exact {
                (1, &sess.heuristic)
            } else {
                (method_idx, &sess.heuristic)
            };
            let lim = stage_limits_node(0, limits, node_deadline);
            attempts += 1;
            if attempts > 1 {
                rec.add(Counter::Retries, 1);
            }
            let phase = if self.config.enable_recovery { Phase::MatchS3 } else { Phase::MatchS1 };
            match timed(rec, phase, || {
                eval_isolated(
                    m,
                    &sess.ctx,
                    final_plan,
                    u,
                    sess.strategies[final_mi],
                    &lim,
                    isolate,
                )
            }) {
                IsolatedOutcome::Finished(v, s) => {
                    cost.steps += s;
                    if v != Verdict::Interrupted {
                        (v, if self.config.enable_recovery { 3 } else { 1 })
                    } else if limits.expired() {
                        (Verdict::Interrupted, 0)
                    } else {
                        // An unlimited attempt interrupted without the
                        // global limits firing: per-node timeout, or a
                        // matcher misreporting its budget.
                        let reason = if node_deadline.is_some_and(|d| Instant::now() >= d) {
                            "node timeout".to_string()
                        } else {
                            "interrupted without an expired budget".to_string()
                        };
                        return NodeOutcome::Failed {
                            reason,
                            attempts,
                            cache_hit,
                            predicted_valid,
                            cost,
                        };
                    }
                }
                IsolatedOutcome::Panicked(reason) => {
                    return NodeOutcome::Failed {
                        reason,
                        attempts,
                        cache_hit,
                        predicted_valid,
                        cost,
                    };
                }
            }
        };

        // A stage-1 conclusion confirms the prediction: publish it so
        // structurally identical nodes skip prediction everywhere.
        if stage == 1 && !cache_hit {
            if let (Some(c), Some(k)) = (cache, key) {
                c.insert(k, (method_idx, plan_idx));
            }
        }
        NodeOutcome::Done {
            verdict,
            stage,
            cache_hit,
            predicted_valid,
            cost,
        }
    }

    /// Exact sweep without ML for small candidate sets. Each node is
    /// panic-isolated and retried like the main path, so a broken node
    /// is recorded instead of failing the query. Runs inside a
    /// [`Phase::ExactFallback`] span.
    fn plain_sweep(
        &self,
        ctx: &QueryContext,
        m: &mut dyn NodeMatcher,
        candidates: Vec<NodeId>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        let t0 = Instant::now();
        let heuristic = ctx.compile(&heuristic_plan(&self.g, ctx.query()));
        let isolate = params.panic_isolation;
        let mut valid = Vec::new();
        let mut steps = 0u64;
        let mut unresolved = 0usize;
        let mut resolved = 0usize;
        let mut failures = FailureReport::default();
        'sweep: for (i, &u) in candidates.iter().enumerate() {
            let node_deadline = params.node_timeout.map(|t| Instant::now() + t);
            let mut attempts = 0u32;
            let mut last_reason = String::new();
            while attempts <= params.retry.max_attempts {
                attempts += 1;
                let lim = stage_limits_node(0, limits, node_deadline);
                match timed(rec, Phase::ExactFallback, || {
                    eval_isolated(m, ctx, &heuristic, u, Strategy::Pessimistic, &lim, isolate)
                }) {
                    IsolatedOutcome::Finished(v, s) => {
                        steps += s;
                        rec.observe(Histogram::StepsPerNode, s);
                        match v {
                            Verdict::Valid => {
                                valid.push(u);
                                resolved += 1;
                                continue 'sweep;
                            }
                            Verdict::Invalid => {
                                resolved += 1;
                                continue 'sweep;
                            }
                            Verdict::Interrupted => {
                                if limits.expired() {
                                    unresolved += candidates.len() - i;
                                    break 'sweep;
                                }
                                failures.escalations += 1;
                                last_reason = "node timeout".into();
                            }
                        }
                    }
                    IsolatedOutcome::Panicked(reason) => {
                        failures.panics_recovered += 1;
                        last_reason = reason;
                    }
                }
            }
            failures.record(u, last_reason, attempts);
        }
        valid.sort_unstable();
        failures.sort();
        rec.add(Counter::Steps, steps);
        SmartPsiReport {
            result: PsiResult {
                valid,
                candidates: candidates.len(),
                steps,
                unresolved,
                failures,
                profile: None,
            },
            timings: StageTimings {
                training_and_prediction: std::time::Duration::ZERO,
                evaluation: t0.elapsed(),
            },
            trained_nodes: 0,
            cache_hits: 0,
            resolved_stage1: resolved,
            recovered_stage2: 0,
            recovered_stage3: 0,
            predicted_valid: 0,
            alpha_accuracy: 1.0,
        }
    }

    /// The static chunk-per-thread driver behind
    /// [`ExecutorKind::StaticChunks`]: each chunk runs an independent
    /// sequential evaluation (its own training and cache).
    fn static_chunks(
        &self,
        query: &PivotedQuery,
        threads: usize,
        subset: Option<&[NodeId]>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        if threads == 1 {
            return self.seq_run(query, subset, limits, params, rec);
        }
        let candidates = subset_or(&self.g, query, subset);
        let chunk = candidates.len().div_ceil(threads);
        if chunk == 0 {
            return self.seq_run(query, subset, limits, params, rec);
        }
        let scope_result = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|slice| {
                    (
                        slice.len(),
                        scope.spawn(move |_| self.seq_run(query, Some(slice), limits, params, rec)),
                    )
                })
                .collect();
            handles
                .into_iter()
                .map(|(n, h)| match h.join() {
                    Ok(r) => r,
                    Err(_) => {
                        // The chunk's thread died outside the isolated
                        // per-node path; its candidates stay
                        // unresolved, the run keeps going.
                        let mut r = unresolved_report(n, 0);
                        r.result.failures.worker_deaths = 1;
                        r
                    }
                })
                .collect::<Vec<SmartPsiReport>>()
        });
        let reports: Vec<SmartPsiReport> = match scope_result {
            Ok(r) if !r.is_empty() => r,
            _ => {
                let mut r = unresolved_report(candidates.len(), 0);
                r.result.failures.worker_deaths = threads;
                return r;
            }
        };
        // Merge.
        timed(rec, Phase::Merge, || {
            let mut merged = reports[0].clone();
            for r in &reports[1..] {
                merged.result.valid.extend_from_slice(&r.result.valid);
                merged.result.steps += r.result.steps;
                merged.result.candidates += r.result.candidates;
                merged.result.unresolved += r.result.unresolved;
                merged.result.failures.merge(&r.result.failures);
                merged.trained_nodes += r.trained_nodes;
                merged.cache_hits += r.cache_hits;
                merged.resolved_stage1 += r.resolved_stage1;
                merged.recovered_stage2 += r.recovered_stage2;
                merged.recovered_stage3 += r.recovered_stage3;
                merged.predicted_valid += r.predicted_valid;
                merged.timings.training_and_prediction += r.timings.training_and_prediction;
                merged.timings.evaluation += r.timings.evaluation;
            }
            merged.result.valid.sort_unstable();
            merged.result.failures.sort();
            merged.alpha_accuracy =
                reports.iter().map(|r| r.alpha_accuracy).sum::<f64>() / reports.len() as f64;
            merged
        })
    }
}

/// Accumulate one [`NodeOutcome`] into a report.
pub(crate) fn absorb_outcome(
    report: &mut SmartPsiReport,
    alpha_correct: &mut usize,
    u: NodeId,
    out: &NodeOutcome,
) {
    let (cache_hit, predicted_valid, cost) = match out {
        NodeOutcome::Done {
            cache_hit,
            predicted_valid,
            cost,
            ..
        }
        | NodeOutcome::Failed {
            cache_hit,
            predicted_valid,
            cost,
            ..
        } => (*cache_hit, *predicted_valid, *cost),
    };
    report.result.steps += cost.steps;
    report.result.failures.panics_recovered += cost.panics_recovered;
    report.result.failures.escalations += cost.escalations;
    if cache_hit {
        report.cache_hits += 1;
    }
    if predicted_valid {
        report.predicted_valid += 1;
    }
    match out {
        NodeOutcome::Done { verdict, stage, .. } => {
            match stage {
                1 => report.resolved_stage1 += 1,
                2 => report.recovered_stage2 += 1,
                3 => report.recovered_stage3 += 1,
                _ => report.result.unresolved += 1,
            }
            let is_valid = *verdict == Verdict::Valid;
            if is_valid {
                report.result.valid.push(u);
            }
            if *stage != 0 && is_valid == predicted_valid {
                *alpha_correct += 1;
            }
        }
        NodeOutcome::Failed {
            reason, attempts, ..
        } => {
            report.result.failures.record(u, reason.clone(), *attempts);
        }
    }
}

/// Report for a query whose evaluation was stopped before any
/// candidate resolved.
pub(crate) fn unresolved_report(candidates: usize, steps: u64) -> SmartPsiReport {
    SmartPsiReport {
        result: PsiResult::empty(candidates, steps),
        timings: StageTimings::default(),
        trained_nodes: 0,
        cache_hits: 0,
        resolved_stage1: 0,
        recovered_stage2: 0,
        recovered_stage3: 0,
        predicted_valid: 0,
        alpha_accuracy: 0.0,
    }
}

/// The candidate list for a plain sweep (re-derived when the caller
/// did not pass a subset).
fn subset_or(g: &Graph, query: &PivotedQuery, subset: Option<&[NodeId]>) -> Vec<NodeId> {
    match subset {
        Some(s) => s.to_vec(),
        None => pivot_candidates(g, query),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    fn figure1() -> (Graph, PivotedQuery) {
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        (g, q)
    }

    /// Counter shorthand against the attached profile.
    fn counter(r: &PsiResult, c: Counter) -> u64 {
        r.profile.as_ref().expect("run always attaches a profile").counter(c)
    }

    #[test]
    fn tiny_graph_uses_plain_sweep_and_is_exact() {
        let (g, q) = figure1();
        let smart = SmartPsi::new(g, SmartPsiConfig::default());
        let r = smart.run(&q, &RunSpec::new());
        assert_eq!(r.valid, vec![0, 5]);
        assert_eq!(counter(&r, Counter::TrainedNodes), 0); // below min_candidates_for_ml
        assert_eq!(r.unresolved, 0);
        assert!(r.profile.as_ref().unwrap().reconciles());
    }

    #[test]
    fn ml_path_matches_oracle_on_generated_graph() {
        let g = psi_datasets::generators::erdos_renyi(400, 1600, 4, 3);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10, // force the ML path
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        for size in 3..=5usize {
            let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, size as u64 * 13) else {
                continue;
            };
            let oracle = psi_match::psi_by_enumeration(
                &psi_match::Engine::TurboIso,
                &g,
                &q,
                &psi_match::SearchBudget::unlimited(),
            );
            let r = smart.run(&q, &RunSpec::new());
            assert_eq!(r.valid, oracle.valid, "size {size}");
            assert!(counter(&r, Counter::TrainedNodes) > 0, "ML path must engage");
            assert_eq!(r.unresolved, 0, "SmartPSI always resolves");
        }
    }

    #[test]
    fn recovery_disabled_still_exact() {
        let g = psi_datasets::generators::erdos_renyi(300, 1000, 3, 7);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            enable_recovery: false,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 5).unwrap();
        let oracle = psi_match::psi_by_enumeration(
            &psi_match::Engine::Vf2,
            &g,
            &q,
            &psi_match::SearchBudget::unlimited(),
        );
        let r = smart.run(&q, &RunSpec::new());
        assert_eq!(r.valid, oracle.valid);
    }

    #[test]
    fn beta_disabled_still_exact() {
        let g = psi_datasets::generators::erdos_renyi(300, 1000, 3, 8);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            enable_beta: false,
            enable_cache: false,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 6).unwrap();
        let oracle = psi_match::psi_by_enumeration(
            &psi_match::Engine::Vf2,
            &g,
            &q,
            &psi_match::SearchBudget::unlimited(),
        );
        let r = smart.run(&q, &RunSpec::new());
        assert_eq!(r.valid, oracle.valid);
        assert_eq!(counter(&r, Counter::CacheHits), 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = psi_datasets::generators::erdos_renyi(300, 1200, 3, 9);
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 3).unwrap();
        let seq = smart.run(&q, &RunSpec::new());
        let par = smart.run(&q, &RunSpec::new().threads(2));
        let stat = smart.run(&q, &RunSpec::new().static_chunks(2));
        assert_eq!(seq.valid, par.valid);
        assert_eq!(seq.valid, stat.valid);
        // PartialEq ignores the profile, so whole-result comparison
        // works across executors too.
        assert_eq!(seq, par);
    }

    #[test]
    fn stage_accounting_is_complete() {
        let g = psi_datasets::generators::erdos_renyi(500, 2500, 3, 11);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 2).unwrap();
        let r = smart.run(&q, &RunSpec::new());
        let p = r.profile.as_ref().unwrap();
        let rest = p.counter(Counter::Candidates) - p.counter(Counter::TrainedNodes);
        assert_eq!(
            p.counter(Counter::ResolvedS1)
                + p.counter(Counter::RecoveredS2)
                + p.counter(Counter::RecoveredS3),
            rest,
            "every non-training candidate resolves in exactly one stage"
        );
        assert!(p.reconciles());
        assert!(p.alpha_accuracy >= 0.0 && p.alpha_accuracy <= 1.0);
    }

    #[test]
    fn signature_reuse_across_queries() {
        let g = psi_datasets::generators::erdos_renyi(200, 700, 4, 12);
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
        assert!(smart.signatures().node_count() == g.node_count());
        assert!(smart.signature_build_time() > std::time::Duration::ZERO);
        // Two different queries reuse the same deployment.
        let q1 = psi_datasets::rwr::extract_query_seeded(&g, 3, 1).unwrap();
        let q2 = psi_datasets::rwr::extract_query_seeded(&g, 4, 2).unwrap();
        let _ = smart.run(&q1, &RunSpec::new());
        let _ = smart.run(&q2, &RunSpec::new());
    }

    #[test]
    fn recorder_fills_spans_and_histograms() {
        let g = psi_datasets::generators::erdos_renyi(400, 1600, 4, 3);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 13).unwrap();
        let rec = Arc::new(MetricsRecorder::new());
        let r = smart.run(&q, &RunSpec::new().recorder(rec.clone()));
        let p = r.profile.as_ref().unwrap();
        assert!(p.recorded);
        assert!(p.span(Phase::Train) > Duration::ZERO, "train span recorded");
        assert!(
            p.span(Phase::MatchS1) > Duration::ZERO,
            "stage-1 matching span recorded"
        );
        assert!(p.reconciles());
        // The step histogram saw every non-training candidate.
        let hist_count: u64 = p.hists[Histogram::StepsPerNode as usize].iter().sum();
        assert_eq!(
            hist_count,
            p.counter(Counter::Candidates) - p.counter(Counter::TrainedNodes)
        );
        // Spans are disjoint, so their sum stays below total wall time.
        assert!(p.phase_total().as_nanos() as u64 <= p.total_wall_ns);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_reconstruct_the_report() {
        let g = psi_datasets::generators::erdos_renyi(400, 1600, 4, 3);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 13).unwrap();
        let new = smart.run(&q, &RunSpec::new());
        let old = smart.evaluate(&q);
        assert_eq!(old.result, new);
        let p = new.profile.as_ref().unwrap();
        assert_eq!(old.trained_nodes as u64, p.counter(Counter::TrainedNodes));
        assert_eq!(old.resolved_stage1 as u64, p.counter(Counter::ResolvedS1));
        assert_eq!(old.cache_hits as u64, p.counter(Counter::CacheHits));
        assert_eq!(old.predicted_valid as u64, p.counter(Counter::PredictedValid));
        assert!((old.alpha_accuracy - p.alpha_accuracy).abs() < 1e-12);
    }
}
