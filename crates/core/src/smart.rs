//! SmartPSI — "the realist" (§4.2–4.3, Figure 6).
//!
//! The full system:
//!
//! 1. Load the graph and precompute all neighborhood signatures
//!    (matrix method).
//! 2. Per query, extract the pivot's candidate nodes and *train on a
//!    small random sample* of them (paper: ~10% up to 1000 nodes):
//!    each training node is evaluated with the pessimistic method to
//!    obtain its true type (Model α's label), and with a sample of
//!    execution plans under an escalating step limit to find its
//!    cheapest plan (Model β's label).
//! 3. Fit two Random-Forest classifiers on the signature feature
//!    vectors: **Model α** (valid/invalid → optimistic/pessimistic)
//!    and **Model β** (best plan).
//! 4. Evaluate the remaining candidates with the predicted method and
//!    plan under the **preemptive executor**: a step budget of
//!    `2 × AvgT(method, plan)` (training averages) detects likely
//!    mispredictions; recovery retries with the opposite method
//!    (stage 2) and finally with the predicted method and the
//!    heuristic plan, unlimited (stage 3). Exactness is guaranteed:
//!    stage 3 has no limit and both methods are exhaustive.
//! 5. Cache conclusions keyed by the exact signature row, so
//!    structurally identical nodes skip both prediction and, when the
//!    cached verdict exists, any further cost.

use std::time::Instant;

use psi_graph::hash::FxHashMap;
use psi_graph::{Graph, NodeId, PivotedQuery};
use psi_ml::forest::{ForestConfig, RandomForest};
use psi_ml::{Classifier, Dataset};
use psi_signature::SignatureMatrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::evaluator::{CompiledPlan, NodeEvaluator, QueryContext, Verdict};
use crate::limits::EvalLimits;
use crate::plan::{heuristic_plan, sample_plans};
use crate::report::{PsiResult, StageTimings};
use crate::single::pivot_candidates;
use crate::Strategy;

/// SmartPSI configuration (defaults follow the paper).
#[derive(Debug, Clone)]
pub struct SmartPsiConfig {
    /// Signature propagation depth `D`.
    pub depth: u32,
    /// Fraction of candidates used for training ("around 10%").
    pub train_fraction: f64,
    /// Hard cap on training nodes ("up to a maximum value"; the
    /// experiments use 1000).
    pub max_train_nodes: usize,
    /// Skip ML below this many candidates (training would dominate);
    /// all nodes are then evaluated pessimistically.
    pub min_candidates_for_ml: usize,
    /// Number of execution plans sampled for Model β.
    pub plan_sample: usize,
    /// Candidate cap of the super-optimistic pass.
    pub super_cap: usize,
    /// Random-forest hyper-parameters for both models.
    pub forest: ForestConfig,
    /// Train and use Model β (false = heuristic plan everywhere; used
    /// by the ablation bench).
    pub enable_beta: bool,
    /// Use the prediction cache.
    pub enable_cache: bool,
    /// Use the preemptive executor (false = trust predictions and run
    /// without limits; used by the ablation bench).
    pub enable_recovery: bool,
    /// Initial step limit when timing candidate plans during training;
    /// doubled until at least one plan finishes (§4.2.2).
    pub initial_plan_limit: u64,
    /// RNG seed (training-sample selection, plan sampling, forests).
    pub seed: u64,
}

impl Default for SmartPsiConfig {
    fn default() -> Self {
        Self {
            depth: psi_signature::DEFAULT_DEPTH,
            train_fraction: 0.10,
            max_train_nodes: 1000,
            min_candidates_for_ml: 40,
            plan_sample: 4,
            super_cap: 10,
            forest: ForestConfig::default(),
            enable_beta: true,
            enable_cache: true,
            enable_recovery: true,
            initial_plan_limit: 2_000,
            seed: 0x5aa7_951,
        }
    }
}

impl SmartPsiConfig {
    /// Preset matching the paper's *effective* training ratio on the
    /// web-scale datasets. The paper trains at most 1000 of roughly
    /// 450k candidates (~0.2%); our scaled-down YouTube/Twitter/Weibo
    /// have candidate sets two orders of magnitude smaller, so keeping
    /// `train_fraction = 0.10` would inflate the training share of the
    /// total far beyond anything the paper measured (see Table 4).
    /// This preset restores the paper's ratio at laptop scale.
    pub fn web_scale() -> Self {
        Self {
            train_fraction: 0.02,
            max_train_nodes: 120,
            plan_sample: 3,
            ..Self::default()
        }
    }
}

/// A SmartPSI deployment: one data graph, loaded in memory with all
/// node signatures precomputed.
pub struct SmartPsi {
    g: Graph,
    sigs: SignatureMatrix,
    config: SmartPsiConfig,
    signature_build: std::time::Duration,
}

/// Full evaluation report.
#[derive(Debug, Clone)]
pub struct SmartPsiReport {
    /// The PSI answer.
    pub result: PsiResult,
    /// Wall-clock stage breakdown (Table 4).
    pub timings: StageTimings,
    /// Training nodes used.
    pub trained_nodes: usize,
    /// Candidates whose (method, plan) came from the cache.
    pub cache_hits: usize,
    /// Candidates resolved in stage 1 (prediction trusted and
    /// confirmed by the budget).
    pub resolved_stage1: usize,
    /// Candidates that needed the opposite method (stage 2).
    pub recovered_stage2: usize,
    /// Candidates that fell back to the heuristic plan, unlimited
    /// (stage 3).
    pub recovered_stage3: usize,
    /// Candidates Model α predicted valid.
    pub predicted_valid: usize,
    /// Accuracy of Model α measured against the final ground truth of
    /// every predicted candidate (Figure 11's metric).
    pub alpha_accuracy: f64,
}

impl SmartPsi {
    /// Load a graph: precomputes all neighborhood signatures with the
    /// matrix method (§3.1's optimization).
    pub fn new(g: Graph, config: SmartPsiConfig) -> Self {
        let t0 = Instant::now();
        let sigs = psi_signature::matrix_signatures(&g, config.depth);
        let signature_build = t0.elapsed();
        Self {
            g,
            sigs,
            config,
            signature_build,
        }
    }

    /// The data graph.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Precomputed node signatures.
    pub fn signatures(&self) -> &SignatureMatrix {
        &self.sigs
    }

    /// Time spent building the signatures in [`SmartPsi::new`].
    pub fn signature_build_time(&self) -> std::time::Duration {
        self.signature_build
    }

    /// Evaluate one PSI query.
    pub fn evaluate(&self, query: &PivotedQuery) -> SmartPsiReport {
        self.evaluate_candidates(query, None)
    }

    /// Evaluate restricted to a candidate subset (used by the parallel
    /// driver and by FSM, which evaluates specific extension nodes).
    pub fn evaluate_candidates(
        &self,
        query: &PivotedQuery,
        subset: Option<&[NodeId]>,
    ) -> SmartPsiReport {
        let candidates = match subset {
            Some(s) => s.to_vec(),
            None => pivot_candidates(&self.g, query),
        };
        let ctx = QueryContext::new(query.clone(), self.config.depth);
        let mut ev = NodeEvaluator::new(&self.g, &self.sigs);

        if candidates.len() < self.config.min_candidates_for_ml {
            // Too few nodes for ML to pay off: exact pessimistic sweep.
            return self.plain_sweep(&ctx, &mut ev, &candidates);
        }

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let t_setup = Instant::now();

        // ---- Plans -------------------------------------------------
        let plan_orders = sample_plans(&self.g, query, self.config.plan_sample.max(1), rng.gen());
        let plans: Vec<CompiledPlan> = plan_orders.iter().map(|p| ctx.compile(p)).collect();
        let heuristic = ctx.compile(&heuristic_plan(&self.g, query));

        // ---- Training sample ---------------------------------------
        let n_train = ((candidates.len() as f64 * self.config.train_fraction).ceil() as usize)
            .clamp(1, self.config.max_train_nodes.min(candidates.len()));
        let mut shuffled = candidates.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let (train_nodes, rest_nodes) = shuffled.split_at(n_train);

        // ---- Ground truth + plan timing on the training nodes ------
        let mut valid = Vec::new();
        let mut steps = 0u64;
        let strategies = [
            Strategy::Optimistic { super_cap: Some(self.config.super_cap) },
            Strategy::Pessimistic,
        ];
        // avg_steps[method][plan] from training runs.
        let mut sum_steps = vec![vec![0u64; plans.len()]; 2];
        let mut cnt_steps = vec![vec![0u64; plans.len()]; 2];
        let mut alpha_rows: Vec<(NodeId, usize)> = Vec::with_capacity(n_train);
        let mut beta_rows: Vec<(NodeId, usize)> = Vec::with_capacity(n_train);
        for &u in train_nodes {
            // True type via the pessimistic method (§4.2.1: "more
            // stable and performs better on average").
            let (truth_verdict, s_truth) =
                ev.evaluate(&ctx, &heuristic, u, Strategy::Pessimistic, &EvalLimits::unlimited());
            steps += s_truth;
            let is_valid = truth_verdict == Verdict::Valid;
            if is_valid {
                valid.push(u);
            }
            alpha_rows.push((u, is_valid as usize));
            let method_idx = !is_valid as usize; // 0 = optimistic (valid), 1 = pessimistic
            // Best plan under escalating limits (§4.2.2).
            let strategy = strategies[method_idx];
            let mut limit = self.config.initial_plan_limit;
            let mut first_round = true;
            let best_plan = loop {
                let mut best: Option<(u64, usize)> = None;
                for (pi, plan) in plans.iter().enumerate() {
                    // The ground-truth run above already timed the
                    // pessimistic method on the heuristic plan
                    // (plans[0] starts as the heuristic order); reuse
                    // it instead of re-evaluating.
                    let (v, s) = if first_round && pi == 0 && method_idx == 1 {
                        (truth_verdict, s_truth) // reuse, costs nothing extra
                    } else {
                        let (v, s) = ev.evaluate(&ctx, plan, u, strategy, &EvalLimits::steps(limit));
                        steps += s;
                        (v, s)
                    };
                    if v != Verdict::Interrupted {
                        sum_steps[method_idx][pi] += s;
                        cnt_steps[method_idx][pi] += 1;
                        if best.is_none_or(|(bs, _)| s < bs) {
                            best = Some((s, pi));
                        }
                    }
                }
                match best {
                    Some((_, pi)) => break pi,
                    None => {
                        limit = limit.saturating_mul(2);
                        first_round = false;
                    }
                }
            };
            beta_rows.push((u, best_plan));
        }

        // ---- Fit the models -----------------------------------------
        let dim = self.sigs.label_count();
        let mut alpha_ds = Dataset::with_capacity(dim, alpha_rows.len());
        for &(u, label) in &alpha_rows {
            alpha_ds.push(self.sigs.row(u), label);
        }
        let mut alpha = RandomForest::new(self.config.forest);
        alpha.fit(&alpha_ds, rng.gen());

        let beta = if self.config.enable_beta && plans.len() > 1 {
            let mut beta_ds = Dataset::with_capacity(dim, beta_rows.len());
            for &(u, label) in &beta_rows {
                beta_ds.push(self.sigs.row(u), label);
            }
            let mut f = RandomForest::new(self.config.forest);
            f.fit(&beta_ds, rng.gen());
            Some(f)
        } else {
            None
        };

        // MaxTime(u) = 2 × AvgT(method, plan) (§4.3), with a floor so a
        // zero-cost training average cannot starve stage 1.
        let global_avg = {
            let total: u64 = sum_steps.iter().flatten().sum();
            let cnt: u64 = cnt_steps.iter().flatten().sum();
            if cnt == 0 {
                self.config.initial_plan_limit
            } else {
                (total / cnt).max(16)
            }
        };
        let max_time = |method_idx: usize, plan_idx: usize| -> u64 {
            let c = cnt_steps[method_idx][plan_idx];
            if c == 0 {
                2 * global_avg
            } else {
                (2 * sum_steps[method_idx][plan_idx] / c).max(32)
            }
        };
        let training_and_prediction = t_setup.elapsed();

        // ---- Main loop over the remaining candidates -----------------
        let t_eval = Instant::now();
        let mut cache: FxHashMap<psi_signature::SignatureKey, (usize, usize)> = FxHashMap::default();
        let mut report = SmartPsiReport {
            result: PsiResult {
                valid: Vec::new(),
                candidates: candidates.len(),
                steps: 0,
                unresolved: 0,
            },
            timings: StageTimings::default(),
            trained_nodes: n_train,
            cache_hits: 0,
            resolved_stage1: 0,
            recovered_stage2: 0,
            recovered_stage3: 0,
            predicted_valid: 0,
            alpha_accuracy: 0.0,
        };
        let mut alpha_correct = 0usize;

        for &u in rest_nodes {
            let row = self.sigs.row(u);
            let key = psi_signature::SignatureKey::exact(row);
            let (method_idx, plan_idx, was_cached) = if self.config.enable_cache {
                match cache.get(&key) {
                    Some(&(m, p)) => (m, p, true),
                    None => {
                        let m = 1 - alpha.predict(row).min(1); // class 1 (valid) → optimistic (0)
                        let p = beta.as_ref().map_or(0, |b| b.predict(row).min(plans.len() - 1));
                        (m, p, false)
                    }
                }
            } else {
                let m = 1 - alpha.predict(row).min(1);
                let p = beta.as_ref().map_or(0, |b| b.predict(row).min(plans.len() - 1));
                (m, p, false)
            };
            if was_cached {
                report.cache_hits += 1;
            }
            let predicted_valid = method_idx == 0;
            if predicted_valid {
                report.predicted_valid += 1;
            }
            let strategy = strategies[method_idx];
            let plan = &plans[plan_idx];

            // ---- Preemptive execution (§4.3) -------------------------
            let verdict = if self.config.enable_recovery {
                // Stage 1: predicted method + plan, limited.
                let lim = EvalLimits::steps(max_time(method_idx, plan_idx));
                let (v1, s1) = ev.evaluate(&ctx, plan, u, strategy, &lim);
                report.result.steps += s1;
                if v1 != Verdict::Interrupted {
                    report.resolved_stage1 += 1;
                    if self.config.enable_cache && !was_cached {
                        cache.insert(key, (method_idx, plan_idx));
                    }
                    v1
                } else {
                    // Stage 2: opposite method, limited.
                    let opp = 1 - method_idx;
                    let lim = EvalLimits::steps(max_time(opp, plan_idx));
                    let (v2, s2) = ev.evaluate(&ctx, plan, u, strategies[opp], &lim);
                    report.result.steps += s2;
                    if v2 != Verdict::Interrupted {
                        report.recovered_stage2 += 1;
                        v2
                    } else {
                        // Stage 3: predicted method, heuristic plan,
                        // no limits — always conclusive.
                        let (v3, s3) =
                            ev.evaluate(&ctx, &heuristic, u, strategy, &EvalLimits::unlimited());
                        report.result.steps += s3;
                        report.recovered_stage3 += 1;
                        v3
                    }
                }
            } else {
                let (v, s) = ev.evaluate(&ctx, plan, u, strategy, &EvalLimits::unlimited());
                report.result.steps += s;
                report.resolved_stage1 += 1;
                if self.config.enable_cache && !was_cached {
                    cache.insert(key, (method_idx, plan_idx));
                }
                v
            };

            let is_valid = verdict == Verdict::Valid;
            if is_valid {
                report.result.valid.push(u);
            }
            if is_valid == predicted_valid {
                alpha_correct += 1;
            }
        }

        report.result.valid.extend_from_slice(&valid);
        report.result.valid.sort_unstable();
        report.result.steps += steps;
        report.alpha_accuracy = if rest_nodes.is_empty() {
            1.0
        } else {
            alpha_correct as f64 / rest_nodes.len() as f64
        };
        report.timings = StageTimings {
            training_and_prediction,
            evaluation: t_eval.elapsed(),
        };
        report
    }

    /// Exact sweep without ML for small candidate sets.
    fn plain_sweep(
        &self,
        ctx: &QueryContext,
        ev: &mut NodeEvaluator<'_>,
        candidates: &[NodeId],
    ) -> SmartPsiReport {
        let t0 = Instant::now();
        let heuristic = ctx.compile(&heuristic_plan(&self.g, ctx.query()));
        let mut valid = Vec::new();
        let mut steps = 0u64;
        for &u in candidates {
            let (v, s) =
                ev.evaluate(ctx, &heuristic, u, Strategy::Pessimistic, &EvalLimits::unlimited());
            steps += s;
            if v == Verdict::Valid {
                valid.push(u);
            }
        }
        valid.sort_unstable();
        SmartPsiReport {
            result: PsiResult {
                valid,
                candidates: candidates.len(),
                steps,
                unresolved: 0,
            },
            timings: StageTimings {
                training_and_prediction: std::time::Duration::ZERO,
                evaluation: t0.elapsed(),
            },
            trained_nodes: 0,
            cache_hits: 0,
            resolved_stage1: candidates.len(),
            recovered_stage2: 0,
            recovered_stage3: 0,
            predicted_valid: 0,
            alpha_accuracy: 1.0,
        }
    }

    /// Evaluate with `threads` workers, each sweeping a slice of the
    /// candidates with its own evaluator and cache (used by the
    /// Figure 9 comparison against the two-threaded baseline).
    pub fn evaluate_parallel(&self, query: &PivotedQuery, threads: usize) -> SmartPsiReport {
        assert!(threads >= 1);
        if threads == 1 {
            return self.evaluate(query);
        }
        let candidates = pivot_candidates(&self.g, query);
        let chunk = candidates.len().div_ceil(threads);
        if chunk == 0 {
            return self.evaluate(query);
        }
        let reports: Vec<SmartPsiReport> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|slice| scope.spawn(move |_| self.evaluate_candidates(query, Some(slice))))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        })
        .expect("parallel scope");
        // Merge.
        let mut merged = reports[0].clone();
        for r in &reports[1..] {
            merged.result.valid.extend_from_slice(&r.result.valid);
            merged.result.steps += r.result.steps;
            merged.result.candidates += r.result.candidates;
            merged.result.unresolved += r.result.unresolved;
            merged.trained_nodes += r.trained_nodes;
            merged.cache_hits += r.cache_hits;
            merged.resolved_stage1 += r.resolved_stage1;
            merged.recovered_stage2 += r.recovered_stage2;
            merged.recovered_stage3 += r.recovered_stage3;
            merged.predicted_valid += r.predicted_valid;
            merged.timings.training_and_prediction += r.timings.training_and_prediction;
            merged.timings.evaluation += r.timings.evaluation;
        }
        merged.result.valid.sort_unstable();
        merged.alpha_accuracy = reports.iter().map(|r| r.alpha_accuracy).sum::<f64>() / reports.len() as f64;
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    fn figure1() -> (Graph, PivotedQuery) {
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        (g, q)
    }

    #[test]
    fn tiny_graph_uses_plain_sweep_and_is_exact() {
        let (g, q) = figure1();
        let smart = SmartPsi::new(g, SmartPsiConfig::default());
        let r = smart.evaluate(&q);
        assert_eq!(r.result.valid, vec![0, 5]);
        assert_eq!(r.trained_nodes, 0); // below min_candidates_for_ml
        assert_eq!(r.result.unresolved, 0);
    }

    #[test]
    fn ml_path_matches_oracle_on_generated_graph() {
        let g = psi_datasets::generators::erdos_renyi(400, 1600, 4, 3);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10, // force the ML path
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        for size in 3..=5usize {
            let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, size as u64 * 13) else {
                continue;
            };
            let oracle = psi_match::psi_by_enumeration(
                &psi_match::Engine::TurboIso,
                &g,
                &q,
                &psi_match::SearchBudget::unlimited(),
            );
            let r = smart.evaluate(&q);
            assert_eq!(r.result.valid, oracle.valid, "size {size}");
            assert!(r.trained_nodes > 0, "ML path must engage");
            assert_eq!(r.result.unresolved, 0, "SmartPSI always resolves");
        }
    }

    #[test]
    fn recovery_disabled_still_exact() {
        let g = psi_datasets::generators::erdos_renyi(300, 1000, 3, 7);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            enable_recovery: false,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 5).unwrap();
        let oracle = psi_match::psi_by_enumeration(
            &psi_match::Engine::Vf2,
            &g,
            &q,
            &psi_match::SearchBudget::unlimited(),
        );
        let r = smart.evaluate(&q);
        assert_eq!(r.result.valid, oracle.valid);
    }

    #[test]
    fn beta_disabled_still_exact() {
        let g = psi_datasets::generators::erdos_renyi(300, 1000, 3, 8);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            enable_beta: false,
            enable_cache: false,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 6).unwrap();
        let oracle = psi_match::psi_by_enumeration(
            &psi_match::Engine::Vf2,
            &g,
            &q,
            &psi_match::SearchBudget::unlimited(),
        );
        let r = smart.evaluate(&q);
        assert_eq!(r.result.valid, oracle.valid);
        assert_eq!(r.cache_hits, 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = psi_datasets::generators::erdos_renyi(300, 1200, 3, 9);
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 3).unwrap();
        let seq = smart.evaluate(&q);
        let par = smart.evaluate_parallel(&q, 2);
        assert_eq!(seq.result.valid, par.result.valid);
    }

    #[test]
    fn stage_accounting_is_complete() {
        let g = psi_datasets::generators::erdos_renyi(500, 2500, 3, 11);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 2).unwrap();
        let r = smart.evaluate(&q);
        let rest = r.result.candidates - r.trained_nodes;
        assert_eq!(
            r.resolved_stage1 + r.recovered_stage2 + r.recovered_stage3,
            rest,
            "every non-training candidate resolves in exactly one stage"
        );
        assert!(r.alpha_accuracy >= 0.0 && r.alpha_accuracy <= 1.0);
    }

    #[test]
    fn signature_reuse_across_queries() {
        let g = psi_datasets::generators::erdos_renyi(200, 700, 4, 12);
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
        assert!(smart.signatures().node_count() == g.node_count());
        assert!(smart.signature_build_time() > std::time::Duration::ZERO);
        // Two different queries reuse the same deployment.
        let q1 = psi_datasets::rwr::extract_query_seeded(&g, 3, 1).unwrap();
        let q2 = psi_datasets::rwr::extract_query_seeded(&g, 4, 2).unwrap();
        let _ = smart.evaluate(&q1);
        let _ = smart.evaluate(&q2);
    }
}
