//! SmartPSI — "the realist" (§4.2–4.3, Figure 6): the public facade.
//!
//! The full system:
//!
//! 1. Load the graph and precompute all neighborhood signatures
//!    (matrix method).
//! 2. Per query, extract the pivot's candidate nodes and *train on a
//!    small random sample* of them (paper: ~10% up to 1000 nodes):
//!    each training node is evaluated with the pessimistic method to
//!    obtain its true type (Model α's label), and with a sample of
//!    execution plans under an escalating step limit to find its
//!    cheapest plan (Model β's label).
//! 3. Fit two Random-Forest classifiers on the signature feature
//!    vectors: **Model α** (valid/invalid → optimistic/pessimistic)
//!    and **Model β** (best plan).
//! 4. Evaluate the remaining candidates with the predicted method and
//!    plan under the **preemptive executor**: a step budget of
//!    `2 × AvgT(method, plan)` (training averages) detects likely
//!    mispredictions; recovery retries with the opposite method
//!    (stage 2) and finally with the predicted method and the
//!    heuristic plan, unlimited (stage 3). Exactness is guaranteed:
//!    stage 3 has no limit and both methods are exhaustive.
//! 5. Cache conclusions keyed by the exact signature row, so
//!    structurally identical nodes skip both prediction and, when the
//!    cached verdict exists, any further cost.
//!
//! The implementation lives in the layered [`crate::engine`] module
//! (context → training → ladder → exec → service); this module is the
//! thin public surface over it: [`SmartPsi`] wraps an
//! `Arc<`[`GraphContext`]`>` and [`SmartPsi::run`] resolves a
//! [`RunSpec`] to one of the engine's executors. The historical type
//! names (`SmartPsiConfig`, `RetryPolicy`, `ExecutorKind`) are
//! re-exported here for compatibility.
//!
//! # The unified entry point
//!
//! All executors are fronted by [`SmartPsi::run`], which takes a
//! builder-style [`RunSpec`] (`.threads(n)`, `.limits(..)`,
//! `.retry(..)`, `.faults(..)`, `.recorder(..)`) and returns a
//! [`PsiResult`] carrying a [`QueryProfile`] — per-phase wall times,
//! the metrics-registry counters, and log₂ step histograms (see
//! [`psi_obs`]). For a *stream* of queries, [`SmartPsi::deploy`]
//! spawns a persistent [`PsiService`]-backed deployment (single,
//! sharded, or evolving) over the same context.

use std::sync::Arc;
use std::time::{Duration, Instant};

use psi_graph::{Graph, NodeId, PivotedQuery};
use psi_obs::{Counter, MetricsRecorder, NoopRecorder, QueryProfile, Recorder};
use psi_signature::SigStore;

use crate::engine::adapt::AdaptedModels;
use crate::engine::context::GraphContext;
use crate::engine::deploy::{Deployment, DeploymentSpec};
use crate::engine::evolve::EvolvingContext;
use crate::engine::exec::{executor_for, unresolved_report, PredictionCache};
use crate::engine::service::PsiService;
use crate::engine::shard::ShardedService;
use crate::fault::FaultPlan;
use crate::limits::EvalLimits;
use crate::report::{PsiResult, StageTimings};

pub use crate::engine::context::SmartPsiConfig;
pub use crate::engine::exec::ExecutorKind;
pub use crate::engine::ladder::RetryPolicy;

/// Builder-style specification of one [`SmartPsi::run`] call: executor
/// choice, thread count, global limits, candidate subset, and per-run
/// overrides of the deployment's retry/fault/isolation knobs, plus an
/// optional [`MetricsRecorder`] for fine-grained profiling.
///
/// `RunSpec::default()` is a sequential, unlimited, unprofiled run
/// with every knob deferring to the deployment's
/// [`SmartPsiConfig`].
///
/// ```no_run
/// # use psi_core::smart::{RunSpec, RetryPolicy};
/// # use psi_core::limits::EvalLimits;
/// # use std::sync::Arc;
/// let rec = Arc::new(psi_obs::MetricsRecorder::new());
/// let spec = RunSpec::new()
///     .threads(4)
///     .limits(EvalLimits::unlimited())
///     .retry(RetryPolicy::default())
///     .recorder(rec.clone());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunSpec {
    pub(crate) executor: ExecutorKind,
    pub(crate) threads: usize,
    pub(crate) grab: usize,
    pub(crate) shared_cache: Option<bool>,
    pub(crate) limits: EvalLimits,
    pub(crate) subset: Option<Vec<NodeId>>,
    pub(crate) retry: Option<RetryPolicy>,
    pub(crate) node_timeout: Option<Option<Duration>>,
    pub(crate) panic_isolation: Option<bool>,
    pub(crate) fault: Option<Arc<FaultPlan>>,
    pub(crate) cache: Option<Arc<PredictionCache>>,
    pub(crate) recorder: Option<Arc<MetricsRecorder>>,
    pub(crate) feedback: bool,
    pub(crate) explore: Option<u8>,
    pub(crate) adapted: Option<Arc<AdaptedModels>>,
}

impl RunSpec {
    /// A sequential, unlimited, unprofiled run (same as `default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Run on the work-stealing pool with `n` workers (`0` = the
    /// config's `workers`, which at `0` in turn means one per
    /// available hardware thread).
    pub fn threads(mut self, n: usize) -> Self {
        self.executor = ExecutorKind::WorkStealing;
        self.threads = n;
        self
    }

    /// Run sequentially on the calling thread (the default).
    pub fn sequential(mut self) -> Self {
        self.executor = ExecutorKind::Sequential;
        self
    }

    /// Run the §4.1 two-threaded baseline (optimist vs pessimist raced
    /// per candidate; no training, no cache).
    pub fn two_thread(mut self) -> Self {
        self.executor = ExecutorKind::TwoThread;
        self
    }

    /// Run the static chunk-per-thread baseline with `n ≥ 1` threads.
    pub fn static_chunks(mut self, n: usize) -> Self {
        self.executor = ExecutorKind::StaticChunks;
        self.threads = n;
        self
    }

    /// Candidates per work-stealing queue grab (`0` = config default).
    pub fn grab(mut self, n: usize) -> Self {
        self.grab = n;
        self
    }

    /// Override the config's `shared_cache` for this run.
    pub fn shared_cache(mut self, share: bool) -> Self {
        self.shared_cache = Some(share);
        self
    }

    /// Global deadline / cancel flag observed by the whole run
    /// (`max_steps` is ignored — per-node budgets are SmartPSI's own).
    pub fn limits(mut self, limits: EvalLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Restrict the run to a candidate subset (used by the FSM miner,
    /// which evaluates specific extension nodes).
    pub fn candidates(mut self, subset: Vec<NodeId>) -> Self {
        self.subset = Some(subset);
        self
    }

    /// Override the config's retry/escalation policy for this run.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Override the config's per-node wall-clock timeout for this run
    /// (`None` disables it).
    pub fn node_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.node_timeout = Some(timeout);
        self
    }

    /// Override the config's panic isolation for this run.
    pub fn panic_isolation(mut self, on: bool) -> Self {
        self.panic_isolation = Some(on);
        self
    }

    /// Inject a deterministic fault schedule for this run (chaos
    /// drills and the fault-injection tests).
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attach an external, long-lived [`PredictionCache`] to this run
    /// instead of the per-run cache the executor would otherwise
    /// create. Entries are confirmed model predictions keyed by exact
    /// signature, so pre-warmed entries change cost only, never the
    /// answer. This is how a [`PsiService`] shares predictions across
    /// queries of the same shape; ignored when the config disables
    /// caching.
    pub fn cache(mut self, cache: Arc<PredictionCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Record fine-grained spans, counters, and histograms into `rec`;
    /// the run's [`QueryProfile`] absorbs the recorder's totals at
    /// query end. Without a recorder the instrumentation seam is the
    /// no-op [`psi_obs::NoopRecorder`] — one predictable branch per
    /// site — and the profile still carries the coarse timings and the
    /// exact accounting counters.
    ///
    /// Pass a fresh recorder per query for per-query profiles; a
    /// long-lived recorder accumulates across runs (and the profile of
    /// each run then absorbs the running totals).
    pub fn recorder(mut self, rec: Arc<MetricsRecorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Collect per-node training feedback: the result's
    /// [`PsiResult::feedback`](crate::PsiResult) carries one
    /// [`FeedbackRow`](crate::report::FeedbackRow) per
    /// predictor-adjudicated candidate. Off by default — collection
    /// costs one feature-vector copy per survivor. Feedback rows are
    /// telemetry: they never change the answer or the accounted cost.
    pub fn feedback(mut self, on: bool) -> Self {
        self.feedback = on;
        self
    }

    /// Force every surviving candidate onto method `m` (0 = optimistic,
    /// 1 = pessimistic) instead of Model α's prediction — the ε-greedy
    /// exploration arm of the adaptive serving layer. Model β still
    /// picks the plan; the prediction cache is bypassed in both
    /// directions so explored runs never pollute it. Exactness is
    /// unaffected (the ladder's stage 3 is conclusive either way).
    pub fn explore(mut self, m: u8) -> Self {
        self.explore = Some(m.min(1));
        self
    }

    /// Substitute the online-adapted α/β forests for this run's
    /// per-query models after training (frozen fallback when the
    /// models' feature layout no longer matches the graph). Attached
    /// by the adaptive serving layer; budgets and plans still come
    /// from the per-query training pass.
    pub fn adapted(mut self, models: Arc<AdaptedModels>) -> Self {
        self.adapted = Some(models);
        self
    }
}

/// Per-run knobs resolved from config + [`RunSpec`] overrides, threaded
/// through training, the retry ladder, the plain sweep, and the pool
/// workers so one `run` call sees one consistent set.
#[derive(Clone)]
pub(crate) struct RunParams {
    pub(crate) retry: RetryPolicy,
    pub(crate) node_timeout: Option<Duration>,
    pub(crate) panic_isolation: bool,
    pub(crate) fault: Option<Arc<FaultPlan>>,
    /// Cross-query cache attached by the caller (a
    /// [`PsiService`] job); `None` = executors use per-run caches.
    pub(crate) external_cache: Option<Arc<PredictionCache>>,
    /// Collect per-node [`FeedbackRow`](crate::report::FeedbackRow)s.
    pub(crate) feedback: bool,
    /// Exploration override: force this method for every survivor.
    pub(crate) explore: Option<u8>,
    /// Online-adapted forests to swap in after per-query training.
    pub(crate) adapted: Option<Arc<AdaptedModels>>,
}

impl RunParams {
    pub(crate) fn resolve(cfg: &SmartPsiConfig, spec: &RunSpec) -> Self {
        Self {
            retry: spec.retry.unwrap_or(cfg.retry),
            node_timeout: spec.node_timeout.unwrap_or(cfg.node_timeout),
            panic_isolation: spec.panic_isolation.unwrap_or(cfg.panic_isolation),
            fault: spec.fault.clone().or_else(|| cfg.fault.clone()),
            external_cache: spec.cache.clone(),
            feedback: spec.feedback,
            explore: spec.explore,
            adapted: spec.adapted.clone(),
        }
    }
}

/// A SmartPSI deployment: one data graph, loaded in memory with all
/// node signatures precomputed — a thin handle over an
/// `Arc<`[`GraphContext`]`>`, so cloning facades (or spawning a
/// [`PsiService`]) never re-reads the graph or rebuilds signatures.
pub struct SmartPsi {
    ctx: Arc<GraphContext>,
}

/// Full evaluation report as produced by the engine's executors. The
/// public API exposes the same numbers through the [`QueryProfile`]
/// attached to [`SmartPsi::run`]'s [`PsiResult`];
/// [`SmartPsiReport::from_result`] is the lossless conversion back.
#[derive(Debug, Clone)]
pub struct SmartPsiReport {
    /// The PSI answer.
    pub result: PsiResult,
    /// Wall-clock stage breakdown (Table 4).
    pub timings: StageTimings,
    /// Training nodes used.
    pub trained_nodes: usize,
    /// Candidates whose (method, plan) came from the cache.
    pub cache_hits: usize,
    /// Candidates resolved in stage 1 (prediction trusted and
    /// confirmed by the budget).
    pub resolved_stage1: usize,
    /// Candidates that needed the opposite method (stage 2).
    pub recovered_stage2: usize,
    /// Candidates that fell back to the heuristic plan, unlimited
    /// (stage 3).
    pub recovered_stage3: usize,
    /// Candidates Model α predicted valid.
    pub predicted_valid: usize,
    /// Accuracy of Model α measured against the final ground truth of
    /// every predicted candidate (Figure 11's metric). Candidates left
    /// unresolved by a deadline/cancel count as mispredicted.
    pub alpha_accuracy: f64,
}

impl Default for SmartPsiReport {
    /// An empty report (no candidates, nothing resolved).
    fn default() -> Self {
        unresolved_report(0, 0)
    }
}

impl SmartPsiReport {
    /// Reconstruct the full report from a [`SmartPsi::run`] result.
    /// Lossless when the result carries a profile (every `run` result
    /// does): the stage counters, timings, and α-accuracy are read
    /// back from the [`QueryProfile`].
    pub fn from_result(result: PsiResult) -> Self {
        let fields = match result.profile.as_deref() {
            Some(p) => (
                StageTimings {
                    training_and_prediction: Duration::from_nanos(p.train_ns),
                    evaluation: Duration::from_nanos(p.evaluation_ns),
                },
                p.counter(Counter::TrainedNodes) as usize,
                p.counter(Counter::CacheHits) as usize,
                p.counter(Counter::ResolvedS1) as usize,
                p.counter(Counter::RecoveredS2) as usize,
                p.counter(Counter::RecoveredS3) as usize,
                p.counter(Counter::PredictedValid) as usize,
                p.alpha_accuracy,
            ),
            None => (StageTimings::default(), 0, 0, 0, 0, 0, 0, 0.0),
        };
        Self {
            result,
            timings: fields.0,
            trained_nodes: fields.1,
            cache_hits: fields.2,
            resolved_stage1: fields.3,
            recovered_stage2: fields.4,
            recovered_stage3: fields.5,
            predicted_valid: fields.6,
            alpha_accuracy: fields.7,
        }
    }
}

impl SmartPsi {
    /// Load a graph: precomputes all neighborhood signatures with the
    /// matrix method (§3.1's optimization).
    pub fn new(g: Graph, config: SmartPsiConfig) -> Self {
        Self::from_context(Arc::new(GraphContext::new(g, config)))
    }

    /// [`SmartPsi::new`] with the signature build recorded into `rec`
    /// (a [`psi_obs::Phase::Signature`] span plus a
    /// [`Counter::SignatureRows`] count).
    pub fn new_recorded(g: Graph, config: SmartPsiConfig, rec: &dyn Recorder) -> Self {
        Self::from_context(Arc::new(GraphContext::new_recorded(g, config, rec)))
    }

    /// Wrap an already-built (typically shared) deployment context.
    pub fn from_context(ctx: Arc<GraphContext>) -> Self {
        Self { ctx }
    }

    /// The shared deployment context behind this facade.
    pub fn context(&self) -> &Arc<GraphContext> {
        &self.ctx
    }

    /// The data graph.
    pub fn graph(&self) -> &Graph {
        self.ctx.graph()
    }

    /// Precomputed node signatures, behind the deployment's
    /// [`SigStore`] backend (dense f32 by default; see
    /// [`psi_signature::SigStoreKind`]).
    pub fn signatures(&self) -> &SigStore {
        self.ctx.signatures()
    }

    /// The configuration this deployment runs with.
    pub fn config(&self) -> &SmartPsiConfig {
        self.ctx.config()
    }

    /// Time spent building the signatures in [`SmartPsi::new`].
    pub fn signature_build_time(&self) -> std::time::Duration {
        self.ctx.signature_build_time()
    }

    /// Resolve a [`DeploymentSpec`] into a live [`Deployment`] — the
    /// one front door over the whole serving matrix: single-service or
    /// sharded, static or evolving, dense or compact signature store.
    ///
    /// When the spec names a [`psi_signature::SigStoreKind`] different
    /// from the context's, the store is converted once here (compact →
    /// dense recomputes the f32 matrix from the graph); a static
    /// deployment then serves the converted context, an evolving one
    /// rebuilds its maintainer with the requested backend.
    pub fn deploy(&self, spec: &DeploymentSpec) -> Deployment {
        let workers = spec.worker_count();
        match (spec.is_sharded(), spec.label_capacity()) {
            (false, None) => {
                let ctx = self.ctx_with_store(spec);
                Deployment::Service(PsiService::with_adaptive(ctx, workers, spec.adaptive_cfg()))
            }
            (false, Some(cap)) => {
                // The maintainer seeds from the current dense rows and
                // publishes snapshots on the requested backend itself;
                // converting the static context first would only throw
                // the f32 seed away.
                let evolving = EvolvingContext::from_context(&self.ctx, cap, spec.store_kind());
                Deployment::Service(PsiService::spawn_evolving(
                    evolving,
                    workers,
                    spec.adaptive_cfg(),
                ))
            }
            (true, None) => {
                let ctx = self.ctx_with_store(spec);
                Deployment::Sharded(ShardedService::new(&ctx, &spec.shard_spec()))
            }
            (true, Some(cap)) => {
                // The evolving maintainer rebuilds from the graph
                // anyway; skip the context-store conversion and hand
                // the requested backend straight to the builder.
                let mut config = self.ctx.config().clone();
                if let Some(k) = spec.store_kind() {
                    config.sig_store = k;
                }
                Deployment::Sharded(ShardedService::new_evolving(
                    self.ctx.graph().clone(),
                    config,
                    cap,
                    &spec.shard_spec(),
                ))
            }
        }
    }

    /// The deployment context, converted to the spec's signature-store
    /// backend when one is requested and differs; otherwise the shared
    /// context as-is.
    fn ctx_with_store(&self, spec: &DeploymentSpec) -> Arc<GraphContext> {
        match spec.store_kind() {
            Some(k) if k != self.ctx.config().sig_store => {
                Arc::new(self.ctx.with_store_kind(k))
            }
            _ => self.ctx.clone(),
        }
    }

    /// Evaluate one PSI query — the unified entry point fronting every
    /// executor. The returned [`PsiResult`] always carries a
    /// [`QueryProfile`]: coarse stage timings and the exact accounting
    /// counters (satisfying `trained + s1 + s2 + s3 + failed +
    /// unresolved == candidates`) unconditionally, plus per-phase
    /// spans and histograms when the spec supplies a
    /// [`MetricsRecorder`].
    pub fn run(&self, query: &PivotedQuery, spec: &RunSpec) -> PsiResult {
        let t0 = Instant::now();
        let params = RunParams::resolve(self.ctx.config(), spec);
        let rec: &dyn Recorder = match spec.recorder.as_deref() {
            Some(r) => r,
            None => &NoopRecorder,
        };
        let report = executor_for(spec.executor).execute(&self.ctx, query, spec, &params, rec);
        self.finish(report, t0, spec.recorder.as_deref())
    }

    /// Build the [`QueryProfile`] for one finished run and attach it.
    fn finish(
        &self,
        report: SmartPsiReport,
        t0: Instant,
        rec: Option<&MetricsRecorder>,
    ) -> PsiResult {
        let mut profile = QueryProfile::new();
        if let Some(r) = rec {
            profile.absorb(r);
        }
        profile.total_wall_ns = t0.elapsed().as_nanos() as u64;
        profile.signature_build_ns = self.ctx.signature_build_time().as_nanos() as u64;
        profile.train_ns = report.timings.training_and_prediction.as_nanos() as u64;
        profile.evaluation_ns = report.timings.evaluation.as_nanos() as u64;
        profile.alpha_accuracy = report.alpha_accuracy;
        // The executor's own bookkeeping overrides whatever the
        // recorder sampled: the accounting identity must be exact even
        // on unprofiled runs (and recorder totals may span several
        // queries when the caller reuses one registry).
        let f = &report.result.failures;
        profile.set_counter(Counter::Candidates, report.result.candidates as u64);
        profile.set_counter(Counter::TrainedNodes, report.trained_nodes as u64);
        profile.set_counter(Counter::ResolvedS1, report.resolved_stage1 as u64);
        profile.set_counter(Counter::RecoveredS2, report.recovered_stage2 as u64);
        profile.set_counter(Counter::RecoveredS3, report.recovered_stage3 as u64);
        profile.set_counter(Counter::FailedNodes, f.len() as u64);
        profile.set_counter(Counter::Unresolved, report.result.unresolved as u64);
        profile.set_counter(Counter::PredictedValid, report.predicted_valid as u64);
        profile.set_counter(Counter::CacheHits, report.cache_hits as u64);
        profile.set_counter(Counter::Steps, report.result.steps);
        profile.set_counter(Counter::Escalations, f.escalations);
        profile.set_counter(Counter::PanicsRecovered, f.panics_recovered);
        profile.set_counter(Counter::WorkerDeaths, f.worker_deaths as u64);
        profile.set_counter(Counter::Requeued, f.requeued as u64);
        let mut result = report.result;
        result.profile = Some(Box::new(profile));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_obs::{Histogram, Phase};

    #[test]
    fn stage_accounting_is_complete() {
        let g = psi_datasets::generators::erdos_renyi(500, 2500, 3, 11);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 2).unwrap();
        let r = smart.run(&q, &RunSpec::new());
        let p = r.profile.as_ref().unwrap();
        let rest = p.counter(Counter::Candidates) - p.counter(Counter::TrainedNodes);
        assert_eq!(
            p.counter(Counter::ResolvedS1)
                + p.counter(Counter::RecoveredS2)
                + p.counter(Counter::RecoveredS3),
            rest,
            "every non-training candidate resolves in exactly one stage"
        );
        assert!(p.reconciles());
        assert!(p.alpha_accuracy >= 0.0 && p.alpha_accuracy <= 1.0);
    }

    #[test]
    fn recorder_fills_spans_and_histograms() {
        let g = psi_datasets::generators::erdos_renyi(400, 1600, 4, 3);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 13).unwrap();
        let rec = Arc::new(MetricsRecorder::new());
        let r = smart.run(&q, &RunSpec::new().recorder(rec.clone()));
        let p = r.profile.as_ref().unwrap();
        assert!(p.recorded);
        assert!(p.span(Phase::Train) > Duration::ZERO, "train span recorded");
        assert!(
            p.span(Phase::MatchS1) > Duration::ZERO,
            "stage-1 matching span recorded"
        );
        assert!(p.reconciles());
        // The step histogram saw every non-training candidate.
        let hist_count: u64 = p.hists[Histogram::StepsPerNode as usize].iter().sum();
        assert_eq!(
            hist_count,
            p.counter(Counter::Candidates) - p.counter(Counter::TrainedNodes)
        );
        // Spans are disjoint, so their sum stays below total wall time.
        assert!(p.phase_total().as_nanos() as u64 <= p.total_wall_ns);
    }
}
