//! The shared lazy worker pool: persistent OS threads reused by every
//! parallel driver, so repeated [`SmartPsi::run`](crate::SmartPsi::run)
//! calls stop paying per-call thread spawn (fig9 billed 836 ms of
//! `pool_spawn_ms` at 8 threads before this existed).
//!
//! One process-global pool ([`global`]) holds a plain FIFO of boxed
//! tasks behind a mutex + condvar. [`WorkerPool::ensure`] grows it
//! lazily to the largest thread count any run has asked for — actual
//! OS-thread spawns are billed under [`Phase::PoolSpawn`] /
//! [`Counter::PoolThreadsSpawned`], and a warm pool bills nothing.
//! [`WorkerPool::scatter`] submits one batch of borrowing tasks and
//! blocks the calling thread until every task completed, which is the
//! safety argument for handing non-`'static` closures to persistent
//! threads (see the `SAFETY` comment inside).
//!
//! **Fault containment.** Every task runs under `catch_unwind`; a
//! panicking task counts as one worker death in `scatter`'s return
//! value (the moral equivalent of the old per-run thread dying at
//! join) and the pool thread survives to serve the next task.
//!
//! **No nested scatter.** Tasks must never call `scatter` themselves:
//! tasks are independent units and the pool makes no provision for a
//! task blocking on other tasks. Today's only submitters are the
//! work-stealing and static-chunk drivers in
//! [`exec`](super::exec), whose tasks run grab loops / sequential
//! sweeps and submit nothing.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use psi_obs::{Counter, Phase, Recorder};

/// A type-erased, lifetime-erased unit of pool work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A borrowing task as submitted by a driver; `scatter` erases the
/// lifetime after pinning it with its completion latch.
pub(crate) type ScopedTask<'s> = Box<dyn FnOnce() + Send + 's>;

struct PoolState {
    queue: VecDeque<Task>,
    threads: usize,
}

/// The persistent worker pool. Use [`global`]; the type is only
/// exposed for its methods.
pub(crate) struct WorkerPool {
    state: Mutex<PoolState>,
    work: Condvar,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

/// Lock a pool mutex, riding out poisoning: a task panic is already
/// accounted by the completion latch, and both protected states
/// (task queue, latch counters) stay consistent across unwinds.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The process-global pool (created empty on first touch; threads are
/// spawned only by [`WorkerPool::ensure`]).
pub(crate) fn global() -> &'static WorkerPool {
    POOL.get_or_init(|| WorkerPool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            threads: 0,
        }),
        work: Condvar::new(),
    })
}

/// Completion latch of one `scatter` batch: counts tasks down and
/// accumulates how many of them panicked.
struct Latch {
    state: Mutex<(usize, usize)>,
    done: Condvar,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Self {
            state: Mutex::new((remaining, 0)),
            done: Condvar::new(),
        }
    }

    fn complete(&self, died: bool) {
        let mut st = locked(&self.state);
        st.0 -= 1;
        if died {
            st.1 += 1;
        }
        if st.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every task completed; returns the death count.
    fn wait(&self) -> usize {
        let mut st = locked(&self.state);
        while st.0 > 0 {
            st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.1
    }
}

impl WorkerPool {
    /// Grow the pool to at least `n` resident threads. Billed only
    /// when threads are actually spawned — a warm pool records
    /// nothing, which is exactly the amortization fig9 measures.
    pub(crate) fn ensure(&'static self, n: usize, rec: &dyn Recorder) {
        let t0 = Instant::now();
        let mut spawned = 0u64;
        {
            let mut st = locked(&self.state);
            while st.threads < n {
                st.threads += 1;
                spawned += 1;
                std::thread::spawn(move || self.worker_loop());
            }
        }
        if spawned > 0 && rec.enabled() {
            rec.add(Counter::PoolThreadsSpawned, spawned);
            rec.span_ns(Phase::PoolSpawn, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Run one batch of borrowing tasks to completion on the pool,
    /// blocking the caller until the last task finished. Returns how
    /// many tasks died (panicked); a dead task's side effects are
    /// whatever it committed before the panic, and its pool thread
    /// survives.
    ///
    /// Tasks from concurrent `scatter` calls interleave on the same
    /// threads; each batch only waits for its own latch.
    pub(crate) fn scatter(&'static self, tasks: Vec<ScopedTask<'_>>) -> usize {
        let latch = Arc::new(Latch::new(tasks.len()));
        {
            let mut st = locked(&self.state);
            for t in tasks {
                // SAFETY: `scatter` does not return until `latch.wait()`
                // has observed every task's completion (the latch is
                // decremented after the task ran, panicking or not), so
                // every `'s` borrow captured by the task strictly
                // outlives its execution on the pool thread. The
                // lifetime is the only thing erased.
                let t: Task = unsafe {
                    std::mem::transmute::<ScopedTask<'_>, ScopedTask<'static>>(t)
                };
                let latch = Arc::clone(&latch);
                st.queue.push_back(Box::new(move || {
                    let died = catch_unwind(AssertUnwindSafe(t)).is_err();
                    latch.complete(died);
                }));
            }
        }
        self.work.notify_all();
        latch.wait()
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut st = locked(&self.state);
                loop {
                    if let Some(t) = st.queue.pop_front() {
                        break t;
                    }
                    st = self.work.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            // Tasks arrive pre-wrapped in catch_unwind by `scatter`;
            // this outer guard only exists so a bug there can never
            // leak a thread out of the pool's accounting.
            let _ = catch_unwind(AssertUnwindSafe(task));
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use psi_obs::NoopRecorder;

    use super::*;

    #[test]
    fn scatter_runs_borrowing_tasks_to_completion() {
        let pool = global();
        pool.ensure(2, &NoopRecorder);
        let hits = AtomicUsize::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as ScopedTask<'_>
            })
            .collect();
        let deaths = pool.scatter(tasks);
        assert_eq!(deaths, 0);
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panicking_task_counts_as_death_and_pool_survives() {
        let pool = global();
        pool.ensure(2, &NoopRecorder);
        let ok = AtomicUsize::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..4)
            .map(|i| {
                let ok = &ok;
                Box::new(move || {
                    if i == 1 {
                        panic!("injected");
                    }
                    ok.fetch_add(1, Ordering::Relaxed);
                }) as ScopedTask<'_>
            })
            .collect();
        let deaths = pool.scatter(tasks);
        assert_eq!(deaths, 1);
        assert_eq!(ok.load(Ordering::Relaxed), 3);
        // The pool is still alive for the next batch.
        let again: Vec<ScopedTask<'_>> = vec![Box::new(|| {
            ok.fetch_add(1, Ordering::Relaxed);
        })];
        assert_eq!(pool.scatter(again), 0);
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn empty_scatter_returns_immediately() {
        assert_eq!(global().scatter(Vec::new()), 0);
    }

    #[test]
    fn ensure_bills_only_actual_spawns() {
        let rec = psi_obs::MetricsRecorder::new();
        let pool = global();
        pool.ensure(3, &rec);
        let first = rec.counter(Counter::PoolThreadsSpawned);
        // Warm pool: asking for the same (or a lower) count spawns and
        // bills nothing.
        pool.ensure(3, &rec);
        pool.ensure(1, &rec);
        assert_eq!(rec.counter(Counter::PoolThreadsSpawned), first);
    }
}
