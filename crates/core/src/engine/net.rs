//! The network front door: TCP serving over [`PsiService`] with
//! admission control, backpressure, and graceful degradation.
//!
//! # Architecture
//!
//! ```text
//!   accept loop ──┬── connection 1: reader thread ──► job queue
//!                 │                 writer thread ◄── JobHandles
//!                 ├── connection 2: reader / writer
//!                 └── …
//! ```
//!
//! One accept thread owns the listener. Each connection gets a
//! *reader* thread (parse → admission → submit) and a *writer* thread
//! (redeem [`JobHandle`]s in request order, serialize, write); the
//! pair is connected by an in-order channel, so a client can pipeline
//! requests and still receive responses in request order.
//!
//! # Admission control (the shed ladder)
//!
//! A request is admitted only if it passes, in order:
//!
//! 1. **Drain gate** — a draining server answers `"error":"draining"`.
//! 2. **Per-connection token bucket** — `quota_rate` tokens/second,
//!    `quota_burst` capacity; an empty bucket answers
//!    `"error":"quota"` with the exact `retry_after_ms` until the next
//!    token.
//! 3. **Cost-laddered queue depth** — the paper's optimist/pessimist
//!    cost framing gives a per-query difficulty signal *before*
//!    evaluation: predicted cost ≈ pivot-label candidate count ×
//!    query size. Cheap queries may fill the whole queue
//!    (`max_queue`), medium ones ¾ of it, heavy ones ½ — so under
//!    pressure the server sheds the expensive tail first and keeps
//!    serving cheap traffic. Shed responses carry a `retry_after_ms`
//!    derived from the live [`Histogram::QueueWait`] median scaled by
//!    the backlog-per-worker, so clients back off proportionally to
//!    real queue latency, not a guess.
//!
//! Admitted queries are stamped with a deadline
//! ([`EvalLimits::with_deadline`]): if it expires while the job is
//! still queued, the service answers `"error":"deadline"` without
//! running it (see
//! [`DEADLINE_EXPIRED_REASON`](super::service::DEADLINE_EXPIRED_REASON)).
//!
//! # Graceful drain
//!
//! The `shutdown` op (or [`NetServer::shutdown`]) drains: stop
//! accepting connections, answer new requests with `draining`, give
//! queued jobs a grace window via [`PsiService::shutdown`], abort the
//! rest with structured failures, then close every connection. Every
//! accepted job gets exactly one response — a result or a structured
//! error — through its connection's writer. There is no signal
//! handling here (the dependency policy rules out `libc`); a process
//! manager's SIGTERM hook should speak the protocol and send
//! `{"op":"shutdown",…}`.
//!
//! # Robustness
//!
//! A malformed line answers `"error":"bad_request"` on that
//! connection only — the parser never panics and over-long lines are
//! skipped, not buffered unboundedly. Slow or dead clients hit
//! `write_timeout` and their connection is dropped without blocking
//! the service (their in-flight jobs still complete and are
//! discarded). `crates/core/tests/net.rs` fuzzes all of this over a
//! loopback socket.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use psi_graph::PivotedQuery;
use psi_obs::{Counter, Histogram, MetricsRecorder, Phase, Recorder};

use crate::limits::EvalLimits;
use crate::smart::RunSpec;

use super::proto::{self, ErrorKind, Request, WireStats};
use super::service::{DrainReport, JobHandle, PsiService};

/// Tuning for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Queue-depth ceiling for the admission ladder: cheap queries are
    /// shed at this depth, medium at ¾ of it, heavy at ½.
    pub max_queue: usize,
    /// Per-connection token-bucket refill rate, tokens (requests) per
    /// second. `0.0` disables the quota.
    pub quota_rate: f64,
    /// Token-bucket capacity (burst size).
    pub quota_burst: f64,
    /// Deadline stamped on queries that do not carry `deadline_ms`.
    /// `None` admits them without a deadline.
    pub default_deadline: Option<Duration>,
    /// Socket write timeout — a client that cannot drain its responses
    /// this long is disconnected instead of wedging its writer.
    pub write_timeout: Duration,
    /// Longest accepted request line, bytes; longer lines answer
    /// `bad_request` and are skipped without buffering.
    pub max_line_bytes: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            max_queue: 256,
            quota_rate: 0.0,
            quota_burst: 32.0,
            default_deadline: None,
            write_timeout: Duration::from_secs(5),
            max_line_bytes: 1 << 20,
        }
    }
}

/// Classified per-query cost for the shed ladder; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CostClass {
    Cheap,
    Medium,
    Heavy,
}

/// What the reader hands the writer, in request order.
enum Outgoing {
    /// A fully formed response line.
    Line(String),
    /// An admitted job: redeem the handle, then serialize.
    Job { id: u64, handle: JobHandle },
}

struct Shared {
    service: RwLock<PsiService>,
    cfg: NetServerConfig,
    local_addr: SocketAddr,
    draining: AtomicBool,
    /// `Some` once a drain has completed (idempotency + the report for
    /// later callers). The lock also serializes concurrent drains.
    drain_result: Mutex<Option<DrainReport>>,
    /// Read-half clones of every live connection, closed on drain to
    /// unblock parked readers. Writers keep flushing pending
    /// responses — only the read direction is shut.
    conn_streams: Mutex<Vec<TcpStream>>,
    /// Front-door metrics: [`Counter::Admitted`]/[`Counter::Shed`]
    /// and the [`Phase::NetRead`]/[`Phase::NetWrite`] spans. Queue
    /// and service counters live in the service's own recorder.
    metrics: Arc<MetricsRecorder>,
}

/// A TCP front door over one [`PsiService`] deployment. See the
/// module docs for the admission and drain semantics; see
/// [`super::proto`] for the wire grammar.
pub struct NetServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind `addr` and start serving `service` (use port 0 for an
    /// ephemeral port; [`NetServer::local_addr`] reports the actual
    /// one).
    pub fn bind(
        service: PsiService,
        addr: impl ToSocketAddrs,
        cfg: NetServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: RwLock::new(service),
            cfg,
            local_addr,
            draining: AtomicBool::new(false),
            drain_result: Mutex::new(None),
            conn_streams: Mutex::new(Vec::new()),
            metrics: Arc::new(MetricsRecorder::new()),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let conn_threads = conn_threads.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared, &conn_threads))
        };
        Ok(Self {
            shared,
            accept: Some(accept),
            conn_threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Front-door metrics: [`Counter::Admitted`], [`Counter::Shed`],
    /// and the [`Phase::NetRead`]/[`Phase::NetWrite`] spans.
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.shared.metrics
    }

    /// Drain and stop: stop accepting, shed new requests, give queued
    /// jobs `grace` to finish, abort the rest, close every connection,
    /// and join every thread. Idempotent — the first drain's report is
    /// returned to later callers (a protocol `shutdown` op may already
    /// have drained the server).
    pub fn shutdown(&mut self, grace: Duration) -> DrainReport {
        let report = self.shared.drain(grace);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let threads: Vec<_> = self.conn_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        report
    }

    /// Block until the server drains (a protocol `shutdown` op from
    /// some client, or [`NetServer::shutdown`] from another thread),
    /// then return the drain report. This is what `smartpsi serve`
    /// parks on.
    pub fn wait(&mut self) -> DrainReport {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let threads: Vec<_> = self.conn_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        self.shared.drain_result.lock().unwrap_or_default()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(1));
    }
}

impl Shared {
    fn drain(&self, grace: Duration) -> DrainReport {
        let mut done = self.drain_result.lock();
        if let Some(r) = *done {
            return r;
        }
        self.draining.store(true, Ordering::Release);
        // Poke the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.local_addr);
        // Give queued jobs their grace, then abort the remnants; every
        // already-submitted JobHandle resolves here, so connection
        // writers flush exactly one response per accepted job.
        let report = self.service.write().shutdown(grace);
        // Unblock parked readers (EOF); their pending writes still go
        // out before each connection closes.
        for s in self.conn_streams.lock().drain(..) {
            let _ = s.shutdown(Shutdown::Read);
        }
        *done = Some(report);
        report
    }

    /// Queue-wait median in milliseconds, from the live histogram;
    /// `None` until the service has served something.
    fn queue_wait_p50_ms(&self) -> Option<f64> {
        let hist = {
            let svc = self.service.read();
            svc.metrics().histogram(Histogram::QueueWait)
        };
        histogram_p50_ms(&hist)
    }

    /// Predicted difficulty of a query before evaluation: candidates
    /// that share the pivot's label × query size, bucketed relative to
    /// the graph. This is the coarse end of the paper's
    /// optimist/pessimist cost model — enough signal to shed the
    /// expensive tail first.
    fn cost_class(&self, query: &PivotedQuery) -> CostClass {
        let ctx = self.service.read().context();
        let g = ctx.graph();
        let label = query.pivot_label();
        let candidates = if (label as usize) < g.label_count() {
            g.nodes_with_label(label).len()
        } else {
            0
        };
        let cost = candidates.saturating_mul(query.graph().node_count());
        let base = g.node_count().max(1);
        if cost >= base {
            CostClass::Heavy
        } else if cost * 4 >= base {
            CostClass::Medium
        } else {
            CostClass::Cheap
        }
    }

    /// The admission ladder (drain gate and quota run in the caller).
    /// `Err` carries a ready-to-send shed line.
    fn admit(&self, id: u64, query: &PivotedQuery) -> Result<(), String> {
        let depth = self.service.read().pending();
        let cap = match self.cost_class(query) {
            CostClass::Cheap => self.cfg.max_queue,
            CostClass::Medium => (self.cfg.max_queue * 3) / 4,
            CostClass::Heavy => self.cfg.max_queue / 2,
        }
        .max(1);
        if depth < cap {
            return Ok(());
        }
        self.metrics.add(Counter::Shed, 1);
        let workers = self.service.read().workers().max(1);
        // Expected wait to clear the backlog down to this class's cap:
        // excess jobs × median per-job queue wait ÷ workers, clamped
        // to something a client can act on.
        let p50 = self.queue_wait_p50_ms().unwrap_or(5.0);
        let excess = (depth - cap + 1) as f64;
        let retry_ms = (excess * p50.max(0.1) / workers as f64).clamp(1.0, 30_000.0) as u64;
        Err(proto::error_line(
            Some(id),
            ErrorKind::Shed,
            &format!("queue depth {depth} at or over the {cap} cap for this cost class"),
            Some(retry_ms),
        ))
    }
}

/// Median of a log₂-bucketed nanosecond histogram, in milliseconds;
/// `None` when empty. The median bucket is represented by its
/// *midpoint*: a log bucket spans a full doubling, so reporting its
/// floor (the pre-fix behavior) underestimated the p50 by up to 2× —
/// shed responses then carried a too-small `retry_after_ms` and
/// clients hammered back before the backlog could clear.
fn histogram_p50_ms(hist: &[u64]) -> Option<f64> {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return None;
    }
    let mut seen = 0u64;
    for (i, &n) in hist.iter().enumerate() {
        seen += n;
        if seen * 2 >= total {
            return Some(psi_obs::LogHistogram::bucket_midpoint(i) as f64 / 1e6);
        }
    }
    None
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::Acquire) {
            break; // the drain poke (or any racing client) lands here
        }
        let Ok(stream) = stream else { continue };
        // Responses are single small writes; Nagle coupling with the
        // peer's delayed ACKs would add ~40 ms per round trip.
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        shared.conn_streams.lock().push(read_half);
        let shared = shared.clone();
        let handle = std::thread::spawn(move || conn_reader(&shared, stream));
        conn_threads.lock().push(handle);
    }
}

/// Per-connection request-rate limiter.
struct TokenBucket {
    tokens: f64,
    rate: f64,
    burst: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64, burst: f64) -> Self {
        Self {
            tokens: burst.max(1.0),
            rate,
            burst: burst.max(1.0),
            last: Instant::now(),
        }
    }

    /// Take one token, or report how long until one refills.
    fn take(&mut self) -> Result<(), Duration> {
        if self.rate <= 0.0 {
            return Ok(());
        }
        let now = Instant::now();
        self.tokens =
            (self.tokens + now.duration_since(self.last).as_secs_f64() * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64((1.0 - self.tokens) / self.rate))
        }
    }
}

/// Read one `\n`-terminated line of at most `cap` bytes into `buf`.
/// Returns `Ok(false)` on EOF, `Err(())` when the line overflowed the
/// cap (the rest of the line is consumed and discarded, so the
/// connection can keep serving).
fn read_capped_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    cap: usize,
) -> std::io::Result<Result<bool, ()>> {
    buf.clear();
    let mut overflow = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a non-empty partial line still parses (netcat -N
            // closes without a trailing newline).
            return Ok(if buf.is_empty() && !overflow {
                Ok(false)
            } else if overflow {
                Err(())
            } else {
                Ok(true)
            });
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if !overflow {
            let keep = take.min(cap.saturating_sub(buf.len()) + 1);
            buf.extend_from_slice(&chunk[..keep]);
            if buf.len() > cap {
                overflow = true;
            }
        }
        reader.consume(take);
        if done {
            while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(if overflow { Err(()) } else { Ok(true) });
        }
    }
}

fn conn_reader(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = write_half.set_write_timeout(Some(shared.cfg.write_timeout));
    let (tx, rx) = mpsc::channel::<Outgoing>();
    let writer = {
        let shared = shared.clone();
        std::thread::spawn(move || conn_writer(&shared, write_half, &rx))
    };
    let mut reader = BufReader::new(stream);
    let mut bucket = TokenBucket::new(shared.cfg.quota_rate, shared.cfg.quota_burst);
    let mut buf = Vec::new();
    loop {
        let t0 = Instant::now();
        let read = read_capped_line(&mut reader, &mut buf, shared.cfg.max_line_bytes);
        shared
            .metrics
            .span_ns(Phase::NetRead, t0.elapsed().as_nanos() as u64);
        let line = match read {
            Err(_) | Ok(Ok(false)) => break, // socket error or EOF
            Ok(Err(())) => {
                let err = proto::error_line(
                    None,
                    ErrorKind::BadRequest,
                    &format!("line over {} bytes", shared.cfg.max_line_bytes),
                    None,
                );
                if tx.send(Outgoing::Line(err)).is_err() {
                    break;
                }
                continue;
            }
            Ok(Ok(true)) => String::from_utf8_lossy(&buf).into_owned(),
        };
        if line.trim().is_empty() {
            continue;
        }
        let mut shutdown_after = false;
        let out = handle_line(shared, &mut bucket, line.trim(), &mut shutdown_after);
        if tx.send(out).is_err() {
            break; // writer gave up on a slow/dead client
        }
        if shutdown_after {
            break;
        }
    }
    drop(tx);
    let _ = writer.join();
}

fn handle_line(
    shared: &Arc<Shared>,
    bucket: &mut TokenBucket,
    line: &str,
    shutdown_after: &mut bool,
) -> Outgoing {
    let request = match proto::parse_request(line) {
        Ok(r) => r,
        Err((id, e)) => {
            return Outgoing::Line(proto::error_line(
                id,
                ErrorKind::BadRequest,
                &e.message,
                None,
            ));
        }
    };
    let id = request.id();
    // Drain gate: during and after a drain, nothing new is accepted.
    if shared.draining.load(Ordering::Acquire) && !matches!(request, Request::Shutdown { .. }) {
        return Outgoing::Line(proto::error_line(
            Some(id),
            ErrorKind::Draining,
            "server is draining",
            None,
        ));
    }
    // Token-bucket quota, query and update ops only (stats/shutdown
    // are control traffic).
    if matches!(request, Request::Query { .. } | Request::Update { .. }) {
        if let Err(wait) = bucket.take() {
            shared.metrics.add(Counter::Shed, 1);
            return Outgoing::Line(proto::error_line(
                Some(id),
                ErrorKind::Quota,
                "per-connection quota exhausted",
                Some((wait.as_millis() as u64).max(1)),
            ));
        }
    }
    match request {
        Request::Query {
            id,
            query,
            deadline_ms,
        } => {
            if let Err(shed_line) = shared.admit(id, &query) {
                return Outgoing::Line(shed_line);
            }
            let deadline = deadline_ms
                .map(Duration::from_millis)
                .or(shared.cfg.default_deadline)
                .map(|d| Instant::now() + d);
            let mut spec = RunSpec::new();
            if let Some(deadline) = deadline {
                spec = spec.limits(EvalLimits::unlimited().with_deadline(deadline));
            }
            shared.metrics.add(Counter::Admitted, 1);
            let handle = shared.service.read().submit(query, spec);
            Outgoing::Job { id, handle }
        }
        Request::Update { id, updates } => {
            let outcome = shared.service.read().apply_update(&updates);
            Outgoing::Line(match outcome {
                Ok(report) => proto::update_report_line(id, &report),
                Err(e) => proto::error_line(Some(id), ErrorKind::Update, &e.to_string(), None),
            })
        }
        Request::Stats { id } => {
            let (service, queue_depth, workers) = {
                let svc = shared.service.read();
                (svc.stats(), svc.pending(), svc.workers())
            };
            let stats = WireStats {
                service,
                queue_depth,
                workers,
                admitted: shared.metrics.counter(Counter::Admitted),
                shed: shared.metrics.counter(Counter::Shed),
            };
            Outgoing::Line(proto::stats_line(id, &stats))
        }
        Request::Shutdown { id, grace_ms } => {
            let report = shared.drain(Duration::from_millis(grace_ms));
            *shutdown_after = true;
            Outgoing::Line(proto::drain_line(id, report))
        }
    }
}

fn conn_writer(shared: &Arc<Shared>, mut stream: TcpStream, rx: &mpsc::Receiver<Outgoing>) {
    for out in rx.iter() {
        let line = match out {
            Outgoing::Line(line) => line,
            Outgoing::Job { id, handle } => {
                // Redeeming in channel order preserves response order
                // under pipelining.
                let result = handle.wait();
                proto::query_result_line(id, &result)
            }
        };
        let t0 = Instant::now();
        let wrote = stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush());
        shared
            .metrics
            .span_ns(Phase::NetWrite, t0.elapsed().as_nanos() as u64);
        if wrote.is_err() {
            // Slow or gone client: stop writing and unblock the reader
            // so the connection tears down. Remaining handles resolve
            // when dropped — accepted jobs still run to completion.
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_refills_at_rate() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert!(b.take().is_ok());
        assert!(b.take().is_ok());
        let wait = match b.take() {
            Err(w) => w,
            Ok(()) => panic!("burst of 2 must exhaust"),
        };
        assert!(wait <= Duration::from_millis(2), "1000/s refills within ~1ms");
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.take().is_ok(), "refilled after sleeping past the rate");
    }

    #[test]
    fn disabled_quota_always_admits() {
        let mut b = TokenBucket::new(0.0, 1.0);
        for _ in 0..10_000 {
            assert!(b.take().is_ok());
        }
    }

    #[test]
    fn queue_wait_p50_uses_the_bucket_midpoint() {
        use psi_obs::{LogHistogram, HIST_BUCKETS};
        // Known histogram: 3 observations in bucket 21 ([2^20, 2^21) ns
        // ≈ [1.05, 2.10) ms), 1 in bucket 23. The median bucket is 21;
        // its floor is ~1.05 ms but its midpoint is ~1.57 ms.
        let mut hist = [0u64; HIST_BUCKETS];
        hist[21] = 3;
        hist[23] = 1;
        let p50 = histogram_p50_ms(&hist).expect("non-empty histogram");
        let floor_ms = LogHistogram::bucket_floor(21) as f64 / 1e6;
        let mid_ms = LogHistogram::bucket_midpoint(21) as f64 / 1e6;
        assert!(p50 > floor_ms, "p50 {p50} must not sit on the bucket floor {floor_ms}");
        assert!((p50 - mid_ms).abs() < 1e-9, "p50 {p50} is the midpoint {mid_ms}");
        // Empty histogram: no estimate.
        assert_eq!(histogram_p50_ms(&[0u64; HIST_BUCKETS]), None);
        // Single observation of zero wait: bucket 0 is exact.
        let mut zero = [0u64; HIST_BUCKETS];
        zero[0] = 1;
        assert_eq!(histogram_p50_ms(&zero), Some(0.0));
    }
}
