//! Line-delimited JSON protocol for the network front door.
//!
//! One request per line, one response line per request, over a plain
//! TCP stream — speakable with `netcat`. The grammar (all numbers are
//! non-negative integers unless noted):
//!
//! ```text
//! request  = query | update | stats | shutdown
//! query    = {"op":"query","id":N,"labels":[L,…],"edges":[[U,V],…],
//!             "pivot":N,"deadline_ms":N?}
//! update   = {"op":"update","id":N,
//!             "updates":[{"add_node":L} | {"add_edge":[U,V,L]},…]}
//! stats    = {"op":"stats","id":N}
//! shutdown = {"op":"shutdown","id":N,"grace_ms":N?}
//!
//! response = ok | error
//! ok       = {"id":N,"ok":true, …op-specific fields…}
//! error    = {"id":N,"ok":false,"error":KIND,"message":S,
//!             "retry_after_ms":N?}
//! ```
//!
//! `id` is a caller-chosen correlation number echoed verbatim on the
//! response; responses on one connection arrive in request order, so
//! pipelining works with or without distinct ids.
//!
//! The JSON parser here is deliberately minimal and *hostile-input
//! safe*: recursion depth is capped ([`MAX_JSON_DEPTH`]), numbers are
//! plain `f64`s, and any malformed byte sequence yields a structured
//! [`ProtoError`] — never a panic. The fuzz corpus in
//! `crates/core/tests/net.rs` holds the server to that.

use psi_graph::{GraphUpdate, LabelId, NodeId, PivotedQuery};

use super::evolve::UpdateReport;
use super::service::{
    DrainReport, ServiceStats, ABORTED_BY_SHUTDOWN_REASON, DEADLINE_EXPIRED_REASON,
};
use crate::report::PsiResult;

/// Maximum nesting depth the JSON parser accepts. Protocol messages
/// need 3 levels; the cap only exists so `[[[[…` cannot recurse the
/// stack away.
pub const MAX_JSON_DEPTH: usize = 24;

// ---------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------

/// A parsed JSON value (object keys keep insertion order; duplicate
/// keys resolve to the first occurrence).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer fitting `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a line failed to parse as a protocol request. The message is
/// safe to echo back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Human-readable description of the first problem found.
    pub message: String,
}

impl ProtoError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Parse one JSON value from `input` (must consume the whole string
/// up to trailing whitespace).
pub fn parse_json(input: &str) -> Result<Json, ProtoError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ProtoError::new(format!(
            "trailing garbage at byte {pos}"
        )));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ProtoError> {
    if depth > MAX_JSON_DEPTH {
        return Err(ProtoError::new("nesting too deep"));
    }
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err(ProtoError::new("unexpected end of input"));
    };
    match c {
        b'{' => parse_obj(bytes, pos, depth),
        b'[' => parse_arr(bytes, pos, depth),
        b'"' => parse_str(bytes, pos).map(Json::Str),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_num(bytes, pos),
        _ => Err(ProtoError::new(format!(
            "unexpected byte 0x{c:02x} at {pos}",
            pos = *pos
        ))),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ProtoError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ProtoError::new(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, ProtoError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ProtoError::new("invalid number bytes"))?;
    let n: f64 = text
        .parse()
        .map_err(|_| ProtoError::new(format!("invalid number {text:?}")))?;
    if !n.is_finite() {
        return Err(ProtoError::new("non-finite number"));
    }
    Ok(Json::Num(n))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, ProtoError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err(ProtoError::new("unterminated string"));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(ProtoError::new("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| ProtoError::new("bad \\u escape"))?;
                        *pos += 4;
                        // Surrogates are rejected rather than paired:
                        // protocol strings are ASCII-ish reasons and
                        // op names, not arbitrary UTF-16 payloads.
                        let ch = char::from_u32(hex)
                            .ok_or_else(|| ProtoError::new("bad \\u code point"))?;
                        out.push(ch);
                    }
                    _ => return Err(ProtoError::new("unknown escape")),
                }
            }
            // Raw control bytes are invalid JSON; multi-byte UTF-8
            // sequences pass through (the input is a &str already).
            0x00..=0x1f => return Err(ProtoError::new("raw control byte in string")),
            _ => {
                // Re-assemble the UTF-8 sequence this byte starts.
                let len = utf8_len(c);
                let chunk = bytes
                    .get(*pos - 1..*pos - 1 + len)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or_else(|| ProtoError::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
                *pos += len - 1;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ProtoError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(ProtoError::new("expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ProtoError> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(ProtoError::new("expected object key"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(ProtoError::new("expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(ProtoError::new("expected ',' or '}'")),
        }
    }
}

/// Escape a string for embedding in a JSON response line.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// One parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Evaluate a pivoted-subgraph-isomorphism query.
    Query {
        /// Correlation id echoed on the response.
        id: u64,
        /// The query, validated by [`PivotedQuery::from_parts`].
        query: PivotedQuery,
        /// Client-requested deadline, milliseconds from receipt.
        deadline_ms: Option<u64>,
    },
    /// Apply a graph-update batch (evolving deployments only).
    Update {
        /// Correlation id echoed on the response.
        id: u64,
        /// The batch, in order.
        updates: Vec<GraphUpdate>,
    },
    /// Report serving stats.
    Stats {
        /// Correlation id echoed on the response.
        id: u64,
    },
    /// Gracefully drain and stop the server.
    Shutdown {
        /// Correlation id echoed on the response.
        id: u64,
        /// Grace period for the drain, milliseconds.
        grace_ms: u64,
    },
}

impl Request {
    /// The correlation id carried by any request kind.
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::Update { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id, .. } => *id,
        }
    }
}

/// Grace period used when a `shutdown` request omits `grace_ms`.
pub const DEFAULT_SHUTDOWN_GRACE_MS: u64 = 1_000;

fn field_u64(obj: &Json, key: &str) -> Result<u64, ProtoError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::new(format!("missing or invalid {key:?}")))
}

fn field_id(obj: &Json) -> Result<u64, ProtoError> {
    field_u64(obj, "id")
}

/// Parse one request line. Errors carry a client-safe message; the id
/// (when recoverable from the malformed line) is included so the
/// server can still correlate the error response.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, ProtoError)> {
    let value = parse_json(line).map_err(|e| (None, e))?;
    let id = value.get("id").and_then(Json::as_u64);
    let parsed = parse_request_value(&value);
    parsed.map_err(|e| (id, e))
}

fn parse_request_value(value: &Json) -> Result<Request, ProtoError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(ProtoError::new("request must be a JSON object"));
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new("missing or invalid \"op\""))?;
    match op {
        "query" => {
            let id = field_id(value)?;
            let labels = value
                .get("labels")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProtoError::new("missing or invalid \"labels\""))?
                .iter()
                .map(|l| {
                    l.as_u64()
                        .filter(|&l| l <= LabelId::MAX as u64)
                        .map(|l| l as LabelId)
                        .ok_or_else(|| ProtoError::new("invalid label"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let edges = value
                .get("edges")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProtoError::new("missing or invalid \"edges\""))?
                .iter()
                .map(|e| match e.as_arr() {
                    Some([u, v]) => {
                        let u = u
                            .as_u64()
                            .filter(|&n| n <= NodeId::MAX as u64)
                            .ok_or_else(|| ProtoError::new("invalid edge endpoint"))?;
                        let v = v
                            .as_u64()
                            .filter(|&n| n <= NodeId::MAX as u64)
                            .ok_or_else(|| ProtoError::new("invalid edge endpoint"))?;
                        Ok((u as NodeId, v as NodeId))
                    }
                    _ => Err(ProtoError::new("edge must be a [u,v] pair")),
                })
                .collect::<Result<Vec<_>, _>>()?;
            let pivot = field_u64(value, "pivot")?;
            if pivot > NodeId::MAX as u64 {
                return Err(ProtoError::new("invalid pivot"));
            }
            let deadline_ms = match value.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| ProtoError::new("invalid \"deadline_ms\""))?,
                ),
            };
            let query = PivotedQuery::from_parts(&labels, &edges, pivot as NodeId)
                .map_err(|e| ProtoError::new(format!("invalid query: {e}")))?;
            Ok(Request::Query {
                id,
                query,
                deadline_ms,
            })
        }
        "update" => {
            let id = field_id(value)?;
            let updates = value
                .get("updates")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProtoError::new("missing or invalid \"updates\""))?
                .iter()
                .map(parse_update)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Update { id, updates })
        }
        "stats" => Ok(Request::Stats {
            id: field_id(value)?,
        }),
        "shutdown" => {
            let id = field_id(value)?;
            let grace_ms = match value.get("grace_ms") {
                None | Some(Json::Null) => DEFAULT_SHUTDOWN_GRACE_MS,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| ProtoError::new("invalid \"grace_ms\""))?,
            };
            Ok(Request::Shutdown { id, grace_ms })
        }
        other => Err(ProtoError::new(format!("unknown op {other:?}"))),
    }
}

fn parse_update(u: &Json) -> Result<GraphUpdate, ProtoError> {
    if let Some(label) = u.get("add_node") {
        let label = label
            .as_u64()
            .filter(|&l| l <= LabelId::MAX as u64)
            .ok_or_else(|| ProtoError::new("invalid add_node label"))?;
        return Ok(GraphUpdate::AddNode {
            label: label as LabelId,
        });
    }
    if let Some(edge) = u.get("add_edge") {
        if let Some([u, v, label]) = edge.as_arr() {
            let get_node = |j: &Json| {
                j.as_u64()
                    .filter(|&n| n <= NodeId::MAX as u64)
                    .map(|n| n as NodeId)
                    .ok_or_else(|| ProtoError::new("invalid add_edge endpoint"))
            };
            let label = label
                .as_u64()
                .filter(|&l| l <= LabelId::MAX as u64)
                .ok_or_else(|| ProtoError::new("invalid add_edge label"))?;
            return Ok(GraphUpdate::AddEdge {
                u: get_node(u)?,
                v: get_node(v)?,
                label: label as LabelId,
            });
        }
        return Err(ProtoError::new("add_edge must be [u,v,label]"));
    }
    Err(ProtoError::new(
        "update must be {\"add_node\":L} or {\"add_edge\":[u,v,label]}",
    ))
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Structured error kinds the server emits; the wire string is
/// [`ErrorKind::wire_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a valid protocol request.
    BadRequest,
    /// The per-connection token-bucket quota is exhausted.
    Quota,
    /// Queue-depth admission control shed the request.
    Shed,
    /// The server is draining and accepts no new work.
    Draining,
    /// The job's deadline expired before it could run.
    Deadline,
    /// The job was aborted by a shutdown drain.
    Aborted,
    /// A graph-update batch was rejected.
    Update,
}

impl ErrorKind {
    /// The `"error"` field value on the wire.
    pub fn wire_name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Quota => "quota",
            ErrorKind::Shed => "shed",
            ErrorKind::Draining => "draining",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Aborted => "aborted",
            ErrorKind::Update => "update",
        }
    }
}

/// Serialize an error response line (no trailing newline). An absent
/// id serializes as `null` — the client could not be correlated.
pub fn error_line(
    id: Option<u64>,
    kind: ErrorKind,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let id = id.map_or_else(|| "null".to_string(), |i| i.to_string());
    let mut out = format!(
        "{{\"id\":{id},\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"",
        kind.wire_name(),
        escape(message)
    );
    if let Some(ms) = retry_after_ms {
        out.push_str(&format!(",\"retry_after_ms\":{ms}"));
    }
    out.push('}');
    out
}

/// Serialize a query result line. Results that are structured
/// deadline/shutdown failures (see
/// [`DEADLINE_EXPIRED_REASON`] / [`ABORTED_BY_SHUTDOWN_REASON`])
/// become `"error":"deadline"` / `"error":"aborted"` responses, so a
/// client sees exactly one answer *or* one structured failure per
/// accepted job.
pub fn query_result_line(id: u64, r: &PsiResult) -> String {
    if let [failure] = r.failures.nodes.as_slice() {
        if r.valid.is_empty() && failure.reason == DEADLINE_EXPIRED_REASON {
            return error_line(Some(id), ErrorKind::Deadline, DEADLINE_EXPIRED_REASON, None);
        }
        if r.valid.is_empty() && failure.reason == ABORTED_BY_SHUTDOWN_REASON {
            return error_line(Some(id), ErrorKind::Aborted, ABORTED_BY_SHUTDOWN_REASON, None);
        }
    }
    let mut out = format!("{{\"id\":{id},\"ok\":true,\"valid\":[");
    for (i, v) in r.valid.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push_str(&format!(
        "],\"candidates\":{},\"steps\":{},\"unresolved\":{}",
        r.candidates, r.steps, r.unresolved
    ));
    if !r.failures.nodes.is_empty() {
        out.push_str(",\"failures\":[");
        for (i, f) in r.failures.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"reason\":\"{}\"}}",
                f.node,
                escape(&f.reason)
            ));
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Serialize an update-report response line.
pub fn update_report_line(id: u64, r: &UpdateReport) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"epoch\":{},\"nodes_added\":{},\"edges_added\":{},\
         \"duplicate_edges\":{},\"rows_repaired\":{}}}",
        r.epoch, r.nodes_added, r.edges_added, r.duplicate_edges, r.rows_repaired
    )
}

/// Serving-tier numbers reported by the `stats` op, merging service
/// counters with front-door admission counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireStats {
    /// [`ServiceStats`] of the backing service.
    pub service: ServiceStats,
    /// Jobs currently queued behind the front door.
    pub queue_depth: usize,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Requests admitted past quota + queue-depth control.
    pub admitted: u64,
    /// Requests shed by quota or queue-depth control.
    pub shed: u64,
}

/// Serialize a stats response line.
pub fn stats_line(id: u64, s: &WireStats) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"queries_served\":{},\"queue_depth\":{},\"workers\":{},\
         \"admitted\":{},\"shed\":{},\"deadline_expired\":{},\"drained\":{},\
         \"graph_epoch\":{},\"requeued_jobs\":{},\"worker_panics\":{}}}",
        s.service.queries_served,
        s.queue_depth,
        s.workers,
        s.admitted,
        s.shed,
        s.service.deadline_expired,
        s.service.drained,
        s.service.graph_epoch,
        s.service.requeued_jobs,
        s.service.worker_panics
    )
}

/// Serialize a drain-report response line (the `shutdown` op answer).
pub fn drain_line(id: u64, r: DrainReport) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"drained\":{},\"aborted\":{}}}",
        r.drained, r.aborted
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_query_request() {
        let line = r#"{"op":"query","id":7,"labels":[0,1,2],"edges":[[0,1],[1,2]],"pivot":0,"deadline_ms":250}"#;
        let req = parse_request(line).expect("valid request");
        match req {
            Request::Query {
                id,
                query,
                deadline_ms,
            } => {
                assert_eq!(id, 7);
                assert_eq!(query.pivot(), 0);
                assert_eq!(query.graph().node_count(), 3);
                assert_eq!(deadline_ms, Some(250));
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_update_stats_shutdown() {
        let req = parse_request(
            r#"{"op":"update","id":1,"updates":[{"add_node":2},{"add_edge":[0,5,1]}]}"#,
        )
        .expect("valid");
        match req {
            Request::Update { id, updates } => {
                assert_eq!(id, 1);
                assert_eq!(
                    updates,
                    vec![
                        GraphUpdate::AddNode { label: 2 },
                        GraphUpdate::AddEdge { u: 0, v: 5, label: 1 },
                    ]
                );
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"op":"stats","id":3}"#).expect("valid"),
            Request::Stats { id: 3 }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","id":4,"grace_ms":50}"#).expect("valid"),
            Request::Shutdown { id: 4, grace_ms: 50 }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","id":4}"#).expect("valid"),
            Request::Shutdown {
                id: 4,
                grace_ms: DEFAULT_SHUTDOWN_GRACE_MS
            }
        ));
    }

    #[test]
    fn malformed_lines_error_and_keep_the_id_when_possible() {
        let (id, _) = parse_request(r#"{"op":"nope","id":9}"#).expect_err("unknown op");
        assert_eq!(id, Some(9), "id recovered from a bad request");
        let (id, _) = parse_request("not json at all").expect_err("garbage");
        assert_eq!(id, None);
        // Deep nesting is rejected, not a stack overflow.
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        assert!(parse_json(&deep).is_err());
    }

    #[test]
    fn json_roundtrip_essentials() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":"x\"\nA","c":true,"d":null}"#)
            .expect("valid json");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\"\nA");
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn structured_failures_become_error_responses() {
        let mut r = PsiResult::empty(0, 0);
        r.failures.record(3, DEADLINE_EXPIRED_REASON, 0);
        let line = query_result_line(9, &r);
        assert!(line.contains("\"error\":\"deadline\""), "{line}");
        let mut r = PsiResult::empty(0, 0);
        r.failures.record(3, ABORTED_BY_SHUTDOWN_REASON, 0);
        let line = query_result_line(9, &r);
        assert!(line.contains("\"error\":\"aborted\""), "{line}");
        // A real answer stays ok:true even with incidental failures.
        let mut r = PsiResult::empty(5, 10);
        r.valid = vec![1, 4];
        r.failures.record(2, "node timeout", 1);
        let line = query_result_line(2, &r);
        assert!(line.starts_with("{\"id\":2,\"ok\":true,\"valid\":[1,4]"), "{line}");
        assert!(line.contains("node timeout"), "{line}");
    }
}
