//! Per-graph immutable state: the loaded CSR graph, its precomputed
//! signature matrix, and the deployment configuration.
//!
//! A [`GraphContext`] is built once per data graph (the expensive part
//! is the §3.1 matrix signature computation) and is then shared
//! read-only by every query, executor worker, and
//! [`PsiService`](super::service::PsiService) job — typically behind an
//! `Arc`. The public facade [`SmartPsi`](crate::SmartPsi) is a thin
//! wrapper around `Arc<GraphContext>`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use psi_graph::Graph;
use psi_ml::forest::ForestConfig;
use psi_obs::Recorder;
use psi_signature::{default_scale, SigStore, SigStoreKind};

use crate::evaluator::NodeEvaluator;
use crate::fault::{FaultPlan, PsiMatcher};
use crate::smart::RunParams;

use super::ladder::RetryPolicy;

/// SmartPSI configuration (defaults follow the paper).
#[derive(Debug, Clone)]
pub struct SmartPsiConfig {
    /// Signature propagation depth `D`.
    pub depth: u32,
    /// Fraction of candidates used for training ("around 10%").
    pub train_fraction: f64,
    /// Hard cap on training nodes ("up to a maximum value"; the
    /// experiments use 1000).
    pub max_train_nodes: usize,
    /// Skip ML below this many candidates (training would dominate);
    /// all nodes are then evaluated pessimistically.
    pub min_candidates_for_ml: usize,
    /// Number of execution plans sampled for Model β.
    pub plan_sample: usize,
    /// Candidate cap of the super-optimistic pass.
    pub super_cap: usize,
    /// Random-forest hyper-parameters for both models.
    pub forest: ForestConfig,
    /// Train and use Model β (false = heuristic plan everywhere; used
    /// by the ablation bench).
    pub enable_beta: bool,
    /// Use the prediction cache.
    pub enable_cache: bool,
    /// Use the preemptive executor (false = trust predictions and run
    /// without limits; used by the ablation bench).
    pub enable_recovery: bool,
    /// Initial step limit when timing candidate plans during training;
    /// doubled until at least one plan finishes (§4.2.2).
    pub initial_plan_limit: u64,
    /// RNG seed (training-sample selection, plan sampling, forests).
    pub seed: u64,
    /// Worker threads for the work-stealing executor when the caller
    /// does not pin a count (`0` = one per available hardware thread).
    pub workers: usize,
    /// Candidates pulled from the shared work queue per grab. Small
    /// grabs keep hard (pessimistic) nodes from serializing a whole
    /// chunk behind one worker; large grabs reduce queue traffic.
    pub grab_size: usize,
    /// Share one prediction cache across all pool workers (the paper's
    /// cache-reuse optimization under parallelism). `false` gives each
    /// worker a private cache — the ablation baseline.
    pub shared_cache: bool,
    /// Shards of the concurrent prediction cache (rounded up to a
    /// power of two). More shards = less lock contention.
    pub cache_shards: usize,
    /// Retry/escalation policy of the preemptive executor.
    pub retry: RetryPolicy,
    /// Optional wall-clock budget per candidate node. A node that
    /// cannot be resolved within it (even by the exact fallback) is
    /// reported in `FailureReport` instead of stalling the query.
    pub node_timeout: Option<Duration>,
    /// Wrap every per-node evaluation in `catch_unwind` so a panicking
    /// matcher fails one node, not the query. On by default; the
    /// robustness bench turns it off to measure the clean-path cost.
    pub panic_isolation: bool,
    /// Deterministic fault schedule for chaos drills and the
    /// fault-injection tests; `None` in production.
    pub fault: Option<Arc<FaultPlan>>,
    /// Signature storage backend. `Dense` (the default) keeps the
    /// bit-exact f32 matrix of the paper; the compact kinds trade it
    /// for a quantized index ~3–7× smaller with identical valid sets
    /// (see [`psi_signature::store`] for the exactness argument).
    pub sig_store: SigStoreKind,
}

impl Default for SmartPsiConfig {
    fn default() -> Self {
        Self {
            depth: psi_signature::DEFAULT_DEPTH,
            train_fraction: 0.10,
            max_train_nodes: 1000,
            min_candidates_for_ml: 40,
            plan_sample: 4,
            super_cap: 10,
            forest: ForestConfig::default(),
            enable_beta: true,
            enable_cache: true,
            enable_recovery: true,
            initial_plan_limit: 2_000,
            seed: 0x05aa_7951,
            workers: 0,
            grab_size: 8,
            shared_cache: true,
            cache_shards: 16,
            retry: RetryPolicy::default(),
            node_timeout: None,
            panic_isolation: true,
            fault: None,
            sig_store: SigStoreKind::Dense,
        }
    }
}

impl SmartPsiConfig {
    /// Preset matching the paper's *effective* training ratio on the
    /// web-scale datasets. The paper trains at most 1000 of roughly
    /// 450k candidates (~0.2%); our scaled-down YouTube/Twitter/Weibo
    /// have candidate sets two orders of magnitude smaller, so keeping
    /// `train_fraction = 0.10` would inflate the training share of the
    /// total far beyond anything the paper measured (see Table 4).
    /// This preset restores the paper's ratio at laptop scale.
    pub fn web_scale() -> Self {
        Self {
            train_fraction: 0.02,
            max_train_nodes: 120,
            plan_sample: 3,
            ..Self::default()
        }
    }
}

/// One data graph loaded for querying: the graph, all node signatures
/// precomputed with the matrix method (§3.1), and the deployment
/// configuration. Immutable after construction, so an
/// `Arc<GraphContext>` is freely shared across queries, executor
/// workers, and service threads.
pub struct GraphContext {
    pub(crate) g: Graph,
    pub(crate) sigs: SigStore,
    pub(crate) config: SmartPsiConfig,
    pub(crate) signature_build: Duration,
    /// Version of the evolving graph this snapshot was published at;
    /// `0` for a cold-loaded (static) deployment. Bumped by
    /// [`EvolvingContext`](super::evolve::EvolvingContext) on every
    /// applied update batch.
    pub(crate) epoch: u64,
}

impl GraphContext {
    /// Load a graph: precomputes all neighborhood signatures.
    pub fn new(g: Graph, config: SmartPsiConfig) -> Self {
        Self::new_recorded(g, config, &psi_obs::NoopRecorder)
    }

    /// [`GraphContext::new`] with the signature build recorded into
    /// `rec` (a [`psi_obs::Phase::Signature`] span plus a
    /// [`psi_obs::Counter::SignatureRows`] count).
    pub fn new_recorded(g: Graph, config: SmartPsiConfig, rec: &dyn Recorder) -> Self {
        let t0 = Instant::now();
        let dense = psi_signature::matrix_signatures_recorded(&g, config.depth, rec);
        // Quantization (when configured) is part of the index build:
        // the dense matrix is dropped right here, so peak residency of
        // a compact deployment is one matrix, not two.
        let sigs = SigStore::from_matrix(dense, config.sig_store, default_scale(config.depth));
        let signature_build = t0.elapsed();
        Self {
            g,
            sigs,
            config,
            signature_build,
            epoch: 0,
        }
    }

    /// Assemble a snapshot from precomputed parts (the evolving-graph
    /// publish path): `sigs` must equal `matrix_signatures(&g,
    /// config.depth)` bit-for-bit — the incremental maintainer
    /// guarantees exactly that — so queries against this context are
    /// indistinguishable from a cold [`GraphContext::new`] build.
    pub(crate) fn from_precomputed(
        g: Graph,
        sigs: SigStore,
        config: SmartPsiConfig,
        epoch: u64,
        signature_build: Duration,
    ) -> Self {
        debug_assert_eq!(sigs.node_count(), g.node_count());
        debug_assert_eq!(sigs.label_count(), g.label_count());
        Self {
            g,
            sigs,
            config,
            signature_build,
            epoch,
        }
    }

    /// The graph version this snapshot was published at (`0` for a
    /// static deployment).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The data graph.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Precomputed node signatures, behind the storage backend chosen
    /// by [`SmartPsiConfig::sig_store`]. Use [`SigStore::dense`] when
    /// raw f32 rows are required (the bit-exact repro paths).
    pub fn signatures(&self) -> &SigStore {
        &self.sigs
    }

    /// Rebuild this context on a different storage backend. Dense →
    /// compact re-quantizes the existing rows (no signature
    /// recomputation); compact → anything recomputes from the graph
    /// (saturated counters are not invertible).
    pub(crate) fn with_store_kind(&self, kind: SigStoreKind) -> Self {
        let t0 = Instant::now();
        let scale = default_scale(self.config.depth);
        let sigs = if kind == self.sigs.kind() {
            self.sigs.clone()
        } else if let Some(dense) = self.sigs.dense() {
            SigStore::from_matrix(dense.clone(), kind, scale)
        } else {
            let dense = psi_signature::matrix_signatures(&self.g, self.config.depth);
            SigStore::from_matrix(dense, kind, scale)
        };
        let mut config = self.config.clone();
        config.sig_store = kind;
        Self {
            g: self.g.clone(),
            sigs,
            config,
            signature_build: self.signature_build + t0.elapsed(),
            epoch: self.epoch,
        }
    }

    /// The configuration this deployment runs with.
    pub fn config(&self) -> &SmartPsiConfig {
        &self.config
    }

    /// Time spent building the signatures in [`GraphContext::new`].
    pub fn signature_build_time(&self) -> Duration {
        self.signature_build
    }

    /// A per-worker node matcher: the bare evaluator, chaos-wrapped
    /// when the run carries a fault schedule.
    pub(crate) fn matcher(&self, params: &RunParams) -> PsiMatcher<'_> {
        PsiMatcher::new(
            NodeEvaluator::from_store(&self.g, &self.sigs),
            params.fault.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smart::{RunSpec, SmartPsi};

    #[test]
    fn signature_reuse_across_queries() {
        let g = psi_datasets::generators::erdos_renyi(200, 700, 4, 12);
        let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
        assert!(smart.signatures().node_count() == g.node_count());
        assert!(smart.signature_build_time() > Duration::ZERO);
        // Two different queries reuse the same deployment.
        let q1 = psi_datasets::rwr::extract_query_seeded(&g, 3, 1).unwrap();
        let q2 = psi_datasets::rwr::extract_query_seeded(&g, 4, 2).unwrap();
        let _ = smart.run(&q1, &RunSpec::new());
        let _ = smart.run(&q2, &RunSpec::new());
    }

    #[test]
    fn context_is_shareable_across_facades() {
        let g = psi_datasets::generators::erdos_renyi(200, 700, 3, 5);
        let ctx = Arc::new(GraphContext::new(g.clone(), SmartPsiConfig::default()));
        let q = psi_datasets::rwr::extract_query_seeded(&g, 3, 4).unwrap();
        let a = SmartPsi::from_context(ctx.clone());
        let b = SmartPsi::from_context(ctx.clone());
        assert_eq!(a.run(&q, &RunSpec::new()), b.run(&q, &RunSpec::new()));
        assert!(Arc::ptr_eq(a.context(), b.context()));
    }
}
