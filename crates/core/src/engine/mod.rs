//! The layered SmartPSI engine.
//!
//! What used to be one monolithic `smart.rs` is split into explicit
//! layers, each owning one concern of the paper's pipeline
//! (§4.2–§4.3), stacked bottom-up:
//!
//! ```text
//!   context   per-graph immutable state: CSR graph + SignatureMatrix
//!      │      behind an Arc, shareable across queries and threads
//!      ▼
//!   training  per-query sample selection, ground truth, plan timing,
//!      │      forest fitting → TrainedSession
//!      ▼
//!   ladder    the optimist/pessimist/realist stage-1/2/3 preemptive
//!      │      executor with RetryPolicy escalation, per node
//!      ▼
//!   exec      the drivers: sequential / two-thread baseline / static
//!      │      chunks / work-stealing pool, behind one Executor trait
//!      ▼
//!   service   PsiService: a persistent worker pool serving a stream
//!      │      of (query, spec) jobs with cross-query cache reuse
//!      ▼
//!   shard     ShardedService: scatter-gather over range-partitioned
//!      │      shards, each a PsiService with a ghost-node halo
//!      ▼
//!   net       NetServer: the TCP front door — line-JSON protocol
//!             (proto), token-bucket quotas, cost-laddered queue
//!             shedding, deadlines, graceful drain
//! ```
//!
//! Three side modules ride on the stack: [`evolve`] maintains an
//! incrementally-updated deployment ([`EvolvingContext`]), [`shard`]
//! fans queries out across per-range contexts, and the crate-private
//! `pool` owns the process-global lazy worker pool both parallel
//! drivers draw their OS threads from.
//!
//! [`crate::smart`] remains the thin public facade: [`SmartPsi`]
//! wraps an `Arc<GraphContext>` and `SmartPsi::run` dispatches through
//! [`exec::executor_for`]; results are bit-identical to the
//! pre-refactor monolith.
//!
//! [`SmartPsi`]: crate::SmartPsi

pub mod adapt;
pub mod context;
pub mod deploy;
pub mod evolve;
pub mod exec;
pub mod ladder;
pub mod net;
pub(crate) mod pool;
pub mod proto;
pub mod service;
pub mod shard;
pub mod training;

pub use adapt::{AdaptedModels, AdaptiveConfig, AdaptiveStats, MIN_REFIT_SAMPLES};
pub use context::{GraphContext, SmartPsiConfig};
pub use deploy::{Deployment, DeploymentHandle, DeploymentSpec};
pub use evolve::{EvolvingContext, UpdateError, UpdateReport};
pub use exec::{ExecutorKind, PredictionCache, WorkStealingOptions};
pub use ladder::RetryPolicy;
pub use net::{NetServer, NetServerConfig};
pub use proto::{ErrorKind, ProtoError, Request};
pub use service::{
    DrainReport, JobHandle, PsiService, ServiceStats, ABORTED_BY_SHUTDOWN_REASON,
    DEADLINE_EXPIRED_REASON,
};
pub use shard::{
    ShardBalance, ShardSpec, ShardedJobHandle, ShardedService, ShardedUpdateReport, SubmitError,
    DEFAULT_HALO_DEPTH,
};
