//! Sharded scatter-gather serving: partition the data graph into
//! contiguous node ranges, give every shard its own [`GraphContext`]
//! (signature slab + worker pool + epoch), and answer PSI queries by
//! fanning out to the shards that own candidates and merging their
//! partial valid sets.
//!
//! # Why PSI shards cleanly
//!
//! A PSI answer is a set of *pivot bindings* — per-node verdicts. Each
//! data node is owned by exactly one shard, so the merged answer is a
//! disjoint union of per-shard answers; nothing is double-counted and
//! nothing needs reconciliation. The only obstruction is embeddings
//! that cross a partition boundary, and that is solved locally with a
//! ghost-node **halo**.
//!
//! # The halo-depth argument
//!
//! Let `ecc(q)` be the eccentricity of the query pivot inside the query
//! graph. In any full embedding, the image of a query node `w` lies
//! within data-distance `qdist(pivot, w) ≤ ecc(q)` of the matched pivot
//! candidate `u` (a query path maps to a data walk of the same length).
//! Therefore every embedding that binds `u` lives entirely inside the
//! `ecc(q)`-ball of `u`, and every edge of that embedding joins two
//! nodes at distance `≤ ecc(q)`.
//!
//! A shard built with halo depth `D` materializes, per owned range:
//!
//! * **members** — all nodes at distance `≤ D` of the owned range, with
//!   *every* incident edge whose nearer endpoint is at distance `≤ D`.
//!   Members at distance `≤ D` keep their full global adjacency (their
//!   neighbors are at distance `≤ D + 1` and hence resident), so their
//!   local degree equals their global degree;
//! * **rim stubs** — nodes at distance exactly `D + 1`, retained only
//!   so the members at distance `D` keep exact degrees. Rim stubs carry
//!   truncated adjacency and are never owned candidates.
//!
//! Signature rows are **gathered from the global matrix**, never
//! recomputed per shard — a boundary node's `D`-ball extends outside
//! the shard, so local recomputation would diverge. With global rows,
//! signature pruning and ranking behave identically to the
//! single-context engine.
//!
//! With `D ≥ ecc(q)` the local search over an owned pivot candidate is
//! verdict-exact: candidates it examines are at distance `≤ ecc + 1`
//! and every check it performs (label, degree for nodes `≤ D`,
//! signature, adjacency between embedding nodes) matches the global
//! graph. Scheduling-dependent *cost* (steps, escalations) may differ —
//! per-shard training samples differ — but verdicts cannot.
//! [`ShardedService::submit`] therefore rejects queries with
//! `ecc(q) > D`; `crates/core/tests/sharded.rs` proves both directions
//! (exactness at depth `D`, detectable wrongness at `D − 1`).
//!
//! # Merge semantics
//!
//! Per-shard partial results are translated back to global ids (owned
//! locals are `global − lo`, a mapping that is stable across epoch
//! republishes) and merged under a [`Phase::ShardMerge`] span: valid
//! sets concatenate and sort, candidate/step/unresolved totals add,
//! failure reports merge with node ids and injected-panic reasons
//! rewritten to global space. A shard job that died twice (PR-2 fault
//! isolation at the shard-job boundary) collapses the whole query to
//! the same empty-result-plus-failure shape a single-context
//! [`PsiService`] produces, so differential suites can compare the two
//! deployments bit-for-bit.
//!
//! # Updates
//!
//! An evolving sharded deployment owns one global
//! [`IncrementalSignatures`] maintainer. [`ShardedService::apply_update`]
//! repairs the global matrix, then rebuilds only the shards whose
//! resident set intersects the batch's blast zone — the endpoints plus
//! the `(depth − 1)`-ball of repaired rows — bumping each affected
//! shard's epoch independently. Appended nodes are owned by the last
//! shard (its range is open-ended).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use psi_graph::dynamic::DynamicGraph;
use psi_graph::hash::FxHashSet;
use psi_graph::{Graph, GraphBuilder, GraphUpdate, NodeId, PivotedQuery};
use psi_obs::{timed, Counter, MetricsRecorder, Phase, QueryProfile, Recorder};
use psi_signature::{IncrementalSignatures, SigStore, SignatureStore};

use psi_ml::forest::ForestConfig;

use crate::fault::FaultPlan;
use crate::report::PsiResult;
use crate::smart::RunSpec;

use super::adapt::{
    fit_feedback_models, AdaptedModels, AdaptiveConfig, AdaptiveStats, SplitMix64,
    MIN_REFIT_SAMPLES,
};
use super::context::{GraphContext, SmartPsiConfig};
use super::evolve::UpdateError;
use super::service::{DrainReport, JobHandle, PsiService, ServiceStats};

/// Why [`ShardedService::submit`] refused a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The query's pivot eccentricity exceeds the deployment's halo
    /// depth: answering it could silently miss boundary-crossing
    /// embeddings, so the serving tier rejects it instead.
    QueryTooDeep {
        /// Eccentricity of the pivot inside the query graph.
        eccentricity: u32,
        /// Halo depth `D` every shard was built with.
        halo_depth: u32,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueryTooDeep {
                eccentricity,
                halo_depth,
            } => write!(
                f,
                "query pivot eccentricity {eccentricity} exceeds the shard halo depth \
                 {halo_depth}; rebuild the sharded deployment with \
                 ShardSpec::halo_depth({eccentricity}) or more"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How [`ShardSpec`] cuts the node range into contiguous owned ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBalance {
    /// Equal node counts per shard.
    #[default]
    EvenNodes,
    /// Balance the *expected candidate load* instead of raw node
    /// counts: each node weighs `1 / label_frequency(label(node))`, so
    /// every shard owns roughly the same fraction of each label class
    /// under a uniformly random pivot label.
    LabelAware,
}

/// Deployment plan for a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ShardSpec {
    shards: usize,
    workers_per_shard: usize,
    halo_depth: u32,
    balance: ShardBalance,
    adaptive: Option<AdaptiveConfig>,
}

/// Default halo depth: supports query pivot eccentricities up to 4
/// (e.g. any connected query of ≤ 5 nodes).
pub const DEFAULT_HALO_DEPTH: u32 = 4;

impl ShardSpec {
    /// A spec with `shards` shards, one worker per shard,
    /// [`DEFAULT_HALO_DEPTH`], and an even-node cut.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            workers_per_shard: 1,
            halo_depth: DEFAULT_HALO_DEPTH,
            balance: ShardBalance::EvenNodes,
            adaptive: None,
        }
    }

    /// Worker threads per shard (clamped to ≥ 1).
    pub fn workers_per_shard(mut self, workers: usize) -> Self {
        self.workers_per_shard = workers.max(1);
        self
    }

    /// Ghost-node halo depth `D`. [`ShardedService::submit`] accepts a
    /// query iff its pivot eccentricity is `≤ D`; deeper halos cost
    /// more resident memory per shard.
    pub fn halo_depth(mut self, depth: u32) -> Self {
        self.halo_depth = depth;
        self
    }

    /// Partition balance policy.
    pub fn balance(mut self, balance: ShardBalance) -> Self {
        self.balance = balance;
        self
    }

    /// Enable the online α/β adaptation loop across the deployment:
    /// cells collect feedback into per-shard reservoirs; the
    /// scatter-gather coordinator owns the ε draws and refits merged
    /// models over all reservoirs on the configured cadence.
    pub fn adaptive(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = Some(cfg);
        self
    }
}

/// What one shard rebuild produced.
struct ShardBuild {
    graph: Graph,
    /// Resident signature rows, gathered in the deployment's storage
    /// backend (a compact deployment gathers compact slabs).
    slab: SigStore,
    /// local id → global id; owned prefix `0..owned_len` (ascending,
    /// `global = lo + local`), then halo + rim in ascending global
    /// order.
    locals: Vec<NodeId>,
}

/// Per-shard state that changes when an update republishes the shard.
struct ShardMeta {
    /// Owned range end (exclusive). Only the last shard's `hi` grows.
    hi: NodeId,
    /// local → global for every resident node (owned, halo, rim).
    locals: Arc<Vec<NodeId>>,
    /// Shard-local epoch, bumped once per republish of this shard.
    epoch: u64,
}

struct ShardCell {
    /// Owned range start. Never changes, so `owned local ↔ global`
    /// translation (`global = lo + local`) is stable across epochs.
    lo: NodeId,
    service: PsiService,
    meta: RwLock<ShardMeta>,
}

/// The evolving half of a sharded deployment: one global incremental
/// signature maintainer shared by all shards.
struct EvolvingShards {
    inc: IncrementalSignatures,
}

/// The deployment-level half of a sharded adaptation loop. Cells run
/// collection-only adaptation (per-shard reservoirs, no ε, no
/// cadence); this coordinator owns the ε draws, the merged-refit
/// cadence over all reservoirs, and the installed models. Admission
/// or-semantics on [`RunSpec`] (a cell only fills `explore`/`adapted`
/// when unset) are what let the coordinator's draw survive each cell's
/// own admission.
struct AdaptCoordinator {
    cfg: AdaptiveConfig,
    forest: ForestConfig,
    /// Feature width of the *global* signature matrix (+1 score) —
    /// identical in every cell, whose slabs reserve global label space.
    dim: usize,
    explore_rng: SplitMix64,
    since_refit: u64,
    refit_forced: bool,
    models: Option<Arc<AdaptedModels>>,
    stats: AdaptiveStats,
}

/// Scatter-gather PSI serving over a range-partitioned graph. See the
/// module docs for the partitioning, halo and merge arguments.
///
/// ```
/// use psi_core::{DeploymentSpec, SmartPsi, SmartPsiConfig};
///
/// let g = psi_datasets::generators::erdos_renyi(400, 1400, 3, 11);
/// let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 2).unwrap();
/// let smart = SmartPsi::new(g, SmartPsiConfig::default());
/// let single = smart.run(&q, &psi_core::RunSpec::new());
/// let sharded = smart
///     .deploy(&DeploymentSpec::new().shards(4).workers(1))
///     .into_sharded();
/// let merged = sharded.submit(q, psi_core::RunSpec::new()).unwrap().wait();
/// assert_eq!(merged.valid, single.valid);
/// ```
pub struct ShardedService {
    cells: Vec<ShardCell>,
    halo_depth: u32,
    /// Per-shard deployment config (fault plan stripped; faults are
    /// projected per query instead).
    shard_config: SmartPsiConfig,
    /// The deployment-level fault plan, projected onto each shard's
    /// candidate subset at submit time.
    base_fault: Option<Arc<FaultPlan>>,
    metrics: Arc<MetricsRecorder>,
    evolving: Mutex<Option<EvolvingShards>>,
    adaptive: Option<Mutex<AdaptCoordinator>>,
}

impl ShardedService {
    /// Shard a static deployment: partition `ctx`'s graph and gather
    /// per-shard signature slabs out of its precomputed matrix.
    pub fn new(ctx: &GraphContext, spec: &ShardSpec) -> Self {
        Self::from_parts(ctx.graph(), ctx.signatures(), &ctx.config, spec)
    }

    /// Shard an evolving deployment. `label_capacity` reserves label
    /// ids for labels that only appear in later updates (clamped up to
    /// the graph's current label count); all shards share one global
    /// incremental signature maintainer.
    pub fn new_evolving(
        g: Graph,
        config: SmartPsiConfig,
        label_capacity: usize,
        spec: &ShardSpec,
    ) -> Self {
        let capacity = label_capacity.max(g.label_count());
        let inc = IncrementalSignatures::with_store(
            DynamicGraph::from_graph(&g),
            config.depth,
            capacity,
            config.sig_store,
        );
        let mut service = Self::from_parts(&g, inc.store(), &config, spec);
        *service.evolving.get_mut() = Some(EvolvingShards { inc });
        service
    }

    fn from_parts(
        g: &Graph,
        sigs: &dyn SignatureStore,
        config: &SmartPsiConfig,
        spec: &ShardSpec,
    ) -> Self {
        let mut shard_config = config.clone();
        let base_fault = shard_config.fault.take();
        let cells = partition(g, spec)
            .into_iter()
            .map(|(lo, hi)| {
                let b = build_shard(g, sigs, lo, hi, spec.halo_depth);
                let ctx = GraphContext::from_precomputed(
                    b.graph,
                    b.slab,
                    shard_config.clone(),
                    0,
                    Duration::ZERO,
                );
                ShardCell {
                    lo,
                    service: PsiService::with_adaptive(
                        Arc::new(ctx),
                        spec.workers_per_shard.max(1),
                        spec.adaptive.map(|c| c.collect_only()),
                    ),
                    meta: RwLock::new(ShardMeta {
                        hi,
                        locals: Arc::new(b.locals),
                        epoch: 0,
                    }),
                }
            })
            .collect();
        let adaptive = spec.adaptive.map(|cfg| {
            Mutex::new(AdaptCoordinator {
                forest: shard_config.forest,
                dim: sigs.label_count() + 1,
                explore_rng: SplitMix64::new(cfg.seed),
                since_refit: 0,
                refit_forced: false,
                models: None,
                stats: AdaptiveStats::default(),
                cfg,
            })
        });
        Self {
            cells,
            halo_depth: spec.halo_depth,
            shard_config,
            base_fault,
            metrics: Arc::new(MetricsRecorder::new()),
            evolving: Mutex::new(None),
            adaptive,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The ghost-node halo depth `D` every shard was built with.
    pub fn halo_depth(&self) -> u32 {
        self.halo_depth
    }

    /// Owned node range `[lo, hi)` of one shard.
    pub fn owned_range(&self, shard: usize) -> (NodeId, NodeId) {
        let cell = &self.cells[shard];
        (cell.lo, cell.meta.read().hi)
    }

    /// Every global node resident in a shard (owned + halo + rim),
    /// ascending. Test/introspection surface for the halo proofs.
    pub fn resident_nodes(&self, shard: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.cells[shard].meta.read().locals.as_ref().clone();
        nodes.sort_unstable();
        nodes
    }

    /// Current per-shard epochs (each starts at 0 and advances only
    /// when an update batch touches that shard).
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.meta.read().epoch).collect()
    }

    /// Lifetime counters of one shard's service (queue waits, requeues,
    /// cache reuse — the per-shard PR-3 surface).
    pub fn shard_stats(&self, shard: usize) -> ServiceStats {
        self.cells[shard].service.stats()
    }

    /// One shard's metrics registry (per-shard queue-wait histogram).
    pub fn shard_metrics(&self, shard: usize) -> &MetricsRecorder {
        self.cells[shard].service.metrics()
    }

    /// Aggregate stats across all shards. `graph_epoch` reports the
    /// maximum shard epoch.
    pub fn stats(&self) -> ServiceStats {
        let mut out = ServiceStats {
            queries_served: 0,
            cross_query_cache_hits: 0,
            requeued_jobs: 0,
            worker_panics: 0,
            distinct_query_shapes: 0,
            graph_epoch: 0,
            cache_invalidations: 0,
            deadline_expired: 0,
            drained: 0,
        };
        for cell in &self.cells {
            let s = cell.service.stats();
            out.queries_served += s.queries_served;
            out.cross_query_cache_hits += s.cross_query_cache_hits;
            out.requeued_jobs += s.requeued_jobs;
            out.worker_panics += s.worker_panics;
            out.distinct_query_shapes += s.distinct_query_shapes;
            out.graph_epoch = out.graph_epoch.max(s.graph_epoch);
            out.cache_invalidations += s.cache_invalidations;
            out.deadline_expired += s.deadline_expired;
            out.drained += s.drained;
        }
        out
    }

    /// The scatter-gather-level metrics registry:
    /// [`Counter::ShardFanout`] increments and [`Phase::ShardMerge`]
    /// spans.
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.metrics
    }

    /// Fan a query out to every shard owning candidates; returns a
    /// handle that merges the per-shard partial answers on
    /// [`ShardedJobHandle::wait`].
    ///
    /// # Errors
    /// Returns [`SubmitError::QueryTooDeep`] if the query's pivot
    /// eccentricity exceeds the halo depth `D` — such a query could
    /// match embeddings that leave a shard's resident ball, so its
    /// answers would silently miss boundary-crossing embeddings.
    /// Rebuild with a deeper [`ShardSpec::halo_depth`] instead. A
    /// serving tier must be able to reject one bad client query
    /// without tearing the deployment down, so this is a recoverable
    /// error, not a panic.
    pub fn submit(
        &self,
        query: PivotedQuery,
        spec: RunSpec,
    ) -> Result<ShardedJobHandle, SubmitError> {
        let ecc = pivot_eccentricity(&query);
        if ecc > self.halo_depth {
            return Err(SubmitError::QueryTooDeep {
                eccentricity: ecc,
                halo_depth: self.halo_depth,
            });
        }
        Ok(self.submit_unchecked(query, spec))
    }

    /// [`ShardedService::submit`] without the halo-depth guard. Only
    /// for tests that deliberately build an undersized halo to prove
    /// the guard is load-bearing; never correct in production.
    #[doc(hidden)]
    pub fn submit_unchecked(&self, query: PivotedQuery, spec: RunSpec) -> ShardedJobHandle {
        let spec = self.adapt_submit(spec);
        let pivot_degree = query.graph().degree(query.pivot());
        let label = query.pivot_label();
        let fault = spec.fault.clone().or_else(|| self.base_fault.clone());
        let mut parts = Vec::new();
        for cell in &self.cells {
            // Pin this shard's current snapshot for candidate routing.
            // Owned locals are `global - lo` under every epoch, so a
            // concurrent republish cannot invalidate the subset ids.
            let ctx = cell.service.context();
            let local_g = ctx.graph();
            if (label as usize) >= local_g.label_count() {
                continue;
            }
            let owned_len = (cell.meta.read().hi - cell.lo) as usize;
            // Exactly the global candidate filter, restricted to owned
            // nodes: owned nodes keep full adjacency, so local degree
            // equals global degree and the union over shards is the
            // global candidate set.
            let subset: Vec<NodeId> = local_g
                .nodes_with_label(label)
                .iter()
                .copied()
                .filter(|&l| (l as usize) < owned_len && local_g.degree(l) >= pivot_degree)
                .collect();
            if subset.is_empty() {
                continue;
            }
            let mut shard_spec = spec.clone();
            if let Some(plan) = &fault {
                let projected = plan.project(subset.iter().map(|&l| (cell.lo + l, l)));
                shard_spec = shard_spec.faults(Arc::new(projected));
            }
            shard_spec = shard_spec.candidates(subset);
            parts.push(ShardPart {
                lo: cell.lo,
                handle: cell.service.submit(query.clone(), shard_spec),
            });
        }
        self.metrics.add(Counter::ShardFanout, parts.len() as u64);
        ShardedJobHandle {
            pivot: query.pivot(),
            parts,
            metrics: self.metrics.clone(),
        }
    }

    /// Coordinator half of sharded adaptation, run once per submitted
    /// query: fire the merged refit when the cadence (or a
    /// drift-forced window) is due, draw the ε floor, and attach the
    /// installed models to the spec fanned out to every cell. A
    /// caller-pinned `explore`/`adapted` stays authoritative (the
    /// coordinator only fills unset fields), and the same or-semantics
    /// in each cell's admission keep the coordinator's values intact
    /// downstream.
    fn adapt_submit(&self, mut spec: RunSpec) -> RunSpec {
        let Some(adaptive) = &self.adaptive else {
            return spec;
        };
        let mut co = adaptive.lock();
        co.since_refit += 1;
        let due = (co.cfg.cadence > 0 && co.since_refit >= co.cfg.cadence) || co.refit_forced;
        if due {
            // Merged refit: gather every cell's reservoir in cell
            // order. Feedback features carry no node ids, so the
            // concatenation needs no re-sorting to be deterministic
            // for serial clients.
            let mut rows = Vec::new();
            for cell in &self.cells {
                if let Some(r) = cell.service.adaptive_rows() {
                    rows.extend(r);
                }
            }
            if rows.len() >= MIN_REFIT_SAMPLES {
                let version = co.stats.model_version + 1;
                let seed = co.cfg.seed ^ version.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let fitted = timed(self.metrics.as_ref(), Phase::Refit, || {
                    fit_feedback_models(&rows, co.dim, co.forest, seed, version)
                });
                if let Some(m) = fitted {
                    co.models = Some(Arc::new(m));
                    co.stats.refits += 1;
                    co.stats.model_version = version;
                    self.metrics.add(Counter::Refits, 1);
                }
                co.since_refit = 0;
                co.refit_forced = false;
            } else if co.cfg.cadence > 0 && co.since_refit >= co.cfg.cadence {
                // Too few pooled rows to fit on; re-arm the cadence so
                // the gather doesn't repeat on every subsequent submit
                // (a drift-forced window, by contrast, stays open).
                co.since_refit = 0;
            }
        }
        if spec.explore.is_none()
            && co.cfg.epsilon > 0.0
            && co.explore_rng.next_f64() < co.cfg.epsilon
        {
            co.stats.exploration_runs += 1;
            self.metrics.add(Counter::ExplorationRuns, 1);
            spec.explore = Some(co.explore_rng.below(2) as u8);
        }
        if spec.adapted.is_none() {
            spec.adapted = co.models.clone();
        }
        spec
    }

    /// Aggregated adaptation counters, `None` on a non-adaptive
    /// deployment: per-cell feedback/reservoir/refit sums plus the
    /// coordinator's exploration, merged-refit, and model-version
    /// state.
    pub fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        let co = self.adaptive.as_ref()?.lock();
        let mut out = co.stats;
        for cell in &self.cells {
            if let Some(s) = cell.service.adaptive_stats() {
                out.feedback_samples += s.feedback_samples;
                out.reservoir += s.reservoir;
                out.refits += s.refits;
                out.exploration_runs += s.exploration_runs;
            }
        }
        Some(out)
    }

    /// Gracefully drain every shard within one shared `grace` window:
    /// each shard stops accepting work, finishes what it can before
    /// the common deadline, and aborts the rest with structured
    /// [`super::service::ABORTED_BY_SHUTDOWN_REASON`] failures. The
    /// returned [`DrainReport`] sums drained/aborted counts across
    /// shards. Idempotent: a second call returns an empty report.
    ///
    /// Shards drain sequentially against one absolute deadline, not
    /// `grace` each — a sharded drain must not take `shards × grace`.
    pub fn shutdown(&mut self, grace: Duration) -> DrainReport {
        let deadline = std::time::Instant::now() + grace;
        let mut report = DrainReport::default();
        for cell in &mut self.cells {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            report.absorb(cell.service.shutdown(left));
        }
        report
    }

    /// Apply one update batch to an evolving sharded deployment:
    /// repair the global signature matrix once, then rebuild — with a
    /// fresh halo BFS, local CSR, and re-gathered slab — only the
    /// shards whose resident set intersects the batch's blast zone
    /// (edge endpoints, appended nodes, and the `(depth − 1)`-ball of
    /// repaired signature rows). Each rebuilt shard bumps its own
    /// epoch and retires its cross-query caches; untouched shards keep
    /// serving their current snapshot.
    ///
    /// Appended nodes are owned by the last shard, whose range is
    /// open-ended.
    pub fn apply_update(&self, updates: &[GraphUpdate]) -> Result<ShardedUpdateReport, UpdateError> {
        let mut guard = self.evolving.lock();
        let Some(ev) = guard.as_mut() else {
            return Err(UpdateError::StaticDeployment);
        };
        let pre_nodes = ev.inc.graph().node_count() as NodeId;
        let (stats, affected_shards) = timed(self.metrics.as_ref(), Phase::GraphUpdate, || {
            let stats = ev.inc.apply_batch(updates).map_err(UpdateError::Graph)?;
            let snapshot = ev.inc.graph().snapshot();
            let sigs = ev.inc.store();

            // Blast zone: batch endpoints + appended nodes, dilated by
            // the signature repair radius (rows within depth−1 of an
            // endpoint were rewritten). Updates are additive, so the
            // post-update BFS ball contains the pre-update one.
            let mut seeds = Vec::new();
            let mut next_new = pre_nodes;
            for u in updates {
                match u {
                    GraphUpdate::AddNode { .. } => {
                        seeds.push(next_new);
                        next_new += 1;
                    }
                    GraphUpdate::AddEdge { u, v, .. } => {
                        seeds.push(*u);
                        seeds.push(*v);
                    }
                }
            }
            let touched = ball(&snapshot, &seeds, ev.inc.depth().saturating_sub(1));

            let last = self.cells.len() - 1;
            let mut affected_shards = Vec::new();
            for (idx, cell) in self.cells.iter().enumerate() {
                let grows = idx == last && stats.nodes_added > 0;
                let hit = grows || {
                    let meta = cell.meta.read();
                    touched.iter().any(|&t| {
                        (t >= cell.lo && t < meta.hi)
                            || meta.locals[(meta.hi - cell.lo) as usize..].binary_search(&t).is_ok()
                    })
                };
                if !hit {
                    continue;
                }
                let mut meta = cell.meta.write();
                let hi = if idx == last {
                    snapshot.node_count() as NodeId
                } else {
                    meta.hi
                };
                let b = build_shard(&snapshot, sigs, cell.lo, hi, self.halo_depth);
                meta.epoch += 1;
                let ctx = GraphContext::from_precomputed(
                    b.graph,
                    b.slab,
                    self.shard_config.clone(),
                    meta.epoch,
                    Duration::ZERO,
                );
                cell.service.publish_ctx(Arc::new(ctx));
                meta.hi = hi;
                meta.locals = Arc::new(b.locals);
                affected_shards.push(idx);
            }
            Ok::<_, UpdateError>((stats, affected_shards))
        })?;
        self.metrics
            .add(Counter::RowsRepaired, stats.rows_repaired as u64);
        self.metrics
            .add(Counter::EpochsPublished, affected_shards.len() as u64);
        // Drift hook: drop the merged models (per-query training takes
        // over) and open a forced refit window. Cells the rebuild
        // republished already cleared their own reservoirs; untouched
        // cells keep theirs — their subgraphs did not change, so their
        // rows are still valid refit input (stale-width rows from a
        // label-growing batch are filtered by the fitter).
        if let Some(adaptive) = &self.adaptive {
            let mut co = adaptive.lock();
            co.stats.epoch += 1;
            co.dim = guard
                .as_ref()
                .map(|ev| ev.inc.store().label_count() + 1)
                .unwrap_or(co.dim);
            co.models = None;
            co.refit_forced = true;
            co.since_refit = 0;
        }
        Ok(ShardedUpdateReport {
            nodes_added: stats.nodes_added,
            edges_added: stats.edges_added,
            duplicate_edges: stats.duplicate_edges,
            rows_repaired: stats.rows_repaired,
            affected_shards,
            shard_epochs: self.shard_epochs(),
        })
    }
}

/// What one sharded update batch did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedUpdateReport {
    /// Nodes appended (owned by the last shard).
    pub nodes_added: usize,
    /// Edges newly inserted.
    pub edges_added: usize,
    /// Edge updates that were no-ops.
    pub duplicate_edges: usize,
    /// Global signature rows recomputed by the incremental repair.
    pub rows_repaired: usize,
    /// Shards rebuilt and republished by this batch, ascending.
    pub affected_shards: Vec<usize>,
    /// Per-shard epochs after the batch.
    pub shard_epochs: Vec<u64>,
}

/// One shard's slice of an in-flight scatter-gather query.
struct ShardPart {
    lo: NodeId,
    handle: JobHandle,
}

/// Handle to a fanned-out query; [`ShardedJobHandle::wait`] blocks for
/// every routed shard and merges the partial answers.
pub struct ShardedJobHandle {
    pivot: NodeId,
    parts: Vec<ShardPart>,
    metrics: Arc<MetricsRecorder>,
}

impl ShardedJobHandle {
    /// Whether every routed shard has finished (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.parts.iter().all(|p| p.handle.is_finished())
    }

    /// Number of shards this query was routed to.
    pub fn fanout(&self) -> usize {
        self.parts.len()
    }

    /// Block until every routed shard answers, then merge.
    pub fn wait(self) -> PsiResult {
        let pivot = self.pivot;
        let results: Vec<(NodeId, PsiResult)> = self
            .parts
            .into_iter()
            .map(|p| (p.lo, p.handle.wait()))
            .collect();
        timed(self.metrics.as_ref(), Phase::ShardMerge, || {
            merge_results(pivot, results)
        })
    }
}

/// Merge per-shard partial results into one global-id result.
fn merge_results(pivot: NodeId, parts: Vec<(NodeId, PsiResult)>) -> PsiResult {
    // A shard job that died twice is reported by its service as an
    // empty result plus one failure at the query pivot. Mirror the
    // single-context service: the whole query collapses to that shape
    // (partial answers from surviving shards are discarded so the two
    // deployments stay bit-identical).
    for (lo, r) in &parts {
        let job_died = r.candidates == 0 && r.failures.worker_deaths > 0 && !r.failures.nodes.is_empty();
        if job_died {
            let mut out = PsiResult::empty(0, 0);
            for f in &r.failures.nodes {
                debug_assert_eq!(f.node, pivot, "a dead shard job records the query pivot");
                out.failures.record(f.node, translate_reason(&f.reason, *lo), f.attempts);
            }
            out.failures.worker_deaths = r.failures.worker_deaths;
            return out;
        }
    }
    let mut out = PsiResult::empty(0, 0);
    let mut profile = QueryProfile::new();
    let mut any_profile = false;
    for (lo, r) in parts {
        out.valid.extend(r.valid.iter().map(|&l| lo + l));
        out.candidates += r.candidates;
        out.steps += r.steps;
        out.unresolved += r.unresolved;
        let mut failures = r.failures.clone();
        for f in &mut failures.nodes {
            f.reason = translate_reason(&f.reason, lo);
            f.node += lo;
        }
        out.failures.merge(&failures);
        for mut row in r.feedback {
            row.node += lo;
            out.feedback.push(row);
        }
        if let Some(p) = r.profile {
            merge_profile(&mut profile, &p);
            any_profile = true;
        }
    }
    out.valid.sort_unstable();
    out.failures.sort();
    out.feedback.sort_by_key(|f| f.node);
    if any_profile {
        out.profile = Some(Box::new(profile));
    }
    out
}

/// Rewrite a shard-local injected-panic reason to global id space.
/// (The injected-panic format is the only reason string carrying a
/// data node id; see `fault::panic_reason`.)
fn translate_reason(reason: &str, lo: NodeId) -> String {
    if let Some(rest) = reason.strip_prefix("injected panic (node ") {
        if let Some(num) = rest.strip_suffix(')') {
            if let Ok(local) = num.parse::<NodeId>() {
                return format!("injected panic (node {})", lo + local);
            }
        }
    }
    reason.to_string()
}

/// Sum a shard profile into the merged one. Spans, counters and
/// histograms add; wall clocks take the slowest shard (the shards ran
/// concurrently); the alpha accuracy is averaged weighted by trained
/// nodes.
fn merge_profile(into: &mut QueryProfile, p: &QueryProfile) {
    let w_prev = into.counter(Counter::TrainedNodes) as f64;
    let w_new = p.counter(Counter::TrainedNodes) as f64;
    let acc = |a: f64| if a.is_nan() { 0.0 } else { a };
    if w_prev + w_new > 0.0 {
        into.alpha_accuracy =
            (acc(into.alpha_accuracy) * w_prev + acc(p.alpha_accuracy) * w_new) / (w_prev + w_new);
    }
    into.total_wall_ns = into.total_wall_ns.max(p.total_wall_ns);
    into.signature_build_ns = into.signature_build_ns.max(p.signature_build_ns);
    into.train_ns += p.train_ns;
    into.evaluation_ns += p.evaluation_ns;
    into.recorded |= p.recorded;
    for (o, v) in into.spans_ns.iter_mut().zip(p.spans_ns.iter()) {
        *o += v;
    }
    for (o, v) in into.counters.iter_mut().zip(p.counters.iter()) {
        *o += v;
    }
    for (oh, vh) in into.hists.iter_mut().zip(p.hists.iter()) {
        for (o, v) in oh.iter_mut().zip(vh.iter()) {
            *o += v;
        }
    }
}

/// Eccentricity of the query pivot inside the (connected) query graph.
fn pivot_eccentricity(q: &PivotedQuery) -> u32 {
    q.graph()
        .bfs_distances(q.pivot())
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Cut `[0, n)` into `spec.shards` contiguous ranges.
fn partition(g: &Graph, spec: &ShardSpec) -> Vec<(NodeId, NodeId)> {
    let n = g.node_count();
    let k = spec.shards.max(1);
    match spec.balance {
        ShardBalance::EvenNodes => (0..k)
            .map(|i| ((i * n / k) as NodeId, ((i + 1) * n / k) as NodeId))
            .collect(),
        ShardBalance::LabelAware => {
            let weight = |u: NodeId| 1.0 / g.label_frequency(g.label(u)).max(1) as f64;
            let total: f64 = (0..n as NodeId).map(weight).sum();
            let mut cuts = Vec::with_capacity(k + 1);
            cuts.push(0 as NodeId);
            let mut acc = 0.0;
            for u in 0..n as NodeId {
                acc += weight(u);
                // Close every range whose cumulative weight target
                // (i/k of the total for the i-th boundary) is met.
                while cuts.len() < k && acc + 1e-9 >= total * cuts.len() as f64 / k as f64 {
                    cuts.push(u + 1);
                }
            }
            while cuts.len() < k {
                cuts.push(n as NodeId);
            }
            cuts.push(n as NodeId);
            cuts.windows(2).map(|w| (w[0], w[1])).collect()
        }
    }
}

/// Build one shard: BFS the halo, assemble the local CSR (owned
/// prefix, then halo members, then rim stubs) and gather its signature
/// slab from the global matrix.
fn build_shard(g: &Graph, sigs: &dyn SignatureStore, lo: NodeId, hi: NodeId, halo: u32) -> ShardBuild {
    let n = g.node_count();
    let reach = halo + 1;
    // Multi-source BFS from the owned range, bounded at halo + 1.
    let mut dist = vec![u32::MAX; n];
    let mut frontier: Vec<NodeId> = (lo..hi).collect();
    for &u in &frontier {
        dist[u as usize] = 0;
    }
    let mut d = 0;
    while d < reach && !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = d + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
        d += 1;
    }

    // Local ids: owned prefix first (local = global - lo), then every
    // other resident node in ascending global order.
    let mut locals: Vec<NodeId> = (lo..hi).collect();
    for v in 0..n as NodeId {
        if dist[v as usize] != u32::MAX && !(lo..hi).contains(&v) {
            locals.push(v);
        }
    }
    let mut to_local = vec![u32::MAX; n];
    for (l, &gv) in locals.iter().enumerate() {
        to_local[gv as usize] = l as NodeId;
    }

    let mut b = GraphBuilder::with_capacity(locals.len(), locals.len() * 2);
    b.reserve_label_space(sigs.label_count());
    for &gv in &locals {
        b.add_node(g.label(gv));
    }
    for (lu, &gu) in locals.iter().enumerate() {
        if dist[gu as usize] > halo {
            continue; // rim stub: its retained edges come from members
        }
        for (gv, el) in g.neighbors_with_labels(gu) {
            let dv = dist[gv as usize];
            if dv == u32::MAX {
                continue; // unreachable from an isolated owned node's side
            }
            if dv <= halo {
                // member–member: add once, from the smaller global id
                if gu < gv {
                    b.add_labeled_edge(lu as NodeId, to_local[gv as usize], el);
                }
            } else {
                // member–rim: the rim side is skipped above, so this
                // enumeration is the only one
                b.add_labeled_edge(lu as NodeId, to_local[gv as usize], el);
            }
        }
    }
    let graph = match b.build() {
        Ok(graph) => graph,
        Err(e) => unreachable!("a shard subgraph of a valid graph is valid: {e}"),
    };

    // Gather global signature rows for every resident node — never
    // recompute locally: boundary balls extend outside the shard. The
    // gather stays in the deployment's storage backend, so a compact
    // deployment's per-shard slabs are compact too.
    ShardBuild {
        graph,
        slab: sigs.gather(&locals),
        locals,
    }
}

/// Bounded multi-source BFS: every node within `depth` of any seed.
fn ball(g: &Graph, seeds: &[NodeId], depth: u32) -> Vec<NodeId> {
    let mut seen = FxHashSet::default();
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if (s as usize) < g.node_count() && seen.insert(s) {
            frontier.push(s);
        }
    }
    let mut out: Vec<NodeId> = frontier.clone();
    for _ in 0..depth {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if seen.insert(v) {
                    next.push(v);
                }
            }
        }
        out.extend_from_slice(&next);
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_covers_range() {
        let g = psi_datasets::generators::erdos_renyi(103, 300, 3, 1);
        let cuts = partition(&g, &ShardSpec::new(4));
        assert_eq!(cuts.len(), 4);
        assert_eq!(cuts[0].0, 0);
        assert_eq!(cuts[3].1, 103);
        for w in cuts.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
        }
    }

    #[test]
    fn label_aware_partition_covers_range_and_balances_rare_labels() {
        // 90 nodes of label 0, 10 of label 1: a label-aware 2-cut puts
        // roughly half the rare label in each shard, which an even cut
        // (boundary at 50) cannot do when the rare nodes sit at the end.
        let mut b = GraphBuilder::new();
        for _ in 0..90 {
            b.add_node(0);
        }
        for _ in 0..10 {
            b.add_node(1);
        }
        b.add_edge(0, 99);
        let g = match b.build() {
            Ok(g) => g,
            Err(e) => unreachable!("{e}"),
        };
        let cuts = partition(&g, &ShardSpec::new(2).balance(ShardBalance::LabelAware));
        assert_eq!(cuts[0].0, 0);
        assert_eq!(cuts[1].1, 100);
        assert_eq!(cuts[0].1, cuts[1].0);
        // Half the total weight sits exactly at the label boundary
        // (node 90), far from the even-node midpoint (50).
        assert!(
            (88..=92).contains(&cuts[0].1),
            "label-aware cut at {}",
            cuts[0].1
        );
    }

    #[test]
    fn shard_members_keep_global_degrees() {
        let g = psi_datasets::generators::erdos_renyi(80, 240, 3, 9);
        let sigs = psi_signature::matrix_signatures(&g, 2);
        let halo = 2;
        let b = build_shard(&g, &sigs, 10, 30, halo);
        let dist_ok = |gv: NodeId| {
            (10..30)
                .map(|s| g.bfs_distances(s)[gv as usize])
                .min()
                .unwrap_or(u32::MAX)
        };
        for (l, &gv) in b.locals.iter().enumerate() {
            assert_eq!(b.graph.label(l as NodeId), g.label(gv), "labels preserved");
            assert_eq!(
                b.slab.dense().unwrap().row(l as NodeId),
                sigs.row(gv),
                "rows gathered"
            );
            if dist_ok(gv) <= halo {
                assert_eq!(
                    b.graph.degree(l as NodeId),
                    g.degree(gv),
                    "member {gv} keeps its global degree"
                );
            }
        }
    }

    #[test]
    fn translate_reason_rewrites_injected_panics_only() {
        assert_eq!(translate_reason("injected panic (node 3)", 100), "injected panic (node 103)");
        assert_eq!(translate_reason("node timeout", 100), "node timeout");
        assert_eq!(translate_reason("panic: boom", 100), "panic: boom");
    }
}
