//! Evolving-graph deployments: copy-on-write, epoch-numbered
//! [`GraphContext`] snapshots over an incrementally-maintained
//! signature matrix.
//!
//! The paper's SmartPSI assumes a frozen data graph; the serving
//! scenario it motivates (§5's web-scale workloads) does not. An
//! [`EvolvingContext`] owns the mutable half of a deployment — a
//! [`DynamicGraph`] plus [`IncrementalSignatures`] — and publishes
//! immutable `Arc<GraphContext>` snapshots:
//!
//! * **Copy-on-write.** Queries only ever see a published snapshot.
//!   Applying a batch repairs the signature rows inside the update's
//!   `D−1` ball (see `psi-signature`'s incremental module), then
//!   builds a *fresh* CSR snapshot + trimmed matrix and swaps it in.
//!   In-flight jobs keep their old `Arc` — a consistent view — while
//!   new jobs see the new epoch.
//! * **Epoch numbering.** Every publish bumps [`EvolvingContext::epoch`]
//!   and stamps it on the snapshot ([`GraphContext::epoch`]). The
//!   service keys its cross-query prediction caches by
//!   `(epoch, query shape)`, so a pre-update cache entry can never
//!   drive a post-update evaluation.
//! * **Bit-identity.** The incremental repair replays the batch
//!   recurrence op-for-op, so a published snapshot is bit-identical to
//!   a cold [`GraphContext::new`] over the same graph — and therefore
//!   every query answer (valid set, steps, counters) matches a cold
//!   engine exactly. `crates/core/tests/evolving.rs` holds the
//!   differential suite.
//! * **Lazy refit.** `TrainedSession` models are fit per query against
//!   the snapshot a job captured (see [`super::training`]); nothing
//!   trained against an old epoch survives into a new one, and no
//!   eager retraining happens at update time.

use std::sync::Arc;
use std::time::Instant;

use psi_graph::dynamic::DynamicGraph;
use psi_graph::{Graph, GraphError, GraphUpdate};
use psi_obs::{span, Counter, Phase, Recorder};
use psi_signature::{IncrementalSignatures, SignatureMatrix};

use super::context::{GraphContext, SmartPsiConfig};

/// What one applied update batch did (see
/// [`EvolvingContext::apply`] / `PsiService::apply_update`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// The epoch the batch published (monotonic, starts at 1).
    pub epoch: u64,
    /// Nodes appended.
    pub nodes_added: usize,
    /// Edges newly inserted.
    pub edges_added: usize,
    /// Edge updates that were no-ops (edge already existed).
    pub duplicate_edges: usize,
    /// Signature rows recomputed by the incremental repair.
    pub rows_repaired: usize,
}

/// Why an update could not be applied.
#[derive(Debug)]
pub enum UpdateError {
    /// The service was built over a static [`GraphContext`] (a
    /// [`SmartPsi::deploy`](crate::SmartPsi::deploy) without
    /// [`DeploymentSpec::evolving`](crate::DeploymentSpec::evolving))
    /// rather than an [`EvolvingContext`]; it has no mutable graph to
    /// update.
    StaticDeployment,
    /// The batch itself was invalid; the graph and its signatures are
    /// unchanged (batches apply atomically).
    Graph(GraphError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::StaticDeployment => {
                write!(f, "this deployment is static: serve an EvolvingContext to apply updates")
            }
            UpdateError::Graph(e) => write!(f, "invalid update batch: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Graph(e) => Some(e),
            UpdateError::StaticDeployment => None,
        }
    }
}

impl From<GraphError> for UpdateError {
    fn from(e: GraphError) -> Self {
        UpdateError::Graph(e)
    }
}

/// The mutable side of an evolving deployment; publishes immutable
/// epoch-numbered [`GraphContext`] snapshots.
///
/// ```
/// use psi_core::{EvolvingContext, RunSpec, SmartPsi, SmartPsiConfig};
/// use psi_graph::GraphUpdate;
///
/// let g = psi_datasets::generators::erdos_renyi(300, 1000, 3, 7);
/// let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 1).unwrap();
/// let mut ev = EvolvingContext::new(g, SmartPsiConfig::default(), 4);
/// let before = SmartPsi::from_context(ev.current()).run(&q, &RunSpec::new());
/// let report = ev
///     .apply(&[GraphUpdate::AddNode { label: 2 }, GraphUpdate::AddEdge { u: 300, v: 0, label: 0 }])
///     .unwrap();
/// assert_eq!(report.epoch, 1);
/// // The new snapshot answers like a cold engine over the new graph;
/// // the one captured before the update still serves the old view.
/// let after = SmartPsi::from_context(ev.current()).run(&q, &RunSpec::new());
/// assert_eq!(ev.current().graph().node_count(), 301);
/// # let _ = (before, after);
/// ```
pub struct EvolvingContext {
    inc: IncrementalSignatures,
    config: SmartPsiConfig,
    epoch: u64,
    current: Arc<GraphContext>,
}

impl EvolvingContext {
    /// Deploy `g` for evolution. `label_capacity` fixes the signature
    /// label space for the deployment's lifetime (updates may
    /// introduce labels up to it); it is clamped up to the graph's
    /// existing label count.
    pub fn new(g: Graph, config: SmartPsiConfig, label_capacity: usize) -> Self {
        Self::build(g, config, label_capacity, None)
    }

    /// Upgrade an already-loaded static context to an evolving
    /// deployment, reusing its signatures as the maintainer's seed
    /// where possible (dense rows seed directly; a compact context has
    /// no f32 truth left, so the maintainer recomputes it once).
    /// `store` overrides the context's signature-store backend for the
    /// published snapshots; the f32 maintenance substrate is kept
    /// either way.
    pub(crate) fn from_context(
        ctx: &GraphContext,
        label_capacity: usize,
        store: Option<psi_signature::SigStoreKind>,
    ) -> Self {
        let mut config = ctx.config().clone();
        if let Some(k) = store {
            config.sig_store = k;
        }
        Self::build(
            ctx.graph().clone(),
            config,
            label_capacity,
            ctx.signatures().dense(),
        )
    }

    fn build(
        g: Graph,
        config: SmartPsiConfig,
        label_capacity: usize,
        seed: Option<&SignatureMatrix>,
    ) -> Self {
        let capacity = label_capacity.max(g.label_count());
        let t0 = Instant::now();
        let dyng = DynamicGraph::from_graph(&g);
        let inc = match seed {
            Some(m) => IncrementalSignatures::from_precomputed(
                dyng,
                config.depth,
                capacity,
                m,
                config.sig_store,
            ),
            None => IncrementalSignatures::with_store(dyng, config.depth, capacity, config.sig_store),
        };
        // Epoch 0 reuses the caller's CSR directly; the maintainer's
        // initial matrix came from the same batch build, so trimming
        // its capacity padding reproduces it bit-for-bit.
        let sigs = inc.store().truncated_store(g.label_count());
        let current = Arc::new(GraphContext::from_precomputed(
            g,
            sigs,
            config.clone(),
            0,
            t0.elapsed(),
        ));
        Self {
            inc,
            config,
            epoch: 0,
            current,
        }
    }

    /// The currently published snapshot. Cheap (`Arc` clone); holders
    /// keep a consistent view across later updates.
    pub fn current(&self) -> Arc<GraphContext> {
        self.current.clone()
    }

    /// The epoch of the currently published snapshot (0 until the
    /// first update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live mutable graph behind the snapshots.
    pub fn graph(&self) -> &DynamicGraph {
        self.inc.graph()
    }

    /// Apply one update batch and publish the next epoch.
    ///
    /// Batches are atomic: on `Err` nothing changed and no epoch was
    /// published. A batch of only duplicates still publishes (epoch
    /// numbering stays in lockstep with accepted batches).
    pub fn apply(&mut self, updates: &[GraphUpdate]) -> Result<UpdateReport, GraphError> {
        self.apply_recorded(updates, &psi_obs::NoopRecorder)
    }

    /// [`EvolvingContext::apply`] under a [`Phase::GraphUpdate`] span,
    /// counting [`Counter::RowsRepaired`] and
    /// [`Counter::EpochsPublished`] into `rec`.
    pub fn apply_recorded(
        &mut self,
        updates: &[GraphUpdate],
        rec: &dyn Recorder,
    ) -> Result<UpdateReport, GraphError> {
        let (report, ctx) = span!(rec, Phase::GraphUpdate, {
            let stats = self.inc.apply_batch(updates)?;
            self.epoch += 1;
            let ctx = self.publish();
            (
                UpdateReport {
                    epoch: self.epoch,
                    nodes_added: stats.nodes_added,
                    edges_added: stats.edges_added,
                    duplicate_edges: stats.duplicate_edges,
                    rows_repaired: stats.rows_repaired,
                },
                ctx,
            )
        });
        self.current = Arc::new(ctx);
        rec.add(Counter::RowsRepaired, report.rows_repaired as u64);
        rec.add(Counter::EpochsPublished, 1);
        Ok(report)
    }

    /// Freeze the live graph into the next immutable snapshot: CSR
    /// rebuild plus one row-trim copy of the maintained (capacity-
    /// padded) matrix down to the snapshot's label space. `O(|V|·|L| +
    /// |E|)` per publish — the signature *content* is already repaired
    /// incrementally, which is where the asymptotic win lives
    /// (`BENCH_dynamic.json` prices it).
    fn publish(&self) -> GraphContext {
        let t0 = Instant::now();
        let snapshot = self.inc.graph().snapshot();
        let sigs = self.inc.store().truncated_store(snapshot.label_count());
        GraphContext::from_precomputed(snapshot, sigs, self.config.clone(), self.epoch, t0.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smart::{RunSpec, SmartPsi};

    fn base() -> (Graph, SmartPsiConfig) {
        let g = psi_datasets::generators::erdos_renyi(200, 700, 3, 21);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        (g, cfg)
    }

    #[test]
    fn initial_snapshot_matches_cold_context_bitwise() {
        let (g, cfg) = base();
        let ev = EvolvingContext::new(g.clone(), cfg.clone(), 8);
        let cold = GraphContext::new(g, cfg);
        assert_eq!(ev.current().epoch(), 0);
        assert_eq!(
            ev.current().signatures().dense().unwrap().as_flat(),
            cold.signatures().dense().unwrap().as_flat()
        );
    }

    #[test]
    fn published_snapshot_matches_cold_context_bitwise_after_updates() {
        let (g, cfg) = base();
        let mut ev = EvolvingContext::new(g, cfg.clone(), 8);
        let report = ev
            .apply(&[
                GraphUpdate::AddNode { label: 7 },
                GraphUpdate::AddEdge { u: 200, v: 3, label: 0 },
                GraphUpdate::AddEdge { u: 5, v: 9, label: 0 },
            ])
            .unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.nodes_added, 1);
        let cold = GraphContext::new(ev.current().graph().clone(), cfg);
        // The new label widened the snapshot's label space; the
        // trimmed publish must still be bit-identical to cold.
        assert_eq!(ev.current().graph().label_count(), 8);
        assert_eq!(
            ev.current().signatures().dense().unwrap().as_flat(),
            cold.signatures().dense().unwrap().as_flat()
        );
        assert_eq!(ev.current().epoch(), 1);
    }

    #[test]
    fn inflight_arcs_keep_the_old_view() {
        let (g, cfg) = base();
        let mut ev = EvolvingContext::new(g, cfg, 4);
        let old = ev.current();
        ev.apply(&[GraphUpdate::AddNode { label: 1 }]).unwrap();
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.graph().node_count(), 200, "published snapshots are immutable");
        assert_eq!(ev.current().graph().node_count(), 201);
        assert!(!Arc::ptr_eq(&old, &ev.current()));
    }

    #[test]
    fn failed_batch_publishes_nothing() {
        let (g, cfg) = base();
        let mut ev = EvolvingContext::new(g, cfg, 4);
        let before = ev.current();
        let err = ev.apply(&[GraphUpdate::AddEdge { u: 0, v: 9999, label: 0 }]);
        assert!(err.is_err());
        assert_eq!(ev.epoch(), 0);
        assert!(Arc::ptr_eq(&before, &ev.current()));
    }

    #[test]
    fn evolved_run_equals_from_scratch_engine() {
        let (g, cfg) = base();
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 3).unwrap();
        let mut ev = EvolvingContext::new(g, cfg.clone(), 4);
        for seed in 0..3u32 {
            ev.apply(&[GraphUpdate::AddEdge {
                u: seed * 17 % 200,
                v: (seed * 31 + 7) % 200,
                label: 0,
            }])
            .unwrap();
        }
        let evolved = SmartPsi::from_context(ev.current()).run(&q, &RunSpec::new());
        let scratch = SmartPsi::new(ev.current().graph().clone(), cfg).run(&q, &RunSpec::new());
        assert_eq!(evolved, scratch);
    }
}
