//! Online α/β adaptation for production serving: the feedback loop
//! that turns per-query training (§4.2) into a continuously-refit
//! deployment-level predictor.
//!
//! The realist trains Models α and β from scratch on every query's
//! small random sample. A serving deployment sees thousands of
//! queries against one graph, so it can do better: harvest the
//! [`FeedbackRow`]s every served query already produces (features,
//! chosen method, ground-truth verdict, steps — the ladder's stage 3
//! is exact, so labels are never guesses), pool them in a bounded
//! reservoir, and periodically refit the two forests on the pooled
//! sample. The refit models then *replace* the per-query fit
//! ([`TrainedSession::apply_adapted`](super::training::TrainedSession))
//! while budgets and plans still come from each query's own training
//! pass — adaptation moves prediction quality, never exactness.
//!
//! **ε-exploration.** Feedback harvested only from predictor-chosen
//! methods is biased: Model α never observes the counterfactual arm.
//! A configurable ε fraction of admitted queries therefore bypasses
//! the predictor entirely and runs a uniformly-drawn method
//! ([`RunSpec::explore`](crate::RunSpec::explore)); their rows carry
//! `explored = true` so accuracy metrics can skip them while the
//! fitter still benefits from the unbiased labels.
//!
//! **Determinism.** Admission (the ε draws) and reservoir sampling use
//! two independent [`SplitMix64`] streams seeded from
//! [`AdaptiveConfig::seed`], feedback is drained in *submission order*
//! (a [`BTreeMap`]-backed reorder buffer keyed by admission sequence
//! number), and each refit's forest seed is a pure function of the
//! config seed and the model version — so the same feedback stream
//! yields bit-identical refit models regardless of worker count or
//! completion order.
//!
//! **Drift.** A graph update
//! ([`PsiService::apply_update`](super::service::PsiService::apply_update))
//! calls [`AdaptiveState::note_drift`]: the reservoir is cleared (its
//! rows describe the previous epoch's graph), the installed models
//! are dropped (per-query training takes over, which is always
//! correct), and a forced refit window opens — the first cadence-free
//! refit fires as soon as [`MIN_REFIT_SAMPLES`] fresh-epoch rows have
//! accumulated.

use std::collections::BTreeMap;
use std::sync::Arc;

use psi_ml::forest::{ForestConfig, RandomForest};
use psi_ml::{Classifier, Dataset};
use psi_obs::{timed, Counter, Phase, Recorder};

use crate::report::FeedbackRow;

/// Fewest pooled rows a refit will fit on: below this the forests
/// would memorize noise and the per-query models are strictly better.
pub const MIN_REFIT_SAMPLES: usize = 8;

/// Configuration of the online adaptation loop. Constructed via
/// [`DeploymentSpec::adaptive`](crate::engine::deploy::DeploymentSpec::adaptive)
/// (off by default — frozen deployments stay bit-identical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Refit every `cadence` absorbed queries; `0` = refit only inside
    /// the forced window a graph update opens.
    pub cadence: u64,
    /// Fraction of admitted queries (in `[0, 1]`) that bypass Model α
    /// and run a uniformly-drawn method — the bandit-style exploration
    /// floor keeping the feedback distribution unbiased.
    pub epsilon: f64,
    /// Reservoir bound: at most this many feedback rows are retained,
    /// uniformly sampled over the current epoch's stream.
    pub capacity: usize,
    /// Seed of the deterministic ε / reservoir / refit randomness.
    pub seed: u64,
}

impl AdaptiveConfig {
    /// Adaptation with the given cadence and exploration floor,
    /// default reservoir capacity (4096) and seed.
    pub fn new(cadence: u64, epsilon: f64) -> Self {
        Self {
            cadence,
            epsilon: epsilon.clamp(0.0, 1.0),
            capacity: 4096,
            seed: 0xADA9_175E,
        }
    }

    /// Override the reservoir capacity (minimum 1).
    pub fn capacity(mut self, n: usize) -> Self {
        self.capacity = n.max(1);
        self
    }

    /// Override the randomness seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// The collection-only variant a sharded deployment installs on
    /// its cells: rows accumulate into per-shard reservoirs, but ε
    /// draws and cadence refits belong to the coordinator. (A cell can
    /// still self-refit inside a post-drift forced window — a useful
    /// local stopgap until the coordinator's merged refit lands.)
    pub(crate) fn collect_only(&self) -> Self {
        Self {
            cadence: 0,
            epsilon: 0.0,
            ..*self
        }
    }
}

/// One refit's output: the pooled-feedback forests, the feature width
/// they were fitted on, and a monotone version number.
#[derive(Debug, Clone)]
pub struct AdaptedModels {
    pub(crate) alpha: RandomForest,
    pub(crate) beta: Option<RandomForest>,
    pub(crate) dim: usize,
    pub(crate) version: u64,
}

impl AdaptedModels {
    /// Feature width (`label_count + 1`) the forests expect.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Monotone refit version (1 = first refit of the deployment).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether this refit produced a plan model (requires ≥ 2 distinct
    /// plan labels in the pooled feedback).
    pub fn has_beta(&self) -> bool {
        self.beta.is_some()
    }
}

/// Observable state of one adaptation loop, returned by
/// [`PsiService::adaptive_stats`](super::service::PsiService::adaptive_stats)
/// and the sharded equivalent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Feedback rows absorbed (before reservoir eviction), lifetime.
    pub feedback_samples: u64,
    /// Refits performed.
    pub refits: u64,
    /// Queries routed through the ε-exploration floor.
    pub exploration_runs: u64,
    /// Rows currently held in the reservoir.
    pub reservoir: usize,
    /// Graph epoch (increments on every drift notification).
    pub epoch: u64,
    /// Version of the most recently fitted models (0 = none yet).
    pub model_version: u64,
}

/// SplitMix64 — tiny, deterministic, dependency-free PRNG for the ε
/// draws, reservoir eviction, and refit seeds.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero. The modulo bias is
    /// negligible for the tiny ranges used here (2, reservoir sizes).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// What admission decided for one submitted query.
pub(crate) struct Admission {
    /// Submission sequence number; hand it back to
    /// [`AdaptiveState::absorb`] with the query's feedback (empty on
    /// failure paths) so the reorder buffer can drain.
    pub(crate) seq: u64,
    /// `Some(method)` when the ε floor routed this query to a forced
    /// uniform method.
    pub(crate) explore: Option<u8>,
    /// Currently installed models to attach to the run, if any.
    pub(crate) models: Option<Arc<AdaptedModels>>,
}

/// The mutable core of one adaptation loop. Owned behind a mutex by a
/// [`PsiService`](super::service::PsiService) (and, in collect-only
/// mode, by each shard cell of a
/// [`ShardedService`](super::shard::ShardedService)).
pub(crate) struct AdaptiveState {
    cfg: AdaptiveConfig,
    forest: ForestConfig,
    dim: usize,
    /// ε draws — submit-side stream.
    explore_rng: SplitMix64,
    /// Reservoir eviction — drain-side stream, independent of the
    /// submit side so pipelined submission cannot interleave the two.
    sample_rng: SplitMix64,
    epoch: u64,
    reservoir: Vec<FeedbackRow>,
    /// Rows offered to the reservoir this epoch (reservoir-sampling
    /// denominator).
    seen: u64,
    submit_seq: u64,
    next_drain: u64,
    /// Reorder buffer: feedback arrives in completion order, is
    /// absorbed in submission order.
    pending: BTreeMap<u64, Vec<FeedbackRow>>,
    since_refit: u64,
    refit_forced: bool,
    models: Option<Arc<AdaptedModels>>,
    stats: AdaptiveStats,
}

impl AdaptiveState {
    pub(crate) fn new(cfg: AdaptiveConfig, dim: usize, forest: ForestConfig) -> Self {
        let explore_rng = SplitMix64::new(cfg.seed);
        let sample_rng = SplitMix64::new(cfg.seed ^ 0x5EED_F00D_CAFE_D00D);
        Self {
            cfg,
            forest,
            dim,
            explore_rng,
            sample_rng,
            epoch: 0,
            reservoir: Vec::new(),
            seen: 0,
            submit_seq: 0,
            next_drain: 0,
            pending: BTreeMap::new(),
            since_refit: 0,
            refit_forced: false,
            models: None,
            stats: AdaptiveStats::default(),
        }
    }

    /// Admit one query: assign its sequence number, draw the ε floor,
    /// and snapshot the installed models.
    pub(crate) fn admit(&mut self, rec: &dyn Recorder) -> Admission {
        let seq = self.submit_seq;
        self.submit_seq += 1;
        let explore = if self.cfg.epsilon > 0.0 && self.explore_rng.next_f64() < self.cfg.epsilon {
            self.stats.exploration_runs += 1;
            rec.add(Counter::ExplorationRuns, 1);
            Some(self.explore_rng.below(2) as u8)
        } else {
            None
        };
        Admission {
            seq,
            explore,
            models: self.models.clone(),
        }
    }

    /// Hand back one admitted query's feedback (empty on failure
    /// paths — every admitted `seq` MUST be absorbed exactly once or
    /// the reorder buffer stalls). Queued rows drain in submission
    /// order; a refit fires when the cadence (or a forced drift
    /// window) is due and the reservoir holds enough samples.
    pub(crate) fn absorb(&mut self, seq: u64, rows: Vec<FeedbackRow>, rec: &dyn Recorder) {
        self.pending.insert(seq, rows);
        while let Some(rows) = self.pending.remove(&self.next_drain) {
            self.next_drain += 1;
            self.absorb_rows(rows, rec);
        }
    }

    fn absorb_rows(&mut self, rows: Vec<FeedbackRow>, rec: &dyn Recorder) {
        let mut kept = 0u64;
        for row in rows {
            if row.features.len() != self.dim {
                // A pre-drift query completing after the epoch turned:
                // its features describe the old signature layout.
                continue;
            }
            kept += 1;
            self.seen += 1;
            if self.reservoir.len() < self.cfg.capacity {
                self.reservoir.push(row);
            } else {
                // Classic reservoir sampling: uniform over the epoch's
                // stream regardless of stream length.
                let j = self.sample_rng.below(self.seen);
                if (j as usize) < self.cfg.capacity {
                    self.reservoir[j as usize] = row;
                }
            }
        }
        if kept > 0 {
            self.stats.feedback_samples += kept;
            rec.add(Counter::FeedbackSamples, kept);
        }
        self.since_refit += 1;
        let due =
            (self.cfg.cadence > 0 && self.since_refit >= self.cfg.cadence) || self.refit_forced;
        if due && self.reservoir.len() >= MIN_REFIT_SAMPLES {
            self.refit(rec);
        }
    }

    /// Refit α (and β when the pooled plans are diverse enough) on the
    /// reservoir, inside a [`Phase::Refit`] span. The forest seed is a
    /// pure function of the config seed and the new version, so
    /// identical reservoirs give identical models.
    pub(crate) fn refit(&mut self, rec: &dyn Recorder) {
        let version = self.stats.model_version + 1;
        let seed = self.cfg.seed ^ version.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let fitted = timed(rec, Phase::Refit, || {
            fit_feedback_models(&self.reservoir, self.dim, self.forest, seed, version)
        });
        if let Some(m) = fitted {
            self.models = Some(Arc::new(m));
            self.stats.refits += 1;
            self.stats.model_version = version;
            rec.add(Counter::Refits, 1);
        }
        self.since_refit = 0;
        self.refit_forced = false;
    }

    /// The graph changed underneath the deployment: clear the (now
    /// stale) reservoir, drop the installed models — per-query
    /// training takes over, which is always correct for the new
    /// epoch — record the new feature width, and open a forced refit
    /// window.
    pub(crate) fn note_drift(&mut self, dim: usize) {
        self.epoch += 1;
        self.stats.epoch = self.epoch;
        self.dim = dim;
        self.reservoir.clear();
        self.seen = 0;
        self.models = None;
        self.refit_forced = true;
        self.since_refit = 0;
    }

    /// Install externally fitted models (the sharded coordinator's
    /// merged refit pushes through here for stats visibility).
    pub(crate) fn install(&mut self, models: Arc<AdaptedModels>) {
        self.stats.model_version = models.version;
        self.stats.refits += 1;
        self.models = Some(models);
        self.since_refit = 0;
        self.refit_forced = false;
    }

    /// Snapshot of the current reservoir (the sharded coordinator
    /// gathers these for its merged refit).
    pub(crate) fn rows(&self) -> Vec<FeedbackRow> {
        self.reservoir.clone()
    }

    #[cfg(test)]
    pub(crate) fn models(&self) -> Option<Arc<AdaptedModels>> {
        self.models.clone()
    }

    pub(crate) fn stats(&self) -> AdaptiveStats {
        AdaptiveStats {
            reservoir: self.reservoir.len(),
            ..self.stats
        }
    }

    #[cfg(test)]
    pub(crate) fn dim(&self) -> usize {
        self.dim
    }
}

/// Fit α (and β when ≥ 2 distinct plan labels are present) on a pooled
/// feedback sample. `None` when fewer than [`MIN_REFIT_SAMPLES`] rows
/// match the expected feature width. Deterministic in
/// `(rows, dim, forest, seed)`.
pub(crate) fn fit_feedback_models(
    rows: &[FeedbackRow],
    dim: usize,
    forest: ForestConfig,
    seed: u64,
    version: u64,
) -> Option<AdaptedModels> {
    let usable: Vec<&FeedbackRow> = rows.iter().filter(|r| r.features.len() == dim).collect();
    if usable.len() < MIN_REFIT_SAMPLES {
        return None;
    }
    let mut rng = SplitMix64::new(seed);
    let mut alpha_ds = Dataset::with_capacity(dim, usable.len());
    for r in &usable {
        alpha_ds.push(&r.features, r.valid as usize);
    }
    let mut alpha = RandomForest::new(forest);
    alpha.fit(&alpha_ds, rng.next_u64());
    // β labels are plan *positions* within a session's sampled plan
    // vector (position 0 = the heuristic order), which is the only
    // plan identity stable across queries; a single-plan feedback pool
    // carries no signal, so β is skipped and sessions keep their own.
    let mut plans: Vec<usize> = usable.iter().map(|r| r.plan).collect();
    plans.sort_unstable();
    plans.dedup();
    let beta = (plans.len() >= 2).then(|| {
        let mut beta_ds = Dataset::with_capacity(dim, usable.len());
        for r in &usable {
            beta_ds.push(&r.features, r.plan);
        }
        let mut f = RandomForest::new(forest);
        f.fit(&beta_ds, rng.next_u64());
        f
    });
    Some(AdaptedModels {
        alpha,
        beta,
        dim,
        version,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_obs::NoopRecorder;

    fn row(node: u32, sig: f32, valid: bool, plan: usize) -> FeedbackRow {
        FeedbackRow {
            node,
            features: vec![sig, 1.0 - sig, sig * 0.5],
            method: u8::from(!valid),
            plan,
            explored: false,
            valid,
            steps: 10,
        }
    }

    fn state(cfg: AdaptiveConfig) -> AdaptiveState {
        AdaptiveState::new(cfg, 3, ForestConfig::default())
    }

    #[test]
    fn reservoir_is_bounded_and_absorb_reorders_by_seq() {
        let mut st = state(AdaptiveConfig::new(0, 0.0).capacity(16));
        let rec = NoopRecorder;
        // Deliver completions out of submission order; the drain must
        // still advance exactly once per seq.
        let mut seqs: Vec<u64> = (0..40).map(|_| st.admit(&rec).seq).collect();
        seqs.reverse();
        for s in seqs {
            st.absorb(s, vec![row(s as u32, 0.1, s % 2 == 0, 0)], &rec);
        }
        let stats = st.stats();
        assert_eq!(stats.feedback_samples, 40);
        assert_eq!(stats.reservoir, 16, "reservoir stays at capacity");
        assert!(st.pending.is_empty(), "reorder buffer fully drained");
    }

    #[test]
    fn exploration_floor_rate_is_roughly_epsilon() {
        let mut st = state(AdaptiveConfig::new(0, 0.25));
        let rec = NoopRecorder;
        let n = 4000;
        let mut explored = 0usize;
        for _ in 0..n {
            if st.admit(&rec).explore.is_some() {
                explored += 1;
            }
        }
        let rate = explored as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "ε rate {rate} far from 0.25");
        assert_eq!(st.stats().exploration_runs, explored as u64);
    }

    #[test]
    fn cadence_triggers_deterministic_refits() {
        let feed = |st: &mut AdaptiveState| {
            let rec = NoopRecorder;
            for i in 0..30u64 {
                let seq = st.admit(&rec).seq;
                st.absorb(
                    seq,
                    vec![
                        row(i as u32 * 2, (i % 7) as f32 / 7.0, i % 3 == 0, 0),
                        row(i as u32 * 2 + 1, (i % 5) as f32 / 5.0, i % 2 == 0, 1),
                    ],
                    &rec,
                );
            }
        };
        let mut a = state(AdaptiveConfig::new(10, 0.0));
        let mut b = state(AdaptiveConfig::new(10, 0.0));
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.stats().refits, 3, "one refit per 10 absorbed queries");
        assert_eq!(a.stats(), b.stats());
        let (ma, mb) = (a.models().unwrap(), b.models().unwrap());
        assert_eq!(ma.version(), mb.version());
        assert!(ma.has_beta(), "two distinct plan labels ⇒ β fitted");
        // Identical reservoirs + identical seeds ⇒ identical forests.
        let probe = [0.3f32, 0.7, 0.15];
        assert_eq!(
            ma.alpha.predict_proba(&probe),
            mb.alpha.predict_proba(&probe)
        );
    }

    #[test]
    fn drift_clears_state_and_forces_a_refit_window() {
        let rec = NoopRecorder;
        let mut st = state(AdaptiveConfig::new(1000, 0.0));
        for i in 0..MIN_REFIT_SAMPLES as u64 + 2 {
            let seq = st.admit(&rec).seq;
            st.absorb(seq, vec![row(i as u32, 0.2, i % 2 == 0, 0)], &rec);
        }
        assert_eq!(st.stats().refits, 0, "cadence 1000 not reached");
        st.note_drift(3);
        assert_eq!(st.stats().epoch, 1);
        assert_eq!(st.stats().reservoir, 0, "stale rows dropped");
        assert!(st.models().is_none(), "stale models dropped");
        // Fresh-epoch rows trip the forced window as soon as the floor
        // is met, ignoring the cadence.
        for i in 0..MIN_REFIT_SAMPLES as u64 {
            let seq = st.admit(&rec).seq;
            st.absorb(seq, vec![row(i as u32, 0.4, i % 2 == 0, 0)], &rec);
        }
        assert_eq!(st.stats().refits, 1, "forced window refits without cadence");
        assert!(st.models().is_some());
    }

    #[test]
    fn stale_shaped_rows_are_filtered() {
        let rec = NoopRecorder;
        let mut st = state(AdaptiveConfig::new(0, 0.0));
        let seq = st.admit(&rec).seq;
        let mut bad = row(1, 0.5, true, 0);
        bad.features = vec![0.5; 7]; // wrong width
        st.absorb(seq, vec![bad, row(2, 0.5, true, 0)], &rec);
        assert_eq!(st.stats().feedback_samples, 1);
        assert_eq!(st.stats().reservoir, 1);
    }

    #[test]
    fn fit_feedback_models_needs_enough_rows_and_is_deterministic() {
        let rows: Vec<FeedbackRow> =
            (0..20).map(|i| row(i, (i % 9) as f32 / 9.0, i % 2 == 0, (i % 2) as usize)).collect();
        assert!(
            fit_feedback_models(&rows[..MIN_REFIT_SAMPLES - 1], 3, ForestConfig::default(), 1, 1)
                .is_none()
        );
        let a = fit_feedback_models(&rows, 3, ForestConfig::default(), 42, 1).unwrap();
        let b = fit_feedback_models(&rows, 3, ForestConfig::default(), 42, 1).unwrap();
        let probe = [0.4f32, 0.6, 0.2];
        assert_eq!(a.alpha.predict_proba(&probe), b.alpha.predict_proba(&probe));
        assert_eq!(a.dim(), 3);
        assert_eq!(a.version(), 1);
    }
}
