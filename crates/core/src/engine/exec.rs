//! The execution layer: every driver that sweeps a query's candidate
//! set sits here, behind the internal [`Executor`] trait.
//!
//! Four drivers share the training and ladder layers:
//!
//! * **Sequential** — train, then sweep on the calling thread.
//! * **TwoThread** — the §4.1 straw-man baseline: race the optimist
//!   and the pessimist on two threads per candidate (reusing the
//!   deployment's precomputed signatures).
//! * **StaticChunks** — one static candidate chunk per thread, each
//!   with its own training run and cache (the Figure 9 load-imbalance
//!   baseline).
//! * **WorkStealing** — the pool: train once, share the models and a
//!   sharded [`PredictionCache`]; an atomic cursor hands out grabs.
//!
//! **Determinism argument.** Which worker evaluates which candidate —
//! and whether its (method, plan) came from the cache or a model —
//! affects only *cost* (steps, stage counters, cache hits), never the
//! *verdict*: every recovery pipeline ends in stage 3, an exhaustive
//! unlimited run, and both methods are exact (§4.3). Hence the sorted
//! `valid` vector and the `candidates`/`trained_nodes` counts are
//! identical for any worker count, grab size, cache mode and run —
//! property-tested in `determinism_across_worker_counts`.
//!
//! **Limit observance.** A global deadline or cancel flag
//! ([`EvalLimits`]) is (a) threaded into every per-stage limit, so
//! in-flight searches unwind within
//! [`POLL_INTERVAL`](crate::limits::POLL_INTERVAL) steps, and (b)
//! polled at every grab boundary, so no worker starts more than one
//! grab after cancellation. Candidates never grabbed, and the
//! remainder of a grab whose node came back
//! [`Verdict::Interrupted`](crate::Verdict::Interrupted), are
//! reported as `unresolved`.
//!
//! **Fault tolerance.** Every per-node evaluation inside a grab is
//! panic-isolated and retried by the ladder
//! ([`GraphContext::eval_rest_node`]), so a broken node costs one
//! entry in the result's
//! [`FailureReport`](crate::report::FailureReport), not the pool. A
//! worker *thread* dying entirely (a panic outside the isolated
//! region, or an injected
//! [`FaultKind::KillWorker`](crate::fault::FaultKind::KillWorker)) is
//! detected at join: each grab is committed to a shared ledger as a
//! unit, so a dead worker loses only its in-flight grab, which the
//! calling thread detects via the ledger and re-evaluates inline
//! (`requeued` in the failure report). The pool never aborts on a
//! worker death.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use psi_graph::hash::{FxHashMap, FxHasher};
use psi_graph::{NodeId, PivotedQuery};
use psi_obs::{timed, Counter, Histogram, MetricsRecorder, NoopRecorder, Phase, Recorder};
use psi_signature::SignatureKey;

use crate::evaluator::QueryContext;
use crate::fault::{InjectedPanic, NodeMatcher};
use crate::limits::EvalLimits;
use crate::report::{PsiResult, StageTimings};
use crate::single::{pivot_candidates, RunOptions};
use crate::smart::{RunParams, RunSpec, SmartPsiReport};
use crate::twothread::two_threaded_psi_presig;

use super::context::GraphContext;
use super::ladder::{absorb_outcome, feedback_row, BatchPlan};
use super::pool;
use super::training::{TrainOutcome, TrainedSession};

/// Which executor [`SmartPsi::run`](crate::SmartPsi::run) drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// One thread, candidates in shuffled training order.
    #[default]
    Sequential,
    /// The §4.1 two-threaded baseline: race the optimist and the
    /// pessimist per candidate (no training, no cache). Kept as the
    /// straw-man arm of the executor comparison.
    TwoThread,
    /// The work-stealing pool: train once, share the models and the
    /// prediction cache across workers.
    WorkStealing,
    /// The pre-work-stealing baseline: one static candidate chunk per
    /// thread, each with its own training run and cache. Kept for the
    /// Figure 9 load-imbalance comparison.
    StaticChunks,
}

/// Tuning knobs of the work-stealing pool. `Default` defers every
/// field to the deployment's [`SmartPsiConfig`](crate::SmartPsiConfig).
#[derive(Debug, Clone, Default)]
pub struct WorkStealingOptions {
    /// Worker threads (`0` = `config.workers`, which at `0` in turn
    /// means one per available hardware thread).
    pub threads: usize,
    /// Candidates per queue grab (`0` = `config.grab_size`).
    pub grab: usize,
    /// Override `config.shared_cache` (`None` = keep it).
    pub shared_cache: Option<bool>,
    /// Global deadline / cancel flag observed by the whole pool.
    pub limits: EvalLimits,
}

/// One cached conclusion: the confirmed (method, plan) indices, the
/// cache epoch it was inserted in (for cross-query accounting), and
/// the adapted-model version that predicted it (0 = the query's own
/// per-query fit).
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    value: (usize, usize),
    epoch: u64,
    model_version: u64,
}

/// One lock-protected slice of the prediction cache.
type CacheShard = Mutex<FxHashMap<SignatureKey, CacheEntry>>;

/// Concurrent (method, plan) prediction cache keyed by exact
/// signature, sharded to keep workers off each other's locks. With a
/// single shard this is exactly the sequential executor's cache plus
/// one uncontended lock.
///
/// The cache carries an *epoch* so a long-lived instance (the
/// cross-query cache of a [`PsiService`](super::service::PsiService))
/// can account reuse: [`PredictionCache::advance_epoch`] marks a query
/// boundary, and a `get` that hits an entry inserted in an earlier
/// epoch counts as one cross-query hit
/// ([`PredictionCache::cross_query_hits`]). Per-run caches never
/// advance the epoch, so the mechanism is free for them.
///
/// Entries also record the *adapted-model version* that produced them
/// (0 = the query's own per-query fit, `n` = the deployment's n-th
/// online refit). A versioned lookup
/// ([`PredictionCache::get_versioned`]) misses on any entry predicted
/// by a different model, so installing a refit implicitly invalidates
/// every stale prediction — no sweep, the next query simply
/// re-predicts and overwrites. Frozen deployments only ever use
/// version 0, which keeps their hit pattern (and hence their results)
/// bit-identical to the pre-adaptation behavior.
pub struct PredictionCache {
    shards: Box<[CacheShard]>,
    mask: usize,
    epoch: AtomicU64,
    cross_epoch_hits: AtomicU64,
}

impl std::fmt::Debug for PredictionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionCache")
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl PredictionCache {
    /// Create a cache with `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Mutex::new(FxHashMap::default())).collect(),
            mask: n - 1,
            epoch: AtomicU64::new(0),
            cross_epoch_hits: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &SignatureKey) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = FxHasher::default();
        key.hash(&mut h);
        (h.finish() as usize) & self.mask
    }

    /// Look up a cached (method index, plan index) predicted by
    /// model version 0 (the per-query fit).
    pub fn get(&self, key: &SignatureKey) -> Option<(usize, usize)> {
        self.get_versioned(key, 0)
    }

    /// Look up a cached (method index, plan index) — a hit only when
    /// the entry was predicted by the given adapted-model version, so
    /// predictions from superseded refits read as misses.
    pub fn get_versioned(&self, key: &SignatureKey, model_version: u64) -> Option<(usize, usize)> {
        let entry = self.shards[self.shard_of(key)].lock().get(key).copied()?;
        if entry.model_version != model_version {
            return None;
        }
        if entry.epoch < self.epoch.load(Ordering::Relaxed) {
            self.cross_epoch_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some(entry.value)
    }

    /// Publish a confirmed (method index, plan index) predicted by
    /// model version 0 (the per-query fit).
    pub fn insert(&self, key: SignatureKey, value: (usize, usize)) {
        self.insert_versioned(key, 0, value);
    }

    /// Publish a confirmed (method index, plan index) predicted by the
    /// given adapted-model version, overwriting any entry a different
    /// version left behind.
    pub fn insert_versioned(&self, key: SignatureKey, model_version: u64, value: (usize, usize)) {
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.shards[self.shard_of(&key)]
            .lock()
            .insert(key, CacheEntry { value, epoch, model_version });
    }

    /// Mark a query boundary: entries inserted before this call count
    /// as cross-query when hit afterwards.
    pub fn advance_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Hits on entries inserted in an earlier epoch (i.e. by an
    /// earlier query, when the owner advances the epoch per query).
    pub fn cross_query_hits(&self) -> u64 {
        self.cross_epoch_hits.load(Ordering::Relaxed)
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The internal seam every driver implements; `SmartPsi::run` resolves
/// the spec's [`ExecutorKind`] to one of these and delegates.
pub(crate) trait Executor: Sync {
    /// Sweep the query's candidates and produce the merged report.
    fn execute(
        &self,
        ctx: &GraphContext,
        query: &PivotedQuery,
        spec: &RunSpec,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport;
}

/// Resolve an [`ExecutorKind`] to its driver.
pub(crate) fn executor_for(kind: ExecutorKind) -> &'static dyn Executor {
    match kind {
        ExecutorKind::Sequential => &Sequential,
        ExecutorKind::TwoThread => &TwoThread,
        ExecutorKind::WorkStealing => &WorkStealing,
        ExecutorKind::StaticChunks => &StaticChunks,
    }
}

struct Sequential;

impl Executor for Sequential {
    fn execute(
        &self,
        ctx: &GraphContext,
        query: &PivotedQuery,
        spec: &RunSpec,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        ctx.seq_run(query, spec.subset.as_deref(), &spec.limits, params, rec)
    }
}

struct TwoThread;

impl Executor for TwoThread {
    /// The §4.1 baseline reuses the deployment's signatures but none
    /// of the ML pipeline: no training, no prediction, no cache.
    /// Candidate subsets are honored; every resolved node counts as
    /// stage 1 (the race is a single unlimited attempt).
    fn execute(
        &self,
        ctx: &GraphContext,
        query: &PivotedQuery,
        spec: &RunSpec,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        let options = RunOptions {
            depth: ctx.config.depth,
            limits: spec.limits.clone(),
            panic_isolation: params.panic_isolation,
            fault: params.fault.clone(),
        };
        let t0 = Instant::now();
        let result = two_threaded_psi_presig(
            &ctx.g,
            &ctx.sigs,
            query,
            spec.subset.as_deref(),
            &options,
            rec,
        );
        let resolved = result.candidates - result.unresolved - result.failures.len();
        SmartPsiReport {
            result,
            timings: StageTimings {
                training_and_prediction: std::time::Duration::ZERO,
                evaluation: t0.elapsed(),
            },
            trained_nodes: 0,
            cache_hits: 0,
            resolved_stage1: resolved,
            recovered_stage2: 0,
            recovered_stage3: 0,
            predicted_valid: 0,
            alpha_accuracy: 1.0,
        }
    }
}

struct WorkStealing;

impl Executor for WorkStealing {
    fn execute(
        &self,
        ctx: &GraphContext,
        query: &PivotedQuery,
        spec: &RunSpec,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        work_stealing(
            ctx,
            query,
            &WorkStealingOptions {
                threads: spec.threads,
                grab: spec.grab,
                shared_cache: spec.shared_cache,
                limits: spec.limits.clone(),
            },
            spec.subset.as_deref(),
            params,
            rec,
        )
    }
}

struct StaticChunks;

impl Executor for StaticChunks {
    fn execute(
        &self,
        ctx: &GraphContext,
        query: &PivotedQuery,
        spec: &RunSpec,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        ctx.static_chunks(
            query,
            spec.threads.max(1),
            spec.subset.as_deref(),
            &spec.limits,
            params,
            rec,
        )
    }
}

impl GraphContext {
    /// Pick the prediction cache for one single-threaded sweep: the
    /// run's external (cross-query) cache when one is attached, else a
    /// fresh per-run cache — or none when caching is disabled.
    fn run_cache<'a>(
        &self,
        params: &'a RunParams,
        local: &'a mut Option<PredictionCache>,
    ) -> Option<&'a PredictionCache> {
        if !self.config.enable_cache {
            return None;
        }
        match params.external_cache.as_deref() {
            Some(ext) => Some(ext),
            None => {
                *local = Some(PredictionCache::new(self.config.cache_shards));
                local.as_ref()
            }
        }
    }

    /// Sequential evaluation: train, then sweep the remaining
    /// candidates on the calling thread. The body behind
    /// [`ExecutorKind::Sequential`] (and the `threads ≤ 1` degenerate
    /// case of the pool).
    pub(crate) fn seq_run(
        &self,
        query: &PivotedQuery,
        subset: Option<&[NodeId]>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        let candidates = match subset {
            Some(s) => s.to_vec(),
            None => pivot_candidates(&self.g, query),
        };
        let total = candidates.len();
        let mut matcher = self.matcher(params);

        let sess = match self.train_session(query, candidates, limits, params, rec) {
            TrainOutcome::TooFew => {
                let ctx = QueryContext::new(query.clone(), self.config.depth);
                return self.plain_sweep(
                    &ctx,
                    &mut matcher,
                    subset_or(self, query, subset),
                    limits,
                    params,
                    rec,
                );
            }
            TrainOutcome::Interrupted { steps, failures } => {
                let mut r = unresolved_report(total, steps);
                r.result.failures = failures;
                return r;
            }
            TrainOutcome::Trained(sess) => sess,
        };
        let mut sess = sess;
        if let Some(a) = &params.adapted {
            // Online-adapted forests replace the per-query fit (frozen
            // fallback on a feature-layout mismatch); budgets and
            // plans still come from this query's training pass.
            sess.apply_adapted(a, self.sigs.label_count() + 1);
        }

        // ---- Main loop over the remaining candidates -----------------
        let t_eval = Instant::now();
        let mut local = None;
        let cache = self.run_cache(params, &mut local);
        // Phase A: one SoA prefilter sweep + survivor prediction.
        let bp = self.batch_plan(&sess, cache, params, rec);
        let mut report = SmartPsiReport {
            result: PsiResult {
                valid: Vec::new(),
                candidates: total,
                steps: 0,
                unresolved: 0,
                failures: sess.failures.clone(),
                profile: None,
                feedback: Vec::new(),
            },
            timings: StageTimings::default(),
            trained_nodes: sess.n_train,
            cache_hits: 0,
            resolved_stage1: 0,
            recovered_stage2: 0,
            recovered_stage3: 0,
            predicted_valid: 0,
            alpha_accuracy: 0.0,
        };
        let mut alpha_correct = 0usize;
        for i in 0..bp.len() {
            let u = bp.ids[i];
            let out =
                self.eval_rest_node(&sess, &mut matcher, bp.pred(i), u, limits, params, rec);
            let stop = out.is_global_stop();
            absorb_outcome(&mut report, &mut alpha_correct, u, &out);
            if let Some(row) = feedback_row(&bp, i, &out) {
                report.result.feedback.push(row);
            }
            if stop {
                // Global limits fired: everything not yet evaluated is
                // unresolved.
                report.result.unresolved += bp.len() - i - 1;
                break;
            }
        }

        report.result.valid.extend_from_slice(&sess.train_valid);
        report.result.valid.sort_unstable();
        report.result.failures.sort();
        report.result.feedback.sort_by_key(|f| f.node);
        report.result.steps += sess.train_steps;
        report.alpha_accuracy = if sess.rest.is_empty() {
            1.0
        } else {
            alpha_correct as f64 / sess.rest.len() as f64
        };
        report.timings = StageTimings {
            training_and_prediction: sess.training_and_prediction,
            evaluation: t_eval.elapsed(),
        };
        report
    }

    /// The static chunk-per-thread driver behind
    /// [`ExecutorKind::StaticChunks`]: each chunk runs an independent
    /// sequential evaluation (its own training and cache).
    pub(crate) fn static_chunks(
        &self,
        query: &PivotedQuery,
        threads: usize,
        subset: Option<&[NodeId]>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        if threads == 1 {
            return self.seq_run(query, subset, limits, params, rec);
        }
        let candidates = subset_or(self, query, subset);
        let chunk = candidates.len().div_ceil(threads);
        if chunk == 0 {
            return self.seq_run(query, subset, limits, params, rec);
        }
        let slices: Vec<&[NodeId]> = candidates.chunks(chunk).collect();
        let pool = pool::global();
        pool.ensure(threads, rec);
        let t_attach = rec.enabled().then(Instant::now);
        let slots: Vec<Mutex<Option<SmartPsiReport>>> =
            slices.iter().map(|_| Mutex::new(None)).collect();
        let tasks: Vec<pool::ScopedTask<'_>> = slices
            .iter()
            .zip(&slots)
            .map(|(&slice, slot)| {
                Box::new(move || {
                    if let Some(t0) = t_attach {
                        rec.span_ns(Phase::PoolSpawn, t0.elapsed().as_nanos() as u64);
                    }
                    let r = self.seq_run(query, Some(slice), limits, params, rec);
                    *slot.lock() = Some(r);
                }) as pool::ScopedTask<'_>
            })
            .collect();
        pool.scatter(tasks);
        let reports: Vec<SmartPsiReport> = slices
            .iter()
            .zip(slots)
            .map(|(slice, slot)| match slot.into_inner() {
                Some(r) => r,
                None => {
                    // The chunk's task died outside the isolated
                    // per-node path; its candidates stay unresolved,
                    // the run keeps going.
                    let mut r = unresolved_report(slice.len(), 0);
                    r.result.failures.worker_deaths = 1;
                    r
                }
            })
            .collect();
        // Merge.
        timed(rec, Phase::Merge, || {
            let mut merged = reports[0].clone();
            for r in &reports[1..] {
                merged.result.valid.extend_from_slice(&r.result.valid);
                merged.result.feedback.extend_from_slice(&r.result.feedback);
                merged.result.steps += r.result.steps;
                merged.result.candidates += r.result.candidates;
                merged.result.unresolved += r.result.unresolved;
                merged.result.failures.merge(&r.result.failures);
                merged.trained_nodes += r.trained_nodes;
                merged.cache_hits += r.cache_hits;
                merged.resolved_stage1 += r.resolved_stage1;
                merged.recovered_stage2 += r.recovered_stage2;
                merged.recovered_stage3 += r.recovered_stage3;
                merged.predicted_valid += r.predicted_valid;
                merged.timings.training_and_prediction += r.timings.training_and_prediction;
                merged.timings.evaluation += r.timings.evaluation;
            }
            merged.result.valid.sort_unstable();
            merged.result.failures.sort();
            merged.result.feedback.sort_by_key(|f| f.node);
            merged.alpha_accuracy =
                reports.iter().map(|r| r.alpha_accuracy).sum::<f64>() / reports.len() as f64;
            merged
        })
    }
}

/// One committed grab's worth of results, merged deterministically
/// after join.
#[derive(Default)]
struct Partial {
    report: SmartPsiReport,
    alpha_correct: usize,
    grabbed: usize,
}

/// Shared commit log of the pool. Workers (a) register a grab range
/// as in-flight before evaluating it and (b) atomically commit its
/// [`Partial`] *and* retire the registration under one lock, so a
/// worker death can never lose a committed grab or double-count a
/// requeued one — whatever is still in `inflight` after all joins is
/// exactly the work dead workers dropped.
#[derive(Default)]
struct PoolLedger {
    partials: Vec<Partial>,
    inflight: Vec<(usize, usize)>,
}

/// Evaluate one grab range — a contiguous slice of the phase-A
/// [`BatchPlan`], i.e. same-`(method, plan)` candidates with ascending
/// ids — into a fresh [`Partial`]. The bool is true when the *global*
/// limits fired mid-grab (the caller must stop grabbing); the
/// remainder of the grab is then already accounted as unresolved.
#[allow(clippy::too_many_arguments)]
fn run_grab(
    ctx: &GraphContext,
    sess: &TrainedSession,
    m: &mut dyn NodeMatcher,
    bp: &BatchPlan,
    start: usize,
    end: usize,
    limits: &EvalLimits,
    params: &RunParams,
    rec: &dyn Recorder,
) -> (Partial, bool) {
    let mut part = Partial {
        grabbed: end - start,
        ..Partial::default()
    };
    rec.add(Counter::GrabSteals, 1);
    rec.observe(Histogram::GrabLength, (end - start) as u64);
    // Prefetch: touch each candidate's CSR adjacency span once before
    // matching. Ids ascend within a grab, so this walks one contiguous
    // region of the edge array instead of hopping around it per node.
    for &u in &bp.ids[start..end] {
        std::hint::black_box(ctx.g.neighbors(u).first());
    }
    for i in start..end {
        let u = bp.ids[i];
        let out = ctx.eval_rest_node(sess, m, bp.pred(i), u, limits, params, rec);
        let stop = out.is_global_stop();
        absorb_outcome(&mut part.report, &mut part.alpha_correct, u, &out);
        if let Some(row) = feedback_row(bp, i, &out) {
            part.report.result.feedback.push(row);
        }
        if stop {
            part.report.result.unresolved += end - i - 1;
            return (part, true);
        }
    }
    (part, false)
}

/// Run one query through the work-stealing pool. Called via
/// [`SmartPsi::run`](crate::SmartPsi::run) with
/// [`RunSpec::threads`](crate::RunSpec::threads).
///
/// Instrumentation: workers record into *private*
/// [`MetricsRecorder`] buffers (no cross-thread contention on the
/// shared registry) and drain them into the caller's recorder exactly
/// once at exit; the sums are order-independent, so profiled totals
/// are deterministic across schedules. Each worker also reports its
/// spawn/attach latency as a [`Phase::PoolSpawn`] span, so per-query
/// pool setup is visible separately from evaluation time. A dead
/// worker's undrained buffer is lost — observational metrics only; the
/// exact accounting counters are rebuilt from the merged report either
/// way.
pub(crate) fn work_stealing(
    ctx: &GraphContext,
    query: &PivotedQuery,
    options: &WorkStealingOptions,
    subset: Option<&[NodeId]>,
    params: &RunParams,
    rec: &dyn Recorder,
) -> SmartPsiReport {
    let cfg = ctx.config();
    let threads = match (options.threads, cfg.workers) {
        (0, 0) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        (0, w) => w,
        (t, _) => t,
    };
    let grab = if options.grab != 0 { options.grab } else { cfg.grab_size }.max(1);
    let shared = options.shared_cache.unwrap_or(cfg.shared_cache);
    let limits = &options.limits;

    let candidates = match subset {
        Some(s) => s.to_vec(),
        None => pivot_candidates(ctx.graph(), query),
    };
    let total = candidates.len();
    if limits.expired() {
        return unresolved_report(total, 0);
    }
    if threads <= 1 {
        // One worker degenerates to the sequential executor (which the
        // determinism tests rely on for their 1-thread baseline).
        return ctx.seq_run(query, subset, limits, params, rec);
    }

    let sess = match ctx.train_session(query, candidates, limits, params, rec) {
        // Too few candidates for ML: spinning up a pool would cost
        // more than the sweep itself.
        TrainOutcome::TooFew => {
            return ctx.seq_run(query, subset, limits, params, rec);
        }
        TrainOutcome::Interrupted { steps, failures } => {
            let mut r = unresolved_report(total, steps);
            r.result.failures = failures;
            return r;
        }
        TrainOutcome::Trained(sess) => sess,
    };
    let mut sess = sess;
    if let Some(a) = &params.adapted {
        sess.apply_adapted(a, ctx.sigs.label_count() + 1);
    }

    // A run-level external cache (attached by a PsiService) doubles as
    // the run's shared cache; otherwise the run owns a fresh one. With
    // phase A centralizing every prediction on the calling thread, the
    // `shared_cache = false` ablation simply runs phase A uncached.
    let external = cfg
        .enable_cache
        .then_some(params.external_cache.as_deref())
        .flatten();
    let owned = (cfg.enable_cache && shared && external.is_none())
        .then(|| PredictionCache::new(cfg.cache_shards));
    let shared_cache: Option<&PredictionCache> = external.or(owned.as_ref());

    // Phase A: the SoA prefilter sweep + survivor prediction, once,
    // before any worker attaches. Every executor sees this identical
    // plan, and grabs become contiguous same-(method, plan) ranges.
    let bp = ctx.batch_plan(&sess, shared_cache, params, rec);

    let pool = pool::global();
    pool.ensure(threads, rec);
    let cursor = AtomicUsize::new(0);
    let ledger = Mutex::new(PoolLedger::default());
    let fault = params.fault.as_ref();
    let t_spawn = rec.enabled().then(Instant::now);
    let t_eval = Instant::now();

    let worker_deaths = {
        let bp = &bp;
        let sess = &sess;
        let cursor = &cursor;
        let ledger = &ledger;
        let tasks: Vec<pool::ScopedTask<'_>> = (0..threads)
            .map(|_| {
                Box::new(move || {
                    let mut matcher = ctx.matcher(params);
                    // Private metrics buffer, drained into the shared
                    // recorder once at worker exit.
                    let local_rec = rec.enabled().then(MetricsRecorder::new);
                    let wrec: &dyn Recorder = match &local_rec {
                        Some(l) => l,
                        None => &NoopRecorder,
                    };
                    if let Some(t0) = t_spawn {
                        wrec.span_ns(Phase::PoolSpawn, t0.elapsed().as_nanos() as u64);
                    }
                    loop {
                        if limits.expired() {
                            break;
                        }
                        let start = cursor.fetch_add(grab, Ordering::Relaxed);
                        if start >= bp.len() {
                            break;
                        }
                        let end = (start + grab).min(bp.len());
                        ledger.lock().inflight.push((start, end));
                        // Simulated worker death: a KillWorker fault
                        // on any node of this grab kills the task
                        // before evaluation; the grab stays in the
                        // inflight list for the parent to requeue.
                        if let Some(f) = fault {
                            for &u in &bp.ids[start..end] {
                                if f.take_worker_kill(u) {
                                    std::panic::panic_any(InjectedPanic { node: u });
                                }
                            }
                        }
                        let (part, stopped) = run_grab(
                            ctx, sess, &mut matcher, bp, start, end, limits, params, wrec,
                        );
                        {
                            let mut l = ledger.lock();
                            l.partials.push(part);
                            if let Some(pos) =
                                l.inflight.iter().position(|&r| r == (start, end))
                            {
                                l.inflight.swap_remove(pos);
                            }
                        }
                        if stopped {
                            break;
                        }
                    }
                    if let Some(l) = &local_rec {
                        l.drain_into(rec);
                    }
                }) as pool::ScopedTask<'_>
            })
            .collect();
        // A worker task that died (panicked outside the per-node
        // isolation) is counted by the pool's completion latch; its
        // in-flight grab is recovered from the ledger below. No task
        // death aborts the run or costs a pool thread.
        pool.scatter(tasks)
    };

    let PoolLedger {
        mut partials,
        inflight,
    } = ledger.into_inner();

    // ---- Requeue grabs dropped by dead workers ---------------------
    if !inflight.is_empty() {
        let mut matcher = ctx.matcher(params);
        for &(start, end) in &inflight {
            if limits.expired() {
                // Unrecovered ranges fall into the `rest - grabbed`
                // unresolved accounting below.
                break;
            }
            let (mut part, stopped) = run_grab(
                ctx, &sess, &mut matcher, &bp, start, end, limits, params, rec,
            );
            part.report.result.failures.requeued += end - start;
            rec.add(Counter::Requeued, (end - start) as u64);
            partials.push(part);
            if stopped {
                break;
            }
        }
    }
    let evaluation = t_eval.elapsed();

    // ---- Deterministic merge ---------------------------------------
    timed(rec, Phase::Merge, || {
        let grabbed: usize = partials.iter().map(|p| p.grabbed).sum();
        let mut report = unresolved_report(sess.total_candidates, sess.train_steps);
        // Candidates the cursor handed out past cancellation to nobody,
        // plus dead-worker grabs the requeue pass could not finish.
        report.result.unresolved = bp.len() - grabbed;
        report.result.valid.extend_from_slice(&sess.train_valid);
        report.result.failures = sess.failures.clone();
        report.result.failures.worker_deaths = worker_deaths;
        report.trained_nodes = sess.n_train;
        let mut alpha_correct = 0usize;
        for p in &partials {
            report.result.valid.extend_from_slice(&p.report.result.valid);
            report.result.feedback.extend_from_slice(&p.report.result.feedback);
            report.result.steps += p.report.result.steps;
            report.result.unresolved += p.report.result.unresolved;
            report.result.failures.merge(&p.report.result.failures);
            report.cache_hits += p.report.cache_hits;
            report.resolved_stage1 += p.report.resolved_stage1;
            report.recovered_stage2 += p.report.recovered_stage2;
            report.recovered_stage3 += p.report.recovered_stage3;
            report.predicted_valid += p.report.predicted_valid;
            alpha_correct += p.alpha_correct;
        }
        report.result.valid.sort_unstable();
        report.result.failures.sort();
        report.result.feedback.sort_by_key(|f| f.node);
        report.alpha_accuracy = if sess.rest.is_empty() {
            1.0
        } else {
            alpha_correct as f64 / sess.rest.len() as f64
        };
        report.timings = StageTimings {
            training_and_prediction: sess.training_and_prediction,
            evaluation,
        };
        debug_assert_eq!(
            report.result.valid.len()
                + report.result.unresolved
                + report.result.failures.len()
                + invalid_count(&report, sess.n_train),
            report.result.candidates,
            "every candidate is valid, invalid, unresolved or failed"
        );
        report
    })
}

fn invalid_count(report: &SmartPsiReport, n_train: usize) -> usize {
    let resolved =
        n_train + report.resolved_stage1 + report.recovered_stage2 + report.recovered_stage3;
    resolved - report.result.valid.len()
}

/// Report for a query whose evaluation was stopped before any
/// candidate resolved.
pub(crate) fn unresolved_report(candidates: usize, steps: u64) -> SmartPsiReport {
    SmartPsiReport {
        result: PsiResult::empty(candidates, steps),
        timings: StageTimings::default(),
        trained_nodes: 0,
        cache_hits: 0,
        resolved_stage1: 0,
        recovered_stage2: 0,
        recovered_stage3: 0,
        predicted_valid: 0,
        alpha_accuracy: 0.0,
    }
}

/// The candidate list for a plain sweep (re-derived when the caller
/// did not pass a subset).
fn subset_or(ctx: &GraphContext, query: &PivotedQuery, subset: Option<&[NodeId]>) -> Vec<NodeId> {
    match subset {
        Some(s) => s.to_vec(),
        None => pivot_candidates(&ctx.g, query),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smart::{RunSpec, SmartPsi};
    use crate::SmartPsiConfig;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn deployment() -> (SmartPsi, PivotedQuery) {
        let g = psi_datasets::generators::erdos_renyi(400, 1600, 3, 21);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 7).unwrap();
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        (SmartPsi::new(g, cfg), q)
    }

    fn counter(r: &crate::PsiResult, c: Counter) -> u64 {
        r.profile.as_ref().expect("run attaches a profile").counter(c)
    }

    #[test]
    fn cache_round_trips_and_shards() {
        let cache = PredictionCache::new(7); // rounds up to 8
        assert!(cache.is_empty());
        for i in 0..64u32 {
            let key = SignatureKey::exact(&[i as f32, 1.0, 2.0]);
            assert_eq!(cache.get(&key), None);
            cache.insert(key.clone(), (i as usize % 2, i as usize % 3));
            assert_eq!(cache.get(&key), Some((i as usize % 2, i as usize % 3)));
        }
        assert_eq!(cache.len(), 64);
    }

    #[test]
    fn cache_epochs_count_cross_query_hits() {
        let cache = PredictionCache::new(2);
        let key = SignatureKey::exact(&[1.0, 2.0]);
        cache.insert(key.clone(), (0, 1));
        assert_eq!(cache.get(&key), Some((0, 1)));
        assert_eq!(cache.cross_query_hits(), 0, "same epoch: not cross-query");
        cache.advance_epoch();
        assert_eq!(cache.get(&key), Some((0, 1)));
        assert_eq!(cache.get(&key), Some((0, 1)));
        assert_eq!(cache.cross_query_hits(), 2, "hits after the boundary count");
        // Entries inserted in the new epoch are again same-epoch.
        let key2 = SignatureKey::exact(&[3.0]);
        cache.insert(key2.clone(), (1, 0));
        assert_eq!(cache.get(&key2), Some((1, 0)));
        assert_eq!(cache.cross_query_hits(), 2);
    }

    #[test]
    fn cache_versions_isolate_refit_generations() {
        let cache = PredictionCache::new(2);
        let key = SignatureKey::exact(&[1.0, 2.0]);
        // Version 0 (the per-query fit) is the unversioned API.
        cache.insert(key.clone(), (1, 0));
        assert_eq!(cache.get_versioned(&key, 0), Some((1, 0)));
        // A refit bumps the model version: stale entries must miss, or
        // the old models' verdicts outlive the models themselves.
        assert_eq!(cache.get_versioned(&key, 1), None);
        cache.insert_versioned(key.clone(), 1, (0, 2));
        assert_eq!(cache.get_versioned(&key, 1), Some((0, 2)));
        // The overwrite replaced the v0 entry wholesale — version 0
        // now misses rather than serving a v1 prediction.
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), (1, 0));
        assert_eq!(cache.get(&key), Some((1, 0)));
    }

    #[test]
    fn work_stealing_matches_sequential_valid_set() {
        let (smart, q) = deployment();
        let seq = smart.run(&q, &RunSpec::new());
        for threads in [1, 2, 4] {
            let ws = smart.run(&q, &RunSpec::new().threads(threads));
            assert_eq!(ws.valid, seq.valid, "threads={threads}");
            assert_eq!(ws.candidates, seq.candidates);
            assert_eq!(ws.unresolved, 0);
            assert_eq!(
                counter(&ws, Counter::TrainedNodes),
                counter(&seq, Counter::TrainedNodes),
                "trains once"
            );
        }
    }

    #[test]
    fn all_executors_agree() {
        use psi_signature::SigStoreKind;
        // Every executor × every signature store: the batched phase-A
        // plan is built identically per run, so answers must match
        // bit-for-bit across drivers on each backend.
        let g = psi_datasets::generators::erdos_renyi(400, 1600, 3, 21);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 7).unwrap();
        for kind in [
            SigStoreKind::Dense,
            SigStoreKind::Compact,
            SigStoreKind::CompactWide,
        ] {
            let cfg = SmartPsiConfig {
                min_candidates_for_ml: 10,
                sig_store: kind,
                ..SmartPsiConfig::default()
            };
            let smart = SmartPsi::new(g.clone(), cfg);
            let seq = smart.run(&q, &RunSpec::new());
            let par = smart.run(&q, &RunSpec::new().threads(2));
            let stat = smart.run(&q, &RunSpec::new().static_chunks(2));
            let two = smart.run(&q, &RunSpec::new().two_thread());
            assert_eq!(seq.valid, par.valid, "store {}", kind.name());
            assert_eq!(seq.valid, stat.valid, "store {}", kind.name());
            assert_eq!(seq.valid, two.valid, "store {}", kind.name());
            // PartialEq ignores the profile, so whole-result comparison
            // works across executors (costs differ for the baseline, so
            // only the work-stealing pool is fully comparable).
            assert_eq!(seq, par, "store {}", kind.name());
        }
    }

    #[test]
    fn prefilter_prunes_labeled_candidates_and_still_reconciles() {
        // On a labeled graph many candidates fail the pivot-signature
        // containment check; the batched phase-A sweep must prune them
        // (Proposition 3.2 — no survivor lost, no prediction spent)
        // while the stage accounting identity keeps reconciling.
        let (smart, q) = deployment();
        let rec = Arc::new(MetricsRecorder::new());
        let r = smart.run(&q, &RunSpec::new().threads(4).recorder(rec.clone()));
        assert!(
            rec.counter(Counter::PrefilterPruned) > 0,
            "a 3-label deployment must prune some candidates in phase A"
        );
        let p = r.profile.as_ref().unwrap();
        assert!(p.reconciles());
        // Pruned nodes resolve at stage 1 with zero cost and must agree
        // with the sequential driver bit-for-bit.
        let seq = smart.run(&q, &RunSpec::new());
        assert_eq!(seq, r);
    }

    #[test]
    fn stage_accounting_is_complete_under_work_stealing() {
        let (smart, q) = deployment();
        let r = smart.run(&q, &RunSpec::new().threads(4));
        let p = r.profile.as_ref().unwrap();
        assert_eq!(
            p.counter(Counter::TrainedNodes)
                + p.counter(Counter::ResolvedS1)
                + p.counter(Counter::RecoveredS2)
                + p.counter(Counter::RecoveredS3),
            r.candidates as u64,
            "no candidate lost or double-counted across workers"
        );
        assert!(p.reconciles());
    }

    #[test]
    fn pre_cancelled_pool_reports_everything_unresolved() {
        let (smart, q) = deployment();
        let flag = Arc::new(AtomicBool::new(true));
        let spec = RunSpec::new()
            .threads(4)
            .limits(EvalLimits::unlimited().with_cancel(flag));
        let r = smart.run(&q, &spec);
        assert!(r.valid.is_empty());
        assert_eq!(r.unresolved, r.candidates);
        assert!(r.profile.as_ref().unwrap().reconciles());
    }

    #[test]
    fn profiled_pool_run_merges_worker_buffers() {
        let (smart, q) = deployment();
        let rec = Arc::new(MetricsRecorder::new());
        let r = smart.run(&q, &RunSpec::new().threads(4).recorder(rec.clone()));
        let p = r.profile.as_ref().unwrap();
        assert!(p.recorded);
        assert!(p.counter(Counter::GrabSteals) > 0, "grabs were recorded");
        // Histogram of grab lengths saw every grab the workers took.
        let grabs: u64 = p.hists[Histogram::GrabLength as usize].iter().sum();
        assert_eq!(grabs, p.counter(Counter::GrabSteals));
        // Each worker reported its spawn latency.
        assert!(p.span(Phase::PoolSpawn) > std::time::Duration::ZERO);
        assert!(p.reconciles());
    }

    #[test]
    fn external_cache_prewarms_identical_queries() {
        let (smart, q) = deployment();
        let cache = Arc::new(PredictionCache::new(4));
        let baseline = smart.run(&q, &RunSpec::new());
        let first = smart.run(&q, &RunSpec::new().cache(cache.clone()));
        assert!(!cache.is_empty(), "first run must populate the cache");
        cache.advance_epoch();
        let second = smart.run(&q, &RunSpec::new().cache(cache.clone()));
        // Cached entries are confirmed model predictions, so a warm
        // cache changes cost accounting only — never the answer.
        assert_eq!(baseline, first);
        assert_eq!(baseline, second);
        assert!(cache.cross_query_hits() > 0, "second run reused the first's entries");
    }
}
