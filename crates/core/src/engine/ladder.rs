//! The preemptive recovery ladder (§4.3): the optimist, the pessimist
//! and the realist, per candidate node.
//!
//! One candidate's evaluation runs up to
//! [`RetryPolicy::max_attempts`] *limited* attempts — the predicted
//! method first (stage 1), then alternating with the opposite method
//! under escalating budgets (stage 2) — and finally one unlimited
//! attempt with the exact fallback (stage 3). Both methods are
//! exhaustive, so stage 3 is conclusive: scheduling, caching and
//! worker count can change the *cost* of a node, never its verdict.
//!
//! This module owns [`RetryPolicy`], the per-node outcome types, the
//! batched phase-A sweep (`GraphContext::batch_plan`), the ladder
//! itself ([`GraphContext::eval_rest_node`]) and the no-ML exact sweep
//! used below the training threshold ([`GraphContext::plain_sweep`]).
//!
//! **Phase A / phase B split.** Evaluation of the non-training
//! candidates is two-phased. Phase A (`GraphContext::batch_plan`)
//! runs once per query on the calling thread: a structure-of-arrays
//! stage-1 prefilter sweep (the chunked
//! [`psi_signature::SignatureStore::rows_satisfy`] /
//! [`rows_score`](psi_signature::SignatureStore::rows_score) kernels
//! over maximal contiguous id runs) settles provably-invalid
//! candidates without touching a matcher, and the survivors get their
//! `(method, plan)` predicted — cache probe first, forests otherwise —
//! with the sweep score appended as the last ML feature. Phase B (the
//! per-survivor retry ladder below) then only ever runs the matcher.
//! Because phase A is identical for every executor, answers *and*
//! per-node costs stay bit-identical across worker counts.

use std::time::Instant;

use psi_graph::NodeId;
use psi_obs::{timed, Counter, Histogram, Phase, Recorder};
use psi_signature::{SignatureKey, SignatureStore};

use crate::evaluator::{QueryContext, Verdict};
use crate::fault::{eval_isolated, IsolatedOutcome, NodeMatcher};
use crate::limits::EvalLimits;
use crate::plan::heuristic_plan;
use crate::report::{FailureReport, FeedbackRow, PsiResult, StageTimings};
use crate::smart::{RunParams, SmartPsiReport};
use crate::Strategy;

use super::context::GraphContext;
use super::exec::PredictionCache;
use super::training::TrainedSession;

/// How the preemptive executor retries a node whose evaluation was
/// interrupted by its step budget, spuriously interrupted, or panicked
/// (§4.3 recovery, generalized into an explicit ladder).
///
/// The ladder runs `max_attempts` *limited* attempts — the predicted
/// method first, then alternating with the opposite method, each under
/// a budget of `2×AvgT × budget_multiplier^attempt` — and then one
/// final unlimited attempt: the pessimist exact matcher on the
/// heuristic plan when `escalate_to_exact` is set (the predicted
/// method otherwise). Both methods are exhaustive, so the final
/// attempt is conclusive unless the node's matcher itself is broken,
/// in which case the node is reported in
/// [`FailureReport`](crate::report::FailureReport) instead of being
/// silently dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Limited (budgeted) attempts before the unlimited fallback.
    pub max_attempts: u32,
    /// Budget growth per limited attempt (clamped to ≥ 1.0).
    pub budget_multiplier: f64,
    /// Run the final unlimited attempt with the pessimist exact
    /// matcher on the heuristic plan rather than the predicted method.
    pub escalate_to_exact: bool,
}

impl Default for RetryPolicy {
    /// Two limited attempts (predicted, then opposite at 2× budget),
    /// then the exact fallback — the paper's three-stage executor
    /// expressed as a policy.
    fn default() -> Self {
        Self {
            max_attempts: 2,
            budget_multiplier: 2.0,
            escalate_to_exact: true,
        }
    }
}

impl RetryPolicy {
    /// Step budget for limited attempt `attempt` (0-based) given the
    /// trained base budget. Saturates instead of overflowing.
    pub fn budget(&self, base: u64, attempt: u32) -> u64 {
        let m = self.budget_multiplier.max(1.0);
        let scaled = base as f64 * m.powi(attempt.min(64) as i32);
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            (scaled as u64).max(base).max(1)
        }
    }
}

/// Retry/isolation cost of one candidate, folded into the failure
/// report's counters by [`absorb_outcome`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeCost {
    pub(crate) steps: u64,
    pub(crate) panics_recovered: u64,
    pub(crate) escalations: u64,
}

/// Outcome of one main-loop candidate (see
/// [`GraphContext::eval_rest_node`]).
#[derive(Debug, Clone)]
pub(crate) enum NodeOutcome {
    /// The candidate resolved (stage 1–3), or the *global*
    /// deadline/cancel fired first (stage 0, verdict `Interrupted`).
    Done {
        verdict: Verdict,
        /// Resolving stage (1–3); 0 = unresolved (global stop).
        stage: u8,
        cache_hit: bool,
        predicted_valid: bool,
        cost: NodeCost,
    },
    /// The candidate could not be resolved despite panic isolation and
    /// the full retry ladder — its matcher is broken or its per-node
    /// timeout expired.
    Failed {
        reason: String,
        attempts: u32,
        cache_hit: bool,
        predicted_valid: bool,
        cost: NodeCost,
    },
}

impl NodeOutcome {
    /// Whether the executor must stop sweeping (global limits fired).
    pub(crate) fn is_global_stop(&self) -> bool {
        matches!(self, NodeOutcome::Done { stage: 0, .. })
    }
}

/// Step-limited stage limits inheriting the global deadline/cancel.
pub(crate) fn stage_limits(max_steps: u64, global: &EvalLimits) -> EvalLimits {
    stage_limits_node(max_steps, global, None)
}

/// [`stage_limits`] with an additional per-node deadline; the earlier
/// of the global and node deadline wins.
pub(crate) fn stage_limits_node(
    max_steps: u64,
    global: &EvalLimits,
    node_deadline: Option<Instant>,
) -> EvalLimits {
    let deadline = match (global.deadline, node_deadline) {
        (Some(g), Some(n)) => Some(g.min(n)),
        (g, n) => g.or(n),
    };
    EvalLimits {
        max_steps,
        deadline,
        cancel: global.cancel.clone(),
        cancel_at: global.cancel_at.clone(),
    }
}

/// Structure-of-arrays execution plan for one query's non-training
/// candidates, built once by [`GraphContext::batch_plan`] and shared
/// read-only by every executor worker.
///
/// Layout: the candidates pruned by the stage-1 prefilter come first
/// (ids ascending), then one contiguous group per predicted
/// `(method, plan)` pair with ids ascending inside each group — so a
/// pool grab is a contiguous range of same-plan candidates over an
/// ascending CSR span.
pub(crate) struct BatchPlan {
    /// Candidate ids in grouped evaluation order.
    pub(crate) ids: Vec<NodeId>,
    /// Predicted method index per id (0 = optimistic, 1 = pessimistic;
    /// pruned ids are pessimistic by construction).
    method: Vec<u8>,
    /// Predicted plan index per id.
    plan: Vec<u16>,
    /// Whether the prediction came from the cache.
    cached: Vec<bool>,
    /// `ids[..pruned]` failed the pivot-signature prefilter: provably
    /// invalid without running any matcher.
    pruned: usize,
    /// Flattened per-slot feature rows (`feat_dim` floats per slot,
    /// zeros for pruned slots), in the same grouped order as `ids`.
    /// Populated only when the run collects feedback; `feat_dim == 0`
    /// otherwise.
    feats: Vec<f32>,
    feat_dim: usize,
    /// Whether the method column came from the ε-exploration floor
    /// rather than Model α.
    explored: bool,
}

impl BatchPlan {
    /// Number of planned candidates (`== rest.len()`).
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// The phase-A decision for slot `i`.
    pub(crate) fn pred(&self, i: usize) -> NodePred {
        NodePred {
            survives: i >= self.pruned,
            method_idx: self.method[i] as usize,
            plan_idx: self.plan[i] as usize,
            cache_hit: self.cached[i],
        }
    }

    /// Slot `i`'s model feature vector, when the run collects feedback.
    pub(crate) fn features(&self, i: usize) -> Option<&[f32]> {
        if self.feat_dim == 0 {
            return None;
        }
        Some(&self.feats[i * self.feat_dim..(i + 1) * self.feat_dim])
    }
}

/// Build the training-feedback row for slot `i` of a batch plan, given
/// the node's final outcome. `None` unless the run collects feedback
/// AND the slot was predictor-adjudicated (survived the prefilter) AND
/// the ladder reached a conclusive verdict — stage 3 is exact, so
/// `valid` is always ground truth, never a guess.
pub(crate) fn feedback_row(bp: &BatchPlan, i: usize, out: &NodeOutcome) -> Option<FeedbackRow> {
    if i < bp.pruned {
        return None;
    }
    let features = bp.features(i)?;
    match out {
        NodeOutcome::Done { verdict, stage, cost, .. } if *stage != 0 => Some(FeedbackRow {
            node: bp.ids[i],
            features: features.to_vec(),
            method: bp.method[i],
            plan: bp.plan[i] as usize,
            explored: bp.explored,
            valid: *verdict == Verdict::Valid,
            steps: cost.steps,
        }),
        _ => None,
    }
}

/// One candidate's precomputed phase-A decision, consumed by
/// [`GraphContext::eval_rest_node`].
#[derive(Clone, Copy)]
pub(crate) struct NodePred {
    /// Passed the stage-1 prefilter; `false` means settled Invalid.
    pub(crate) survives: bool,
    pub(crate) method_idx: usize,
    pub(crate) plan_idx: usize,
    pub(crate) cache_hit: bool,
}

impl GraphContext {
    /// Phase A of the batched pipeline: one structure-of-arrays sweep
    /// over the whole non-training candidate set.
    ///
    /// 1. **Prefilter** ([`Phase::Prefilter`]): sort the candidates
    ///    ascending, cut them into maximal contiguous id runs, and run
    ///    the chunked batch kernels over each run against the pivot's
    ///    query signature row. A candidate failing the Proposition 3.2
    ///    necessary condition cannot host the pivot under either
    ///    method, so it resolves Invalid on the spot (stage 1, zero
    ///    matcher steps).
    /// 2. **Predict** ([`Phase::Predict`]): probe the cache / run the
    ///    forests once per survivor, with the sweep score appended as
    ///    the last ML feature. Fresh predictions are published to the
    ///    cache immediately, so structurally identical survivors hit
    ///    within the same sweep.
    /// 3. **Group**: pruned ids first, then one contiguous group per
    ///    predicted `(method, plan)`, ids ascending within each group.
    ///
    /// The plan is built before any worker spawns and is identical for
    /// every executor — which is what keeps answers and per-node costs
    /// bit-identical across worker counts.
    ///
    /// Two adaptive-serving knobs ride in via `params`: `feedback`
    /// additionally materializes every survivor's feature vector into
    /// the plan (so executors can emit [`FeedbackRow`]s without
    /// re-touching the signature store), and `explore` forces every
    /// survivor's *method* to the ε-floor's uniform draw — Model β
    /// still picks the plan, and the prediction cache is bypassed in
    /// both directions so explored runs never read or publish entries
    /// (cache entries must stay confirmed model predictions).
    pub(crate) fn batch_plan(
        &self,
        sess: &TrainedSession,
        cache: Option<&PredictionCache>,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> BatchPlan {
        let n = sess.rest.len();
        let mut sorted = sess.rest.clone();
        sorted.sort_unstable();
        let mut survives = vec![false; n];
        let mut scores = vec![0.0f32; n];
        timed(rec, Phase::Prefilter, || {
            let pivot_row = sess.ctx.signatures().row(sess.ctx.query().pivot());
            let mut i = 0;
            while i < n {
                let mut j = i + 1;
                while j < n && sorted[j] == sorted[j - 1] + 1 {
                    j += 1;
                }
                let range = sorted[i]..sorted[i] + (j - i) as NodeId;
                self.sigs.rows_satisfy(range.clone(), pivot_row, &mut survives[i..j]);
                self.sigs.rows_score(range, pivot_row, &mut scores[i..j]);
                i = j;
            }
        });
        // Pruned candidates are settled; only survivors pay the cache
        // probe and forest inference.
        let dim = self.sigs.label_count() + 1;
        let want_feats = params.feedback;
        let explore = params.explore;
        let mut method = vec![1u8; n];
        let mut plan = vec![0u16; n];
        let mut cached = vec![false; n];
        let mut feats = if want_feats { vec![0.0f32; n * dim] } else { Vec::new() };
        timed(rec, Phase::Predict, || {
            // Adapted sessions key the cache by refit version: a newly
            // installed refit turns every older entry into a miss, so
            // stale predictions never outlive the model that made them.
            let ver = sess.adapted_version();
            let mut row_buf = Vec::new();
            let mut feat = Vec::with_capacity(dim);
            for i in 0..n {
                if !survives[i] {
                    continue;
                }
                let row = self.sigs.row_view(sorted[i], &mut row_buf);
                if want_feats {
                    let dst = &mut feats[i * dim..(i + 1) * dim];
                    dst[..dim - 1].copy_from_slice(row);
                    dst[dim - 1] = scores[i];
                }
                if let Some(forced) = explore {
                    // ε-exploration: the method is the floor's uniform
                    // draw, the plan is still Model β's pick, and the
                    // cache is untouched (neither probed nor fed).
                    feat.clear();
                    feat.extend_from_slice(row);
                    feat.push(scores[i]);
                    let (_, pi) = sess.predict(&feat, rec);
                    method[i] = forced.min(1);
                    plan[i] = pi.min(u16::MAX as usize) as u16;
                    continue;
                }
                let key = cache.map(|_| SignatureKey::exact(row));
                let hit = match (cache, &key) {
                    (Some(c), Some(k)) => c.get_versioned(k, ver),
                    _ => None,
                };
                cached[i] = hit.is_some();
                let (mi, pi) = match hit {
                    Some(v) => v,
                    None => {
                        feat.clear();
                        feat.extend_from_slice(row);
                        feat.push(scores[i]);
                        let v = sess.predict(&feat, rec);
                        if let (Some(c), Some(k)) = (cache, key) {
                            c.insert_versioned(k, ver, v);
                        }
                        v
                    }
                };
                method[i] = mi as u8;
                plan[i] = pi.min(u16::MAX as usize) as u16;
            }
        });
        let pruned = survives.iter().filter(|&&s| !s).count();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| (survives[i], method[i], plan[i], sorted[i]));
        let feats = if want_feats {
            let mut out = Vec::with_capacity(n * dim);
            for &i in &order {
                out.extend_from_slice(&feats[i * dim..(i + 1) * dim]);
            }
            out
        } else {
            Vec::new()
        };
        BatchPlan {
            ids: order.iter().map(|&i| sorted[i]).collect(),
            method: order.iter().map(|&i| method[i]).collect(),
            plan: order.iter().map(|&i| plan[i]).collect(),
            cached: order.iter().map(|&i| cached[i]).collect(),
            pruned,
            feats,
            feat_dim: if want_feats { dim } else { 0 },
            explored: explore.is_some(),
        }
    }

    /// Evaluate one non-training candidate with the preemptive
    /// executor (§4.3), generalized into the [`RetryPolicy`] ladder:
    /// take the phase-A decision (survivor mask, method, plan, cache
    /// provenance), then run up to `max_attempts` *limited* attempts —
    /// the predicted method first (stage 1), then alternating with the
    /// opposite method under escalating budgets (stage 2) — and
    /// finally one unlimited attempt with the exact fallback
    /// (stage 3). Every attempt is panic-isolated; a panic costs the
    /// attempt, not the query. A candidate the prefilter pruned skips
    /// the matcher entirely and resolves Invalid at zero step cost.
    ///
    /// Exits: `Done { stage: 1..3 }` (conclusive), `Done { stage: 0 }`
    /// (global deadline/cancel fired — the only inexact exit), or
    /// `Failed` (the node's matcher is broken or its per-node timeout
    /// expired; recorded instead of silently dropped).
    ///
    /// Instrumentation: the ladder attempts run inside
    /// [`Phase::MatchS1`] / [`Phase::MatchS2`] / [`Phase::MatchS3`]
    /// spans, and the node's totals feed the step histogram and the
    /// cache/retry counters (prediction itself was already billed by
    /// [`GraphContext::batch_plan`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_rest_node(
        &self,
        sess: &TrainedSession,
        m: &mut dyn NodeMatcher,
        pred: NodePred,
        u: NodeId,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> NodeOutcome {
        let out = if pred.survives {
            self.eval_rest_node_inner(sess, m, pred, u, limits, params, rec)
        } else {
            // Settled by the phase-A sweep: the pivot-signature
            // necessary condition failed, so no embedding can map the
            // pivot onto `u` under either method. The prefilter is
            // always right, so this counts toward α-accuracy as a
            // correct pessimistic call.
            NodeOutcome::Done {
                verdict: Verdict::Invalid,
                stage: 1,
                cache_hit: false,
                predicted_valid: false,
                cost: NodeCost::default(),
            }
        };
        let (cache_hit, predicted_valid, cost) = match &out {
            NodeOutcome::Done {
                cache_hit,
                predicted_valid,
                cost,
                ..
            }
            | NodeOutcome::Failed {
                cache_hit,
                predicted_valid,
                cost,
                ..
            } => (*cache_hit, *predicted_valid, *cost),
        };
        if rec.enabled() {
            if pred.survives {
                rec.add(
                    if cache_hit { Counter::CacheHits } else { Counter::CacheMisses },
                    1,
                );
            } else {
                rec.add(Counter::PrefilterPruned, 1);
            }
            rec.add(
                if predicted_valid { Counter::NodesOptimistic } else { Counter::NodesPessimistic },
                1,
            );
            rec.add(Counter::Steps, cost.steps);
            rec.add(Counter::Escalations, cost.escalations);
            rec.add(Counter::PanicsRecovered, cost.panics_recovered);
            rec.observe(Histogram::StepsPerNode, cost.steps);
            match &out {
                NodeOutcome::Done { stage, .. } => match stage {
                    1 => rec.add(Counter::ResolvedS1, 1),
                    2 => rec.add(Counter::RecoveredS2, 1),
                    3 => rec.add(Counter::RecoveredS3, 1),
                    _ => rec.add(Counter::Unresolved, 1),
                },
                NodeOutcome::Failed { .. } => rec.add(Counter::FailedNodes, 1),
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_rest_node_inner(
        &self,
        sess: &TrainedSession,
        m: &mut dyn NodeMatcher,
        pred: NodePred,
        u: NodeId,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> NodeOutcome {
        let NodePred {
            method_idx,
            plan_idx,
            cache_hit,
            ..
        } = pred;
        let predicted_valid = method_idx == 0;
        let plan = &sess.plans[plan_idx];
        let node_deadline = params.node_timeout.map(|t| Instant::now() + t);
        let isolate = params.panic_isolation;
        let retry = params.retry;
        let mut cost = NodeCost::default();
        let mut attempts = 0u32;

        let (verdict, stage) = 'ladder: {
            if self.config.enable_recovery {
                // Limited attempts: predicted method first, then
                // alternating with the opposite, budgets escalating by
                // the policy's multiplier.
                for attempt in 0..retry.max_attempts {
                    let mi = if attempt % 2 == 0 { method_idx } else { 1 - method_idx };
                    let budget = retry.budget(sess.max_time(mi, plan_idx), attempt);
                    let lim = stage_limits_node(budget, limits, node_deadline);
                    attempts += 1;
                    if attempt > 0 {
                        rec.add(Counter::Retries, 1);
                    }
                    let phase = if attempt == 0 { Phase::MatchS1 } else { Phase::MatchS2 };
                    match timed(rec, phase, || {
                        eval_isolated(m, &sess.ctx, plan, u, sess.strategies[mi], &lim, isolate)
                    }) {
                        IsolatedOutcome::Finished(v, s) => {
                            cost.steps += s;
                            if v != Verdict::Interrupted {
                                break 'ladder (v, if attempt == 0 { 1 } else { 2 });
                            }
                            if limits.expired() {
                                break 'ladder (Verdict::Interrupted, 0);
                            }
                            cost.escalations += 1;
                        }
                        IsolatedOutcome::Panicked(_) => cost.panics_recovered += 1,
                    }
                }
            }
            // Final attempt, no step budget: the exact fallback (the
            // pessimist on the heuristic plan) by default; the
            // predicted method when the policy opts out of escalation
            // or recovery is disabled.
            let (final_mi, final_plan) = if !self.config.enable_recovery {
                (method_idx, plan)
            } else if retry.escalate_to_exact {
                (1, &sess.heuristic)
            } else {
                (method_idx, &sess.heuristic)
            };
            let lim = stage_limits_node(0, limits, node_deadline);
            attempts += 1;
            if attempts > 1 {
                rec.add(Counter::Retries, 1);
            }
            let phase = if self.config.enable_recovery { Phase::MatchS3 } else { Phase::MatchS1 };
            match timed(rec, phase, || {
                eval_isolated(
                    m,
                    &sess.ctx,
                    final_plan,
                    u,
                    sess.strategies[final_mi],
                    &lim,
                    isolate,
                )
            }) {
                IsolatedOutcome::Finished(v, s) => {
                    cost.steps += s;
                    if v != Verdict::Interrupted {
                        (v, if self.config.enable_recovery { 3 } else { 1 })
                    } else if limits.expired() {
                        (Verdict::Interrupted, 0)
                    } else {
                        // An unlimited attempt interrupted without the
                        // global limits firing: per-node timeout, or a
                        // matcher misreporting its budget.
                        let reason = if node_deadline.is_some_and(|d| Instant::now() >= d) {
                            "node timeout".to_string()
                        } else {
                            "interrupted without an expired budget".to_string()
                        };
                        return NodeOutcome::Failed {
                            reason,
                            attempts,
                            cache_hit,
                            predicted_valid,
                            cost,
                        };
                    }
                }
                IsolatedOutcome::Panicked(reason) => {
                    return NodeOutcome::Failed {
                        reason,
                        attempts,
                        cache_hit,
                        predicted_valid,
                        cost,
                    };
                }
            }
        };

        NodeOutcome::Done {
            verdict,
            stage,
            cache_hit,
            predicted_valid,
            cost,
        }
    }

    /// Exact sweep without ML for small candidate sets. Each node is
    /// panic-isolated and retried like the main path, so a broken node
    /// is recorded instead of failing the query. Runs inside a
    /// [`Phase::ExactFallback`] span.
    pub(crate) fn plain_sweep(
        &self,
        ctx: &QueryContext,
        m: &mut dyn NodeMatcher,
        candidates: Vec<NodeId>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> SmartPsiReport {
        let t0 = Instant::now();
        let heuristic = ctx.compile(&heuristic_plan(&self.g, ctx.query()));
        let isolate = params.panic_isolation;
        let mut valid = Vec::new();
        let mut steps = 0u64;
        let mut unresolved = 0usize;
        let mut resolved = 0usize;
        let mut failures = FailureReport::default();
        'sweep: for (i, &u) in candidates.iter().enumerate() {
            let node_deadline = params.node_timeout.map(|t| Instant::now() + t);
            let mut attempts = 0u32;
            let mut last_reason = String::new();
            while attempts <= params.retry.max_attempts {
                attempts += 1;
                let lim = stage_limits_node(0, limits, node_deadline);
                match timed(rec, Phase::ExactFallback, || {
                    eval_isolated(m, ctx, &heuristic, u, Strategy::Pessimistic, &lim, isolate)
                }) {
                    IsolatedOutcome::Finished(v, s) => {
                        steps += s;
                        rec.observe(Histogram::StepsPerNode, s);
                        match v {
                            Verdict::Valid => {
                                valid.push(u);
                                resolved += 1;
                                continue 'sweep;
                            }
                            Verdict::Invalid => {
                                resolved += 1;
                                continue 'sweep;
                            }
                            Verdict::Interrupted => {
                                if limits.expired() {
                                    unresolved += candidates.len() - i;
                                    break 'sweep;
                                }
                                failures.escalations += 1;
                                last_reason = "node timeout".into();
                            }
                        }
                    }
                    IsolatedOutcome::Panicked(reason) => {
                        failures.panics_recovered += 1;
                        last_reason = reason;
                    }
                }
            }
            failures.record(u, last_reason, attempts);
        }
        valid.sort_unstable();
        failures.sort();
        rec.add(Counter::Steps, steps);
        SmartPsiReport {
            result: PsiResult {
                valid,
                candidates: candidates.len(),
                steps,
                unresolved,
                failures,
                profile: None,
                feedback: Vec::new(),
            },
            timings: StageTimings {
                training_and_prediction: std::time::Duration::ZERO,
                evaluation: t0.elapsed(),
            },
            trained_nodes: 0,
            cache_hits: 0,
            resolved_stage1: resolved,
            recovered_stage2: 0,
            recovered_stage3: 0,
            predicted_valid: 0,
            alpha_accuracy: 1.0,
        }
    }
}

/// Accumulate one [`NodeOutcome`] into a report.
pub(crate) fn absorb_outcome(
    report: &mut SmartPsiReport,
    alpha_correct: &mut usize,
    u: NodeId,
    out: &NodeOutcome,
) {
    let (cache_hit, predicted_valid, cost) = match out {
        NodeOutcome::Done {
            cache_hit,
            predicted_valid,
            cost,
            ..
        }
        | NodeOutcome::Failed {
            cache_hit,
            predicted_valid,
            cost,
            ..
        } => (*cache_hit, *predicted_valid, *cost),
    };
    report.result.steps += cost.steps;
    report.result.failures.panics_recovered += cost.panics_recovered;
    report.result.failures.escalations += cost.escalations;
    if cache_hit {
        report.cache_hits += 1;
    }
    if predicted_valid {
        report.predicted_valid += 1;
    }
    match out {
        NodeOutcome::Done { verdict, stage, .. } => {
            match stage {
                1 => report.resolved_stage1 += 1,
                2 => report.recovered_stage2 += 1,
                3 => report.recovered_stage3 += 1,
                _ => report.result.unresolved += 1,
            }
            let is_valid = *verdict == Verdict::Valid;
            if is_valid {
                report.result.valid.push(u);
            }
            if *stage != 0 && is_valid == predicted_valid {
                *alpha_correct += 1;
            }
        }
        NodeOutcome::Failed {
            reason, attempts, ..
        } => {
            report.result.failures.record(u, reason.clone(), *attempts);
        }
    }
}

#[cfg(test)]
mod tests {
    use psi_graph::{Graph, PivotedQuery};
    use psi_graph::builder::graph_from;
    use psi_obs::Counter;

    use crate::smart::{RunSpec, SmartPsi};
    use crate::{PsiResult, SmartPsiConfig};

    fn figure1() -> (Graph, PivotedQuery) {
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        (g, q)
    }

    fn counter(r: &PsiResult, c: Counter) -> u64 {
        r.profile.as_ref().expect("run always attaches a profile").counter(c)
    }

    #[test]
    fn tiny_graph_uses_plain_sweep_and_is_exact() {
        let (g, q) = figure1();
        let smart = SmartPsi::new(g, SmartPsiConfig::default());
        let r = smart.run(&q, &RunSpec::new());
        assert_eq!(r.valid, vec![0, 5]);
        assert_eq!(counter(&r, Counter::TrainedNodes), 0); // below min_candidates_for_ml
        assert_eq!(r.unresolved, 0);
        assert!(r.profile.as_ref().unwrap().reconciles());
    }

    #[test]
    fn recovery_disabled_still_exact() {
        let g = psi_datasets::generators::erdos_renyi(300, 1000, 3, 7);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            enable_recovery: false,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 5).unwrap();
        let oracle = psi_match::psi_by_enumeration(
            &psi_match::Engine::Vf2,
            &g,
            &q,
            &psi_match::SearchBudget::unlimited(),
        );
        let r = smart.run(&q, &RunSpec::new());
        assert_eq!(r.valid, oracle.valid);
    }

    #[test]
    fn beta_disabled_still_exact() {
        let g = psi_datasets::generators::erdos_renyi(300, 1000, 3, 8);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            enable_beta: false,
            enable_cache: false,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 6).unwrap();
        let oracle = psi_match::psi_by_enumeration(
            &psi_match::Engine::Vf2,
            &g,
            &q,
            &psi_match::SearchBudget::unlimited(),
        );
        let r = smart.run(&q, &RunSpec::new());
        assert_eq!(r.valid, oracle.valid);
        assert_eq!(counter(&r, Counter::CacheHits), 0);
    }
}
