//! [`PsiService`]: a long-lived worker pool serving a stream of PSI
//! queries against one shared [`GraphContext`].
//!
//! [`SmartPsi::run`](crate::SmartPsi::run) answers *one* query; every
//! parallel executor behind it spins its pool up and down per call.
//! A query *stream* (the CLI `batch` subcommand, the `serve` bench, an
//! embedding application) wants the opposite cost profile:
//!
//! * **Spawn once.** Workers are spawned at [`PsiService::new`], park
//!   on a condvar while the queue is empty, and are joined on drop —
//!   no per-query thread churn.
//! * **Share across queries.** All jobs share the `Arc<GraphContext>`
//!   (graph + signatures), and jobs with the *same query shape* share
//!   a [`PredictionCache`] keyed by a query fingerprint, so query #2
//!   starts with query #1's confirmed predictions
//!   ([`ServiceStats::cross_query_cache_hits`] counts the reuse).
//! * **Survive worker trouble.** Each job runs under `catch_unwind`:
//!   a panic that escapes a job (possible when the submitter disables
//!   per-node panic isolation, or from an injected
//!   [`FaultPlan`](crate::fault::FaultPlan)) fails that *attempt*,
//!   not the service. The job is requeued once (PR-2 semantics:
//!   retry-then-report); a second death produces a structured failed
//!   result via the job's handle instead of a poisoned future. The
//!   worker thread itself never unwinds out of its loop.
//! * **Evolve without downtime.** A service deployed with
//!   [`DeploymentSpec::evolving`](crate::DeploymentSpec::evolving)
//!   owns an
//!   [`EvolvingContext`]; [`PsiService::apply_update`] applies a
//!   [`GraphUpdate`] batch, repairs signatures incrementally, and
//!   swaps in the next epoch-numbered snapshot while in-flight jobs
//!   finish on the one they pinned. Prediction caches are keyed by
//!   `(epoch, query shape)` and dropped on update, so stale
//!   predictions are unreachable by construction.
//!
//! Determinism: verdicts are scheduling-independent (see the
//! [`exec`](super::exec) module docs), and the shared cache only ever
//! holds *confirmed model predictions*, which are themselves
//! deterministic per query shape — so a service answer is bit-identical
//! to a fresh sequential [`SmartPsi::run`](crate::SmartPsi::run) of the
//! same query, for any worker count, submission order, and cache warmth
//! (property-tested in `crates/core/tests/service.rs`).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use psi_graph::hash::{FxHashMap, FxHasher};
use psi_graph::{GraphUpdate, PivotedQuery};
use psi_obs::{Counter, Histogram, MetricsRecorder, Phase, Recorder};

use crate::fault::panic_reason;
use crate::report::{FeedbackRow, PsiResult};
use crate::smart::{RunSpec, SmartPsi};

use super::adapt::{AdaptedModels, AdaptiveConfig, AdaptiveState, AdaptiveStats};
use super::context::GraphContext;
use super::evolve::{EvolvingContext, UpdateError, UpdateReport};
use super::exec::PredictionCache;

/// Lock a mutex, riding through poisoning: a worker that panicked
/// while holding the lock has already had its job accounted for by the
/// catch_unwind in `worker_loop`, so the protected state stays
/// consistent and the service keeps serving.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Failure reason recorded on a job whose deadline (or cancel flag)
/// fired while it was still queued: the job is answered with this
/// structured failure instead of being run. The network front door
/// keys its `deadline` error responses off this exact string.
pub const DEADLINE_EXPIRED_REASON: &str = "deadline expired before evaluation";

/// Failure reason recorded on a job still queued when a
/// [`PsiService::shutdown`] grace period ran out (or on a job
/// submitted to an already-shut-down service): answered with this
/// structured failure, never run.
pub const ABORTED_BY_SHUTDOWN_REASON: &str = "aborted by shutdown drain";

/// A structured failed result: no verdicts, one failure entry at the
/// query pivot. The shape every answered-without-running job takes
/// (deadline expiry, shutdown abort) — distinguishable from a real
/// answer by its non-empty failure ledger.
fn structured_failure(pivot: psi_graph::NodeId, reason: &str) -> PsiResult {
    let mut failed = PsiResult::empty(0, 0);
    failed.failures.record(pivot, reason, 0);
    failed
}

/// What a [`PsiService::shutdown`] drain window observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainReport {
    /// Jobs answered normally between the shutdown call and the last
    /// worker exiting: queued jobs the grace period covered plus
    /// in-flight jobs that were allowed to finish.
    pub drained: u64,
    /// Jobs still queued when the grace period ran out, answered with
    /// an [`ABORTED_BY_SHUTDOWN_REASON`] structured failure instead of
    /// being run.
    pub aborted: u64,
}

impl DrainReport {
    /// Merge another report into this one (the sharded fan-in).
    pub fn absorb(&mut self, other: DrainReport) {
        self.drained += other.drained;
        self.aborted += other.aborted;
    }
}

/// One submitted query plus everything needed to run and account it.
struct Job {
    query: PivotedQuery,
    spec: RunSpec,
    slot: Arc<JobSlot>,
    enqueued: Instant,
    /// 0 on first submission; 1 after a requeue. A job whose second
    /// attempt also dies is failed, not retried again.
    attempt: u32,
    /// Adaptive admission sequence number (`None` when the service
    /// runs without adaptation). Every admitted seq is absorbed
    /// exactly once — with the job's feedback on success, empty on
    /// every failure path — so the adaptation loop's in-order drain
    /// can never stall.
    seq: Option<u64>,
}

/// The rendezvous between a worker finishing a job and the caller
/// waiting on its [`JobHandle`].
struct JobSlot {
    result: Mutex<Option<PsiResult>>,
    ready: Condvar,
}

impl JobSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, result: PsiResult) {
        *lock(&self.result) = Some(result);
        self.ready.notify_all();
    }
}

/// A handle to one submitted query; redeem it with [`JobHandle::wait`].
pub struct JobHandle {
    slot: Arc<JobSlot>,
}

impl JobHandle {
    /// Block until the job's result is ready and take it.
    pub fn wait(self) -> PsiResult {
        let mut guard = lock(&self.slot.result);
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Whether the result is already available (non-blocking).
    pub fn is_finished(&self) -> bool {
        lock(&self.slot.result).is_some()
    }
}

/// State shared between the submitting side and the workers.
struct ServiceInner {
    /// The currently published snapshot. Behind a lock only so
    /// [`PsiService::apply_update`] can swap it; workers take a cheap
    /// read-clone per job, so an in-flight job keeps the `Arc` (and
    /// hence the graph view) it started with.
    ctx: RwLock<Arc<GraphContext>>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Jobs popped from the queue whose slot has not been filled yet.
    /// `queue.is_empty() && in_flight == 0` is the drain-complete
    /// predicate [`PsiService::shutdown`] waits on.
    in_flight: AtomicUsize,
    /// Cross-query prediction caches, one per `(graph epoch, query
    /// shape)` pair. Keying by epoch (and clearing on update) is what
    /// guarantees a pre-update prediction is never consulted by a
    /// post-update job — even a racing job that grabbed the old
    /// snapshot right as an update landed re-creates an *old-epoch*
    /// entry that new-epoch jobs can never see.
    caches: Mutex<FxHashMap<(u64, u64), Arc<PredictionCache>>>,
    /// Service-level counters and histograms (queries served, queue
    /// wait, worker deaths, …) — all order-independent sums.
    metrics: MetricsRecorder,
    /// The online α/β adaptation loop (`None` = frozen deployment,
    /// the default — bit-identical to pre-adaptive behavior). Lock
    /// order: `queue` before `adaptive`, never the reverse.
    adaptive: Option<Mutex<AdaptiveState>>,
}

impl ServiceInner {
    /// The snapshot new jobs should run against, riding poisoning like
    /// [`lock`] (the swap in `apply_update` cannot leave it torn).
    fn current_ctx(&self) -> Arc<GraphContext> {
        self.ctx
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The shared cache for this query's shape at this graph epoch,
    /// created on first use. The fingerprint hashes the query's exact
    /// structure (labels, edges, pivot), so only structurally
    /// identical queries — whose trained models, and hence cached
    /// predictions, are deterministic and interchangeable — ever share
    /// a cache; the epoch half of the key separates graph versions.
    fn cache_for(&self, query: &PivotedQuery, ctx: &GraphContext) -> Arc<PredictionCache> {
        use std::hash::Hasher;
        let mut h = FxHasher::default();
        std::hash::Hash::hash(query.graph().labels(), &mut h);
        for (a, b, l) in query.graph().edges() {
            std::hash::Hash::hash(&(a, b, l), &mut h);
        }
        std::hash::Hash::hash(&query.pivot(), &mut h);
        let shards = ctx.config().cache_shards;
        lock(&self.caches)
            .entry((ctx.epoch(), h.finish()))
            .or_insert_with(|| Arc::new(PredictionCache::new(shards)))
            .clone()
    }

    /// Hand one admitted job's feedback to the adaptation loop (empty
    /// rows on failure paths keep the in-order drain moving).
    fn absorb_feedback(&self, seq: Option<u64>, rows: Vec<FeedbackRow>) {
        if let (Some(a), Some(s)) = (&self.adaptive, seq) {
            lock(a).absorb(s, rows, &self.metrics);
        }
    }
}

/// Snapshot of a service's lifetime counters ([`PsiService::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Jobs answered (including jobs answered with a failed result).
    pub queries_served: u64,
    /// Prediction-cache hits on entries inserted by an *earlier* job —
    /// the cross-query reuse the service exists to provide.
    pub cross_query_cache_hits: u64,
    /// Jobs whose first attempt died and were requeued.
    pub requeued_jobs: u64,
    /// Job attempts that escaped a `catch_unwind` (worker survived).
    pub worker_panics: u64,
    /// Distinct `(epoch, query shape)` pairs currently cached (= live
    /// cross-query caches; resets when an update invalidates them).
    pub distinct_query_shapes: usize,
    /// Epoch of the currently published graph snapshot (0 = the
    /// initial deployment, static services stay there).
    pub graph_epoch: u64,
    /// Cross-query caches retired by [`PsiService::apply_update`]
    /// because their epoch went stale.
    pub cache_invalidations: u64,
    /// Jobs whose deadline expired while queued: answered with a
    /// structured [`DEADLINE_EXPIRED_REASON`] failure, never run.
    pub deadline_expired: u64,
    /// Jobs answered during a [`PsiService::shutdown`] drain window.
    pub drained: u64,
}

/// A persistent PSI query service over one graph deployment.
///
/// ```
/// use psi_core::{PsiService, RunSpec, SmartPsi, SmartPsiConfig};
///
/// let g = psi_datasets::generators::erdos_renyi(300, 1000, 3, 7);
/// let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
/// let service = smart
///     .deploy(&psi_core::DeploymentSpec::new().workers(4)) // 4 persistent workers
///     .into_service();
/// let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 1).unwrap();
/// let handles: Vec<_> = (0..8)
///     .map(|_| service.submit(q.clone(), RunSpec::new()))
///     .collect();
/// for h in handles {
///     assert_eq!(h.wait().unresolved, 0);
/// }
/// assert_eq!(service.stats().queries_served, 8);
/// ```
pub struct PsiService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
    /// The mutable half of an evolving deployment; `None` for a
    /// static service. Workers never touch it — they only see the
    /// snapshots it publishes into `inner.ctx`.
    evolving: Mutex<Option<EvolvingContext>>,
}

impl PsiService {
    /// Spawn a service with `workers` persistent worker threads
    /// (minimum 1) over the shared *static* deployment `ctx`
    /// ([`PsiService::apply_update`] will refuse; deploy with
    /// [`DeploymentSpec::evolving`](crate::DeploymentSpec::evolving)
    /// for an updatable service).
    pub fn new(ctx: Arc<GraphContext>, workers: usize) -> Self {
        Self::spawn(ctx, workers, None, None)
    }

    /// [`PsiService::new`] with the online α/β adaptation loop
    /// enabled: every served query contributes feedback, an ε
    /// fraction explores, and the models refit on the configured
    /// cadence (see [`AdaptiveConfig`]).
    pub fn with_adaptive(
        ctx: Arc<GraphContext>,
        workers: usize,
        adaptive: Option<AdaptiveConfig>,
    ) -> Self {
        Self::spawn(ctx, workers, None, adaptive)
    }

    /// Spawn a service over an evolving deployment: queries run
    /// against the currently published snapshot, and
    /// [`PsiService::apply_update`] advances it. Internal entry behind
    /// the [`Deployment`] front door.
    ///
    /// [`Deployment`]: crate::Deployment
    pub(crate) fn spawn_evolving(
        evolving: EvolvingContext,
        workers: usize,
        adaptive: Option<AdaptiveConfig>,
    ) -> Self {
        let ctx = evolving.current();
        Self::spawn(ctx, workers, Some(evolving), adaptive)
    }

    fn spawn(
        ctx: Arc<GraphContext>,
        workers: usize,
        evolving: Option<EvolvingContext>,
        adaptive: Option<AdaptiveConfig>,
    ) -> Self {
        let adaptive = adaptive.map(|cfg| {
            let dim = ctx.signatures().label_count() + 1;
            Mutex::new(AdaptiveState::new(cfg, dim, ctx.config().forest))
        });
        let inner = Arc::new(ServiceInner {
            ctx: RwLock::new(ctx),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            caches: Mutex::new(FxHashMap::default()),
            metrics: MetricsRecorder::new(),
            adaptive,
        });
        let spawn_t0 = Instant::now();
        let workers = (0..workers.max(1))
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(&inner, spawn_t0))
            })
            .collect();
        Self {
            inner,
            workers,
            evolving: Mutex::new(evolving),
        }
    }

    /// Apply one [`GraphUpdate`] batch to an evolving deployment:
    /// repair signatures incrementally, publish the next epoch
    /// snapshot, and retire every cross-query prediction cache (their
    /// epoch key is now stale, so no pre-update prediction can drive a
    /// post-update evaluation — [`ServiceStats::cache_invalidations`]
    /// counts the retirements).
    ///
    /// Jobs already running keep the snapshot (and old-epoch caches)
    /// they started with; jobs picked up after this call — including
    /// ones queued before it — see the new epoch. Per-query models are
    /// refit lazily: training runs inside each job against the
    /// snapshot it captured, so the first post-update job of a shape
    /// simply trains against the new graph.
    ///
    /// Returns [`UpdateError::StaticDeployment`] on a service built
    /// with [`PsiService::new`]. Erroneous batches are atomic: nothing
    /// mutates, no epoch publishes, no cache drops.
    pub fn apply_update(&self, updates: &[GraphUpdate]) -> Result<UpdateReport, UpdateError> {
        let mut guard = lock(&self.evolving);
        let Some(ev) = guard.as_mut() else {
            return Err(UpdateError::StaticDeployment);
        };
        let report = ev.apply_recorded(updates, &self.inner.metrics)?;
        *self
            .inner
            .ctx
            .write()
            .unwrap_or_else(|e| e.into_inner()) = ev.current();
        let retired = {
            let mut caches = lock(&self.inner.caches);
            let n = caches.len();
            caches.clear();
            n
        };
        self.inner
            .metrics
            .add(Counter::CacheInvalidations, retired as u64);
        // Drift hook: the adaptation loop drops its stale reservoir
        // and models and opens a forced refit window on the new epoch.
        if let Some(a) = &self.inner.adaptive {
            let dim = self.inner.current_ctx().signatures().label_count() + 1;
            lock(a).note_drift(dim);
        }
        Ok(report)
    }

    /// Swap in an externally built context snapshot, retiring every
    /// cross-query prediction cache (their epoch key is stale).
    ///
    /// This is the publish half of [`PsiService::apply_update`] without
    /// the signature repair: the sharded scatter-gather layer owns one
    /// global incremental maintainer and pushes rebuilt per-shard
    /// snapshots into each affected shard's service through here.
    pub(crate) fn publish_ctx(&self, ctx: Arc<GraphContext>) {
        let dim = ctx.signatures().label_count() + 1;
        *self
            .inner
            .ctx
            .write()
            .unwrap_or_else(|e| e.into_inner()) = ctx;
        let retired = {
            let mut caches = lock(&self.inner.caches);
            let n = caches.len();
            caches.clear();
            n
        };
        self.inner
            .metrics
            .add(Counter::CacheInvalidations, retired as u64);
        if let Some(a) = &self.inner.adaptive {
            lock(a).note_drift(dim);
        }
    }

    /// The context snapshot new jobs will pin (the current epoch).
    pub(crate) fn context(&self) -> Arc<GraphContext> {
        self.inner.current_ctx()
    }

    /// Enqueue one query; returns immediately with a handle to its
    /// eventual result. Jobs are served FIFO by whichever worker
    /// parks first.
    ///
    /// A spec carrying an [`EvalLimits`](crate::EvalLimits) deadline is
    /// deadline-aware end to end: if the deadline passes while the job
    /// is still queued, a worker answers it with a structured
    /// [`DEADLINE_EXPIRED_REASON`] failure instead of running it.
    ///
    /// Submitting to a service that [`PsiService::shutdown`] has
    /// already stopped never loses the job: it is answered immediately
    /// with an [`ABORTED_BY_SHUTDOWN_REASON`] structured failure.
    pub fn submit(&self, query: PivotedQuery, mut spec: RunSpec) -> JobHandle {
        let slot = JobSlot::new();
        {
            let mut q = lock(&self.inner.queue);
            if self.inner.shutdown.load(Ordering::Acquire) {
                // The workers are gone (or leaving); parking the job
                // would orphan its handle.
                drop(q);
                slot.fill(structured_failure(query.pivot(), ABORTED_BY_SHUTDOWN_REASON));
                return JobHandle { slot };
            }
            // Adaptive admission happens under the queue lock so a
            // serial client's admission order matches its submission
            // order (determinism of the ε stream and refit points).
            // Or-semantics on explore/adapted let an outer coordinator
            // (the sharded layer) pre-fill them; this service's own
            // draw only applies when the spec arrives unset.
            let seq = match &self.inner.adaptive {
                Some(a) => {
                    let adm = lock(a).admit(&self.inner.metrics);
                    spec.feedback = true;
                    if spec.explore.is_none() {
                        spec.explore = adm.explore;
                    }
                    if spec.adapted.is_none() {
                        spec.adapted = adm.models;
                    }
                    Some(adm.seq)
                }
                None => None,
            };
            q.push_back(Job {
                query,
                spec,
                slot: slot.clone(),
                enqueued: Instant::now(),
                attempt: 0,
                seq,
            });
        }
        self.inner.available.notify_one();
        JobHandle { slot }
    }

    /// Graceful shutdown with an explicit grace period and observable
    /// accounting (the drop path drains silently; the network drain
    /// path and the overload tests need the counts).
    ///
    /// Semantics, in order:
    ///
    /// 1. **Finish in-flight and queued work** while the grace period
    ///    lasts — workers keep popping jobs as usual (jobs whose own
    ///    deadline expires in the queue still take the
    ///    [`DEADLINE_EXPIRED_REASON`] path and count as drained:
    ///    answered, not lost).
    /// 2. **Abort what remains** when the grace period runs out: every
    ///    job still queued is answered with an
    ///    [`ABORTED_BY_SHUTDOWN_REASON`] structured failure, never run.
    /// 3. **Stop and join** the workers; jobs already executing are
    ///    allowed to finish (a thread cannot be safely killed) and
    ///    count as drained.
    ///
    /// Every job accepted before the call gets exactly one answer —
    /// a result or a structured failure — through its handle.
    /// Idempotent: a second call returns an empty report.
    pub fn shutdown(&mut self, grace: Duration) -> DrainReport {
        if self.workers.is_empty() {
            return DrainReport::default();
        }
        let deadline = Instant::now() + grace;
        let served_at_entry = self.inner.metrics.counter(Counter::QueriesServed);

        // Phase 1: wait for the backlog to drain or the grace period
        // to lapse. Plain bounded polling — shutdown is not a hot
        // path, and the 1 ms granularity only delays the abort sweep,
        // never an answer.
        loop {
            {
                let q = lock(&self.inner.queue);
                if q.is_empty() && self.inner.in_flight.load(Ordering::Acquire) == 0 {
                    break;
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        // Phase 2 + 3: under the queue lock, abort the remnants and
        // flip the shutdown flag so no worker can park past it (and no
        // new job can enqueue behind the sweep).
        let mut aborted = 0u64;
        {
            let mut q = lock(&self.inner.queue);
            while let Some(job) = q.pop_front() {
                self.inner.absorb_feedback(job.seq, Vec::new());
                job.slot
                    .fill(structured_failure(job.query.pivot(), ABORTED_BY_SHUTDOWN_REASON));
                aborted += 1;
            }
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }

        let drained = self
            .inner
            .metrics
            .counter(Counter::QueriesServed)
            .saturating_sub(served_at_entry);
        self.inner.metrics.add(Counter::Drained, drained);
        DrainReport { drained, aborted }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued (not yet picked up).
    pub fn pending(&self) -> usize {
        lock(&self.inner.queue).len()
    }

    /// Lifetime counters of this service.
    pub fn stats(&self) -> ServiceStats {
        let m = &self.inner.metrics;
        let caches = lock(&self.inner.caches);
        ServiceStats {
            queries_served: m.counter(Counter::QueriesServed),
            cross_query_cache_hits: caches.values().map(|c| c.cross_query_hits()).sum(),
            requeued_jobs: m.counter(Counter::Requeued),
            worker_panics: m.counter(Counter::WorkerDeaths),
            distinct_query_shapes: caches.len(),
            graph_epoch: self.inner.current_ctx().epoch(),
            cache_invalidations: m.counter(Counter::CacheInvalidations),
            deadline_expired: m.counter(Counter::DeadlineExpired),
            drained: m.counter(Counter::Drained),
        }
    }

    /// The service-level metrics registry (queue-wait histogram,
    /// pool-spawn spans, the counters behind [`PsiService::stats`]).
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.inner.metrics
    }

    /// Snapshot of the adaptation loop's counters, or `None` on a
    /// frozen (non-adaptive) service.
    pub fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        self.inner.adaptive.as_ref().map(|a| lock(a).stats())
    }

    /// Clone of the current feedback reservoir (the sharded layer's
    /// merged-refit input); `None` on a frozen service.
    pub(crate) fn adaptive_rows(&self) -> Option<Vec<FeedbackRow>> {
        self.inner.adaptive.as_ref().map(|a| lock(a).rows())
    }

    /// Install externally fit models into the adaptation loop (the
    /// sharded layer pushes its merged refit down through here). A
    /// no-op on a frozen service.
    #[allow(dead_code)]
    pub(crate) fn adaptive_install(&self, models: Arc<AdaptedModels>) {
        if let Some(a) = &self.inner.adaptive {
            lock(a).install(models);
        }
    }
}

impl Drop for PsiService {
    /// Graceful shutdown: already-submitted jobs are drained and
    /// answered, then the workers exit and are joined.
    fn drop(&mut self) {
        {
            // Flip the flag under the queue lock so a worker checking
            // "empty and not shut down" cannot park past the signal.
            let _q = lock(&self.inner.queue);
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            // A worker that somehow died is already accounted; joining
            // the corpse must not abort the drop of the others.
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &ServiceInner, spawn_t0: Instant) {
    inner
        .metrics
        .span_ns(Phase::PoolSpawn, spawn_t0.elapsed().as_nanos() as u64);
    let mut smart = SmartPsi::from_context(inner.current_ctx());
    loop {
        let job = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    // Count the job in-flight before the lock drops so
                    // the drain predicate (empty queue, nothing in
                    // flight) can never observe it in neither place.
                    inner.in_flight.fetch_add(1, Ordering::AcqRel);
                    break job;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = inner.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        inner
            .metrics
            .observe(Histogram::QueueWait, job.enqueued.elapsed().as_nanos() as u64);

        // Deadline-aware dequeue: a job whose global stop signal
        // (deadline or cancel flag) fired while it waited is answered
        // with a structured failure instead of being run — under
        // overload there is no point training a model for an answer
        // nobody can use in time, and shedding it here frees the
        // worker for jobs that can still meet their deadlines.
        if job.spec.limits.expired() {
            inner.metrics.add(Counter::DeadlineExpired, 1);
            inner.metrics.add(Counter::QueriesServed, 1);
            inner.absorb_feedback(job.seq, Vec::new());
            job.slot
                .fill(structured_failure(job.query.pivot(), DEADLINE_EXPIRED_REASON));
            inner.in_flight.fetch_sub(1, Ordering::AcqRel);
            continue;
        }

        // Pin the currently published snapshot for the whole job
        // (lazy refit: a worker whose facade is from an older epoch
        // rebuilds it here, and the per-query model trains against the
        // new graph inside `run`).
        let ctx = inner.current_ctx();
        if !Arc::ptr_eq(smart.context(), &ctx) {
            smart = SmartPsi::from_context(ctx);
        }

        let cache = inner.cache_for(&job.query, smart.context());
        // Mark the query boundary: whatever this job reads from before
        // this instant was produced by an earlier job.
        cache.advance_epoch();
        let spec = job.spec.clone().cache(cache);
        let outcome = catch_unwind(AssertUnwindSafe(|| smart.run(&job.query, &spec)));
        match outcome {
            Ok(result) => {
                inner.metrics.add(Counter::QueriesServed, 1);
                // Absorb before fill: a serial client that waits on
                // each handle before submitting the next job observes
                // admissions and absorptions strictly interleaved, so
                // refit points are deterministic for it.
                inner.absorb_feedback(job.seq, result.feedback.clone());
                job.slot.fill(result);
            }
            Err(payload) => {
                // (in_flight is decremented at the bottom for every
                // arm; a requeued job re-enters the queue first, so
                // the drain predicate stays false throughout.)
                // The attempt died (panic escaped the per-node
                // isolation). First death: requeue once so a healthy
                // worker (or a second try) can still answer. Second
                // death: answer with a structured failure.
                let reason = panic_reason(payload.as_ref());
                inner.metrics.add(Counter::WorkerDeaths, 1);
                if job.attempt == 0 {
                    inner.metrics.add(Counter::Requeued, 1);
                    lock(&inner.queue).push_back(Job {
                        enqueued: Instant::now(),
                        attempt: 1,
                        ..job
                    });
                    inner.available.notify_one();
                } else {
                    let mut failed = PsiResult::empty(0, 0);
                    failed
                        .failures
                        .record(job.query.pivot(), reason, job.attempt + 1);
                    failed.failures.worker_deaths = job.attempt as usize + 1;
                    inner.metrics.add(Counter::QueriesServed, 1);
                    inner.absorb_feedback(job.seq, Vec::new());
                    job.slot.fill(failed);
                }
            }
        }
        inner.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::context::SmartPsiConfig;
    use psi_graph::Graph;

    fn deployment() -> (Graph, Arc<GraphContext>) {
        let g = psi_datasets::generators::erdos_renyi(300, 1100, 3, 31);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        let ctx = Arc::new(GraphContext::new(g.clone(), cfg));
        (g, ctx)
    }

    #[test]
    fn service_answers_match_direct_runs() {
        let (g, ctx) = deployment();
        let smart = SmartPsi::from_context(ctx.clone());
        let service = PsiService::new(ctx, 3);
        let queries: Vec<_> = (0..6)
            .filter_map(|s| psi_datasets::rwr::extract_query_seeded(&g, 4, s))
            .collect();
        let handles: Vec<_> = queries
            .iter()
            .map(|q| service.submit(q.clone(), RunSpec::new()))
            .collect();
        for (q, h) in queries.iter().zip(handles) {
            assert_eq!(h.wait(), smart.run(q, &RunSpec::new()));
        }
        let stats = service.stats();
        assert_eq!(stats.queries_served, queries.len() as u64);
        assert_eq!(stats.worker_panics, 0);
    }

    #[test]
    fn repeated_shapes_share_a_cache() {
        let (g, ctx) = deployment();
        let service = PsiService::new(ctx, 2);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 5).unwrap();
        let first = service.submit(q.clone(), RunSpec::new()).wait();
        // Serve the same shape repeatedly: later jobs must hit the
        // entries the first one confirmed.
        for _ in 0..4 {
            assert_eq!(service.submit(q.clone(), RunSpec::new()).wait(), first);
        }
        let stats = service.stats();
        assert_eq!(stats.distinct_query_shapes, 1);
        assert!(
            stats.cross_query_cache_hits > 0,
            "identical queries must reuse cached predictions: {stats:?}"
        );
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let (g, ctx) = deployment();
        let service = PsiService::new(ctx, 1);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 3, 2).unwrap();
        let handles: Vec<_> = (0..5)
            .map(|_| service.submit(q.clone(), RunSpec::new()))
            .collect();
        drop(service); // must answer all five before the workers exit
        for h in handles {
            assert!(h.is_finished());
            assert_eq!(h.wait().unresolved, 0);
        }
    }
}
